"""Closed-loop serving benchmark: sweep workers x max_batch configurations.

Measures what the serving layer actually buys on the host: a set of
client threads issues synchronous single-sample requests as fast as the
engine answers them, for each configuration in the sweep.  Throughput at
``max_batch > 1`` versus ``max_batch = 1`` isolates the micro-batching
win (the paper's batch-size lever); throughput at ``workers > 1`` versus
one worker isolates the plan-pool win (meaningful only on multi-core
hosts, since numpy only overlaps inside GIL-releasing BLAS calls).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph
from .engine import InferenceEngine
from .metrics import MetricsSnapshot, percentile


@dataclass(frozen=True)
class BenchResult:
    """One measured (workers, max_batch) configuration."""

    workers: int
    max_batch: int
    clients: int
    requests: int
    elapsed_s: float
    throughput_rps: float
    mean_batch: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    arena_allocations: int
    arena_reuses: int


def sample_feeds(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """One synthetic single-sample feed dict for ``graph``'s inputs."""
    rng = np.random.default_rng(seed)
    template = graph.with_batch(1)
    return {
        spec.name: rng.standard_normal(spec.shape).astype(
            spec.dtype.to_numpy())
        for spec in template.inputs
    }


def _closed_loop(engine: InferenceEngine, feeds: Mapping[str, np.ndarray],
                 clients: int, requests: int) -> float:
    """Issue ``requests`` total sync requests from ``clients`` threads;
    returns elapsed wall-clock seconds."""
    remaining = [requests]
    lock = threading.Lock()
    errors: List[BaseException] = []

    def client() -> None:
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            try:
                engine.infer_sync(feeds, timeout=60.0)
            except BaseException as exc:  # surfaced after the join below
                with lock:
                    errors.append(exc)
                return

    import time
    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def run_bench(graph: Graph,
              configs: Sequence[Tuple[int, int]] = ((1, 1), (1, 8)),
              requests: int = 64, clients: Optional[int] = None,
              warmup: int = 8,
              max_latency_ms: float = 2.0,
              num_threads: Optional[int] = None,
              tracer=None,
              slow_request_ms: Optional[float] = None) -> List[BenchResult]:
    """Benchmark ``graph`` under each ``(workers, max_batch)`` config.

    ``clients`` defaults to ``workers * max_batch`` per config so the
    queue has enough concurrent demand to actually fill batches.
    ``num_threads`` is handed to every engine (intra-batch parallel plan
    execution on the shared pool; ``None`` defers to
    ``REPRO_NUM_THREADS``).  ``tracer`` and ``slow_request_ms`` are
    handed to every engine too, so a benchmark run doubles as a source
    of request traces (``serve-bench --trace-out``).
    """
    results: List[BenchResult] = []
    feeds = sample_feeds(graph)
    for workers, max_batch in configs:
        n_clients = clients if clients is not None else workers * max_batch
        with InferenceEngine(graph, workers=workers, max_batch=max_batch,
                             max_latency_ms=max_latency_ms,
                             num_threads=num_threads, tracer=tracer,
                             slow_request_ms=slow_request_ms) as engine:
            _closed_loop(engine, feeds, n_clients, warmup)
            before = engine.metrics()
            elapsed = _closed_loop(engine, feeds, n_clients, requests)
            after = engine.metrics()
            measured = after.requests - before.requests
            batches = after.batches - before.batches
            results.append(BenchResult(
                workers=workers,
                max_batch=max_batch,
                clients=n_clients,
                requests=measured,
                elapsed_s=elapsed,
                throughput_rps=measured / elapsed if elapsed > 0 else 0.0,
                mean_batch=measured / batches if batches else 0.0,
                p50_ms=after.p50_ms,
                p95_ms=after.p95_ms,
                p99_ms=after.p99_ms,
                arena_allocations=(after.arena_allocations
                                   - before.arena_allocations),
                arena_reuses=after.arena_reuses - before.arena_reuses,
            ))
    return results


@dataclass(frozen=True)
class ReplicaBenchResult:
    """One measured serving mode in a replica-scaling sweep."""

    mode: str                  # "in-process" or "replicas"
    replicas: int              # 0 for the in-process baseline
    max_batch: int
    clients: int
    requests: int
    elapsed_s: float
    throughput_rps: float
    mean_batch: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    failures: int
    restarts: int


def run_replica_bench(graph: Graph,
                      replica_counts: Sequence[int] = (1, 2, 4),
                      requests: int = 128, clients: Optional[int] = None,
                      warmup: int = 16, max_batch: int = 8,
                      max_latency_ms: float = 2.0,
                      max_inflight: int = 2,
                      cache_dir=None,
                      start_method: str = "spawn",
                      shm: Optional[bool] = None,
                      on_tier=None,
                      tracer=None,
                      slow_request_ms: Optional[float] = None
                      ) -> List[ReplicaBenchResult]:
    """Single-process engine baseline vs the replica tier at each count.

    The baseline is the best in-process configuration (one worker, same
    ``max_batch``); every replica row uses the identical micro-batching
    knobs, so the measured ratio isolates what crossing the process
    boundary buys (multi-core scale) and costs (frame serialization).
    **Every row — the baseline included — is measured under the same
    offered load**: ``clients`` closed-loop threads when given, else
    enough to keep the *largest* tier's in-flight budget full
    (``max(replica_counts) * max_inflight * max_batch``).  Comparing
    rows at unequal offered load would fold demand differences into the
    reported speedups.  ``on_tier``, if given, is called with each
    still-live tier after its measurement — the CLI uses it to scrape
    the telemetry registry while per-replica series exist.  ``tracer``
    and ``slow_request_ms`` go to the replica-tier rows only (the
    in-process baseline stays untraced): the sampled traces carry the
    merged cross-process spans for ``serve-bench --replicas
    --trace-out``.
    """
    from .engine import InferenceEngine
    from .replicas import ReplicaEngine

    feeds = sample_feeds(graph)
    results: List[ReplicaBenchResult] = []
    offered_clients = clients if clients is not None \
        else max(replica_counts) * max_inflight * max_batch

    def _measure(engine, mode: str, replicas: int,
                 n_clients: int) -> None:
        _closed_loop(engine, feeds, n_clients, warmup)
        before = engine.metrics()
        elapsed = _closed_loop(engine, feeds, n_clients, requests)
        after = engine.metrics()
        measured = after.requests - before.requests
        batches = after.batches - before.batches
        results.append(ReplicaBenchResult(
            mode=mode,
            replicas=replicas,
            max_batch=max_batch,
            clients=n_clients,
            requests=measured,
            elapsed_s=elapsed,
            throughput_rps=measured / elapsed if elapsed > 0 else 0.0,
            mean_batch=measured / batches if batches else 0.0,
            p50_ms=after.p50_ms,
            p95_ms=after.p95_ms,
            p99_ms=after.p99_ms,
            failures=after.failures - before.failures,
            restarts=getattr(engine, "restarts", 0),
        ))

    with InferenceEngine(graph, workers=1, max_batch=max_batch,
                         max_latency_ms=max_latency_ms) as engine:
        _measure(engine, "in-process", 0, offered_clients)
    for count in replica_counts:
        with ReplicaEngine(graph, replicas=count, max_batch=max_batch,
                           max_latency_ms=max_latency_ms,
                           max_inflight=max_inflight,
                           cache_dir=cache_dir,
                           start_method=start_method,
                           shm=shm, tracer=tracer,
                           slow_request_ms=slow_request_ms) as tier:
            _measure(tier, "replicas", count, offered_clients)
            if on_tier is not None:
                on_tier(tier)
    return results


@dataclass(frozen=True)
class ShmBenchResult:
    """One measured data plane (pipe or shm) at one batch size."""

    data_plane: str            # "pipe" or "shm"
    batch: int                 # max_batch for the tier
    clients: int
    requests: int
    request_kb: float          # per-request tensor payload (inputs), KiB
    elapsed_s: float
    throughput_rps: float
    mean_batch: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    shm_requests: int          # batches that crossed via a ring slot
    shm_fallbacks: int         # batches that fell back to the pipe codec


def run_shm_bench(graph: Graph,
                  batch_sizes: Sequence[int] = (1, 8, 32),
                  requests: int = 128, clients: Optional[int] = None,
                  warmup: int = 16,
                  max_latency_ms: float = 2.0,
                  max_inflight: int = 2,
                  cache_dir=None,
                  start_method: str = "spawn") -> List[ShmBenchResult]:
    """Pipe codec vs shared-memory rings on a one-replica tier.

    One replica isolates the data-plane cost: with a single child both
    modes run the identical execution schedule, so the measured delta is
    pure transport — frame pack/unpack + pipe writes on one side, slot
    copies + a fixed-size control frame on the other.  Each batch size
    gets its own tier pair (the ring slots are sized from ``max_batch``)
    measured under the same offered load, ``clients`` when given else
    ``max_inflight * batch`` so the in-flight budget stays full.  Both
    modes share ``cache_dir`` so plan compilation is warm after the
    first tier.
    """
    from .replicas import ReplicaEngine

    feeds = sample_feeds(graph)
    payload_kb = sum(array.nbytes for array in feeds.values()) / 1024.0
    results: List[ShmBenchResult] = []
    for batch in batch_sizes:
        n_clients = clients if clients is not None \
            else max_inflight * batch
        for shm in (False, True):
            with ReplicaEngine(graph, replicas=1, max_batch=batch,
                               max_latency_ms=max_latency_ms,
                               max_inflight=max_inflight,
                               cache_dir=cache_dir,
                               start_method=start_method,
                               shm=shm) as tier:
                _closed_loop(tier, feeds, n_clients, warmup)
                before = tier.metrics()
                shm_before = (tier.shm_requests, tier.shm_fallbacks)
                elapsed = _closed_loop(tier, feeds, n_clients, requests)
                after = tier.metrics()
                measured = after.requests - before.requests
                batches = after.batches - before.batches
                results.append(ShmBenchResult(
                    data_plane="shm" if shm else "pipe",
                    batch=batch,
                    clients=n_clients,
                    requests=measured,
                    request_kb=payload_kb,
                    elapsed_s=elapsed,
                    throughput_rps=measured / elapsed if elapsed > 0
                    else 0.0,
                    mean_batch=measured / batches if batches else 0.0,
                    p50_ms=after.p50_ms,
                    p95_ms=after.p95_ms,
                    p99_ms=after.p99_ms,
                    shm_requests=tier.shm_requests - shm_before[0],
                    shm_fallbacks=tier.shm_fallbacks - shm_before[1],
                ))
    return results


def render_shm(results: Sequence[ShmBenchResult], name: str = "") -> str:
    """Fixed-width table of a pipe-vs-shm sweep (speedups are shm
    relative to the pipe row at the same batch size)."""
    header = (f"{'plane':<6} {'batch':>5} {'clients':>7} {'req/s':>9} "
              f"{'mean_b':>6} {'p50ms':>7} {'p95ms':>7} {'slots':>6} "
              f"{'fallbk':>6}")
    lines = []
    if name:
        lines.append(f"serve-bench --shm: {name}")
    lines.append(header)
    lines.append("-" * len(header))
    pipe_rps = {row.batch: row.throughput_rps for row in results
                if row.data_plane == "pipe"}
    for row in results:
        base = pipe_rps.get(row.batch, 0.0)
        speedup = (f" ({row.throughput_rps / base:.2f}x)"
                   if row.data_plane == "shm" and base > 0 else "")
        lines.append(
            f"{row.data_plane:<6} {row.batch:>5} {row.clients:>7} "
            f"{row.throughput_rps:>9.1f} {row.mean_batch:>6.2f} "
            f"{row.p50_ms:>7.2f} {row.p95_ms:>7.2f} "
            f"{row.shm_requests:>6} {row.shm_fallbacks:>6}{speedup}")
    return "\n".join(lines)


def render_replicas(results: Sequence[ReplicaBenchResult],
                    name: str = "") -> str:
    """Fixed-width table of a replica-scaling sweep (speedups are
    relative to the in-process baseline row)."""
    header = (f"{'mode':<12} {'procs':>5} {'clients':>7} {'req/s':>9} "
              f"{'mean_b':>6} {'p50ms':>7} {'p95ms':>7} {'fail':>5} "
              f"{'restart':>7}")
    lines = []
    if name:
        lines.append(f"serve-bench --replicas: {name}")
    lines.append(header)
    lines.append("-" * len(header))
    base = results[0].throughput_rps if results else 0.0
    for row in results:
        speedup = (f" ({row.throughput_rps / base:.2f}x)"
                   if base > 0 and row is not results[0] else "")
        label = row.mode if row.replicas == 0 \
            else f"{row.mode}-{row.replicas}"
        lines.append(
            f"{label:<12} {row.replicas:>5} {row.clients:>7} "
            f"{row.throughput_rps:>9.1f} {row.mean_batch:>6.2f} "
            f"{row.p50_ms:>7.2f} {row.p95_ms:>7.2f} {row.failures:>5} "
            f"{row.restarts:>7}{speedup}")
    return "\n".join(lines)


@dataclass(frozen=True)
class TraceReplayResult:
    """One open-loop trace replay of a single engine configuration.

    Latency percentiles cover *admitted* (completed) requests only —
    shed requests fail fast by design and would otherwise drag the
    percentiles toward the shed path's microseconds.  ``slo_met`` and
    ``goodput_rps`` count completions at or under the SLO.
    """

    mode: str              # "adaptive" or "fixed"
    trace: str             # arrival-process kind ("bursty", ...)
    slo_ms: float
    offered: int
    offered_rps: float
    completed: int
    slo_met: int
    shed: int
    failed: int
    elapsed_s: float
    throughput_rps: float
    goodput_rps: float
    mean_batch: float
    p50_ms: float
    p95_ms: float
    p99_ms: float


def make_trace(kind: str, rate_rps: float, duration_s: float,
               seed: int = 0) -> List[float]:
    """Deterministic open-loop arrival offsets (seconds, ascending).

    ``rate_rps`` is the *mean* arrival rate for every kind; the kinds
    differ in how that rate is distributed over ``duration_s``:

    * ``poisson`` — homogeneous Poisson process (exponential
      inter-arrivals), the steady-traffic control.
    * ``bursty`` — four on/off cycles: the first 20% of each cycle
      arrives at 4x the mean rate, the rest at 0.25x, so bursts
      transiently exceed service capacity even when the mean does not.
    * ``diurnal`` — one sinusoidal day: rate swings smoothly between
      0.2x and 1.8x of the mean over the whole duration.

    Non-homogeneous kinds are generated by thinning a homogeneous
    process at the peak rate, so the same seed yields the same trace.
    """
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate_rps and duration_s must be positive")
    if kind == "poisson":
        modulate = lambda t: 1.0  # noqa: E731
        peak = 1.0
    elif kind == "bursty":
        period = duration_s / 4.0

        def modulate(t: float) -> float:
            return 4.0 if (t % period) < 0.2 * period else 0.25
        peak = 4.0
    elif kind == "diurnal":
        def modulate(t: float) -> float:
            return 1.0 + 0.8 * float(
                np.sin(2.0 * np.pi * t / duration_s))
        peak = 1.8
    else:
        raise ValueError(f"unknown trace kind {kind!r}; expected "
                         f"poisson, bursty, or diurnal")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / (rate_rps * peak)))
        if t >= duration_s:
            break
        if rng.random() * peak <= modulate(t):
            arrivals.append(t)
    return arrivals


def run_trace_replay(graph: Graph, arrivals: Sequence[float],
                     slo_ms: float, trace_name: str = "trace",
                     adaptive: bool = True,
                     max_batch: int = 8, max_latency_ms: float = 2.0,
                     workers: int = 1,
                     num_threads: Optional[int] = None,
                     shed_policy=None, plan_cache=None,
                     warmup: int = 32,
                     headroom_ms: Optional[float] = None,
                     timeout_s: float = 120.0) -> TraceReplayResult:
    """Replay ``arrivals`` open-loop against one engine configuration.

    Unlike the closed-loop sweeps above, submission times come from the
    trace, not from the engine's own completion rate — so overload is
    visible as growing queues, SLO misses, and (on the adaptive path)
    shedding, instead of being hidden by client back-pressure.  Each
    request carries ``slo_ms``; outcomes are classified per request:
    completed-in-SLO, completed-late, shed (typed fast failure), or
    failed.  ``headroom_ms`` defaults to 25% of the SLO on the
    adaptive path — slack for dispatch/finalize overhead and scheduler
    noise the execute cost model cannot see, sized so the admitted
    tail lands *under* the SLO rather than exactly on the admission
    boundary; it is ignored on the fixed path.
    """
    import time

    from .batcher import RequestShedError

    if headroom_ms is None:
        headroom_ms = max(0.5, 0.25 * slo_ms)
    feeds = sample_feeds(graph)
    with InferenceEngine(graph, workers=workers, max_batch=max_batch,
                         max_latency_ms=max_latency_ms,
                         num_threads=num_threads,
                         adaptive=adaptive,
                         shed_policy=shed_policy,
                         plan_cache=plan_cache,
                         headroom_ms=headroom_ms) as engine:
        if warmup > 0:
            # Mixed-concurrency warmup compiles the per-size plans and
            # gives the adaptive path calibration points at several
            # batch sizes before the clock starts.
            _closed_loop(engine, feeds, max_batch, warmup)
            _closed_loop(engine, feeds, 1, min(4, warmup))
        before = engine.metrics()
        done_at: Dict[int, float] = {}
        lock = threading.Lock()

        def stamp(index: int):
            def callback(_future) -> None:
                with lock:
                    done_at[index] = time.monotonic()
            return callback

        records: List[Tuple[float, object]] = []
        start = time.monotonic()
        for index, offset in enumerate(arrivals):
            delay = (start + offset) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            submitted = time.monotonic()
            future = engine.infer(feeds, slo_ms=slo_ms)
            future.add_done_callback(stamp(index))
            records.append((submitted, future))
        completed = shed = failed = slo_met = 0
        latencies: List[float] = []
        slo_s = slo_ms / 1e3
        for index, (submitted, future) in enumerate(records):
            try:
                future.result(timeout=timeout_s)
            except RequestShedError:
                shed += 1
                continue
            except BaseException:
                failed += 1
                continue
            with lock:
                finished = done_at.get(index, time.monotonic())
            latency = finished - submitted
            latencies.append(latency)
            completed += 1
            if latency <= slo_s:
                slo_met += 1
        end = time.monotonic()
        after = engine.metrics()
    elapsed = max(end - start, 1e-9)
    batches = after.batches - before.batches
    measured = after.requests - before.requests
    latencies.sort()
    return TraceReplayResult(
        mode="adaptive" if adaptive else "fixed",
        trace=trace_name,
        slo_ms=float(slo_ms),
        offered=len(records),
        offered_rps=len(records) / elapsed,
        completed=completed,
        slo_met=slo_met,
        shed=shed,
        failed=failed,
        elapsed_s=elapsed,
        throughput_rps=completed / elapsed,
        goodput_rps=slo_met / elapsed,
        mean_batch=measured / batches if batches else 0.0,
        p50_ms=percentile(latencies, 50) * 1e3,
        p95_ms=percentile(latencies, 95) * 1e3,
        p99_ms=percentile(latencies, 99) * 1e3,
    )


def render_trace_replay(results: Sequence[TraceReplayResult],
                        name: str = "") -> str:
    """Fixed-width table of trace-replay outcomes (goodput ratios are
    adaptive relative to the fixed row of the same trace)."""
    header = (f"{'mode':<9} {'trace':<8} {'slo_ms':>6} {'offered':>7} "
              f"{'ok':>6} {'in-slo':>6} {'shed':>5} {'fail':>4} "
              f"{'good/s':>8} {'p50ms':>7} {'p99ms':>8}")
    lines = []
    if name:
        lines.append(f"serve-bench --trace: {name}")
    lines.append(header)
    lines.append("-" * len(header))
    fixed_goodput = {row.trace: row.goodput_rps for row in results
                     if row.mode == "fixed"}
    for row in results:
        ratio = ""
        base = fixed_goodput.get(row.trace, 0.0)
        if row.mode == "adaptive" and base > 0:
            ratio = f" ({row.goodput_rps / base:.2f}x)"
        lines.append(
            f"{row.mode:<9} {row.trace:<8} {row.slo_ms:>6.1f} "
            f"{row.offered:>7} {row.completed:>6} {row.slo_met:>6} "
            f"{row.shed:>5} {row.failed:>4} {row.goodput_rps:>8.1f} "
            f"{row.p50_ms:>7.2f} {row.p99_ms:>8.2f}{ratio}")
    return "\n".join(lines)


def render(results: Sequence[BenchResult], name: str = "") -> str:
    """Fixed-width table of a benchmark sweep."""
    header = (f"{'workers':>7} {'batch':>5} {'clients':>7} {'req/s':>9} "
              f"{'mean_b':>6} {'p50ms':>7} {'p95ms':>7} "
              f"{'allocs':>6} {'reuses':>7}")
    lines = []
    if name:
        lines.append(f"serve-bench: {name}")
    lines.append(header)
    lines.append("-" * len(header))
    base = results[0].throughput_rps if results else 0.0
    for row in results:
        speedup = (f" ({row.throughput_rps / base:.2f}x)"
                   if base > 0 and row is not results[0] else "")
        lines.append(
            f"{row.workers:>7} {row.max_batch:>5} {row.clients:>7} "
            f"{row.throughput_rps:>9.1f} {row.mean_batch:>6.2f} "
            f"{row.p50_ms:>7.2f} {row.p95_ms:>7.2f} "
            f"{row.arena_allocations:>6} {row.arena_reuses:>7}{speedup}")
    return "\n".join(lines)
