"""Multi-process replica serving tier: break the GIL ceiling.

``BENCH_pr4.json`` showed intra-process threading *losing* throughput
(0.87-0.93x at 2-8 threads): the numpy hot paths are GIL/cache-bound, so
more threads in one interpreter cannot deliver multi-core scale.  This
module moves the parallelism across *processes* instead — the VEDLIoT
premise applied to the host: match the execution substrate to the
workload rather than adding threads.

Architecture
------------

* **Replica processes.**  ``N`` executor processes, each owning its own
  compiled plan, scratch arena, and kernel workspace — no shared Python
  state, no GIL contention, private caches.  A replica is a tight loop:
  receive a batch frame, run the plan, send the results back.

* **Zero-copy shared weights.**  Replicas never receive weights over the
  wire.  The front-end pre-warms the persistent plan cache
  (:mod:`repro.runtime.plan_cache`) for every batch size the tier can
  form, and each replica ``np.memmap``-s the entry's 64-byte-aligned
  ``weights.bin`` blob read-only.  File-backed read-only pages are
  physically shared by the OS, so *N* replicas reference **one**
  resident copy of the weights — the cache's flat-blob layout was built
  for exactly this.

* **Front-end routing with admission control and backpressure.**  The
  parent keeps the existing :class:`~repro.serving.batcher.BatchQueue`
  micro-batching; the dispatcher routes each assembled batch to the
  least-loaded live replica, bounded by ``max_inflight`` outstanding
  batches per replica.  When every replica is saturated the dispatcher
  blocks (backpressure into the queue), and once the queue itself holds
  ``queue_limit`` requests, new submissions are *shed* with a typed
  :class:`TierSaturatedError` instead of growing an unbounded backlog.

* **Lifecycle.**  Replicas are spawned (``spawn`` start method: safe
  with the parent's threads), health-checked via a READY handshake, and
  restarted on crash: a dead replica's in-flight requests fail with
  :class:`ReplicaCrashError`, its queue is re-routed to survivors, and a
  replacement process is spawned (up to ``restart_limit`` times).

* **Zero-copy data plane.**  With shared memory enabled (the default;
  ``REPRO_REPLICA_SHM=0`` or ``shm=False`` disables), tensor payloads
  never cross the pipe at all: the parent writes each batch **once**
  into a 64-byte-aligned slot of the replica's request ring
  (:mod:`repro.serving.shm`), sends a tiny control frame (slot index,
  ring generation, descriptor table), and the replica executes straight
  out of read-only views of the mapped slot, writing outputs into the
  paired response-ring slot the parent reads zero-copy.  Slot
  availability *is* the ``max_inflight`` bound, rings are retired
  (unlinked) whole on crash so a restarted replica serves from a fresh
  generation, and anything that does not fit a slot falls back
  per-frame to the pipe codec below — bitwise-identical either way.

* **Serialization.**  Pipe-borne requests and results (the shm-off
  path, and the per-frame fallback) cross as compact binary frames
  (:func:`pack_tensor_frame` / :func:`decode_tensors`): raw C-order
  bytes plus dtype/shape headers, no pickle on the hot path, assembled
  with a single allocation (headers packed in place, payloads
  ``np.copyto``-ed into views of one ``bytearray``), bitwise-exact
  round-trips by construction.

* **Telemetry.**  Each response frame piggybacks the replica's local
  counters (requests, batches, failures, arena traffic) — a few ints,
  effectively free — and the front-end registers with
  :mod:`repro.telemetry.collectors`, so one registry scrape shows the
  whole tier as ``repro_replica_*`` series labeled by replica index.

* **Distributed tracing.**  With a :class:`Tracer` attached, sampled
  requests carry a :class:`TierRequestTrace` whose phases decompose the
  tier pipeline (queue wait / slot wait / assembly / dispatch /
  finalize).  The dispatch frame of a traced batch grows an optional
  trailing trace-context block; the replica answers with its per-step
  executor timeline piggybacked on the result frame, and the parent
  merges those spans — aligned onto its own ``perf_counter`` axis via
  the spawn-time clock handshake (:mod:`repro.telemetry.clock`, min-RTT
  midpoint, periodically resynced over the same pipe) and clamped into
  the batch's dispatch window — under the request's ``dispatch`` phase.
  Untraced batches carry zero extra bytes and the replica takes the
  exact pre-existing path.

* **Flight recorder.**  The tier feeds the always-on bounded event ring
  (:mod:`repro.telemetry.flightrec`): admissions, sheds, batch
  compositions, slot waits, SLO misses, generation retirements,
  restarts, breaker trips.  The ring auto-dumps (versioned JSON +
  Chrome trace) on a replica crash-restart or a breaker-open
  transition, so the moments before an incident are always on disk.

The front-end mirrors :class:`repro.serving.engine.InferenceEngine`'s
surface (``infer`` / ``infer_sync`` / ``infer_many`` / ``metrics`` /
``close``), so serve-bench and client code treat both tiers uniformly.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph
from ..runtime.executor import Executor
from ..runtime.plan_cache import PlanCache, default_cache_dir, load_or_build
from ..telemetry import collectors as _telemetry
from ..telemetry.clock import (
    DEFAULT_HANDSHAKE_PROBES,
    DEFAULT_RESYNC_S,
    ClockSync,
)
from ..telemetry.flightrec import FlightRecorder, get_flight_recorder
from ..telemetry.registry import get_registry, log_buckets
from ..telemetry.tracing import RequestTrace, Span, Tracer
from .batcher import (
    BatchQueue,
    InferenceRequest,
    QueueClosedError,
    RequestShedError,
)
from .engine import EngineClosedError, ShedPolicy, check_sample
from .latency_model import BatchLatencyModel, model_path
from .metrics import MetricsRecorder, MetricsSnapshot
from .shm import (
    ShmAttachment,
    ShmChannel,
    ShmRingSpec,
    layout_tensors,
    pack_descriptors,
    read_tensors,
    required_slot_bytes,
    shm_available,
    unpack_descriptors,
    write_tensors,
)

logger = logging.getLogger("repro.serving")


class TierSaturatedError(RuntimeError):
    """Raised when the tier sheds a request because its queue is full.

    The typed signal of the admission controller: the caller can retry
    with backoff, divert to another tier, or degrade — anything but
    silently growing an unbounded backlog.
    """


class ReplicaError(RuntimeError):
    """A replica reported a failure executing a batch (remote error)."""


class ReplicaCrashError(RuntimeError):
    """A replica process died with requests in flight."""


class ReplicaProtocolError(RuntimeError):
    """A malformed frame crossed the replica pipe."""


# -- wire format ------------------------------------------------------------
#
# Every frame is:   header | stats | payload
#   header  !4sBQ   magic, kind, request id
#   stats   !5Q     replica-local counters piggybacked on every frame:
#                   requests, batches, failures, arena allocations,
#                   arena reuses (zeros on frames the parent sends)
#   payload         kind-specific (tensors for REQUEST/RESULT, a typed
#                   message for ERROR, empty for READY/SHUTDOWN; for
#                   SHM_REQUEST/SHM_RESULT a !II slot-index/generation
#                   pair plus a tensor descriptor table — the payload
#                   bytes themselves live in the shared-memory rings)

_MAGIC = b"RPRT"
_KIND_REQUEST = 1
_KIND_RESULT = 2
_KIND_ERROR = 3
_KIND_READY = 4
_KIND_SHUTDOWN = 5
_KIND_SHM_REQUEST = 6
_KIND_SHM_RESULT = 7
# Clock probe: the replica answers with its perf_counter reading; the
# parent brackets the round trip to estimate the clock-domain offset
# (spawn-time handshake + periodic resync, see telemetry.clock).
_KIND_CLOCK = 8

_SHM_SLOT = struct.Struct("!II")

_HEADER = struct.Struct("!4sBQ")
_STATS = struct.Struct("!5Q")
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_F64 = struct.Struct("!d")

_ZERO_STATS = (0, 0, 0, 0, 0)

# Optional trailing blocks.  Both tensor codecs are self-delimiting
# (decode consumes exactly what encode produced), so a traced frame can
# append a magic-tagged block after the regular payload without
# changing the wire format untraced frames use — old and new payloads
# are byte-identical when tracing is off.
#
#   trace context  !2sQ     b"Tc", trace id — appended to a dispatched
#                           batch frame to ask the replica for spans
#   span block     !2sQddd  b"Sp", trace id, frame-received /
#                           execute-start / execute-end perf_counter
#                           readings in the *replica's* clock domain,
#                           then a !I count of per-step entries
#   span entry     !ddQHH   step start/end (seconds relative to
#                           execute-start), thread ident, name/op byte
#                           lengths, followed by the name and op bytes
_TRACE_CTX = struct.Struct("!2sQ")
_TRACE_CTX_MAGIC = b"Tc"
_SPAN_HEADER = struct.Struct("!2sQddd")
_SPAN_MAGIC = b"Sp"
_SPAN_ENTRY = struct.Struct("!ddQHH")


def encode_tensors(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Encode named arrays as one compact binary payload.

    Raw C-order bytes plus name/dtype/shape headers — no pickle, and a
    bitwise-exact round-trip through :func:`decode_tensors` for every
    dtype the runtime uses (fp32/fp16/int8/int32/uint8/bool).
    """
    parts: List[bytes] = [_U32.pack(len(arrays))]
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        name_bytes = name.encode("utf-8")
        dtype_bytes = array.dtype.str.encode("ascii")
        parts.append(_U16.pack(len(name_bytes)))
        parts.append(name_bytes)
        parts.append(_U16.pack(len(dtype_bytes)))
        parts.append(dtype_bytes)
        parts.append(_U8.pack(array.ndim))
        parts.append(struct.pack(f"!{array.ndim}Q", *array.shape))
        parts.append(_U64.pack(array.nbytes))
        parts.append(array.tobytes())
    return b"".join(parts)


def decode_tensors(payload) -> Dict[str, np.ndarray]:
    """Decode :func:`encode_tensors` output.

    The returned arrays are read-only views over ``payload`` (no copy);
    consumers that need ownership copy the slices they keep — both the
    replica executor (inputs are never written) and the front-end's
    per-request result split already satisfy that.
    """
    return _decode_tensors(payload)[0]


def _decode_tensors(payload) -> Tuple[Dict[str, np.ndarray], int]:
    """Decode plus the bytes consumed, so callers can find a trailing
    trace block appended after the tensor table."""
    view = memoryview(payload)
    offset = 0
    (count,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    arrays: Dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        name = bytes(view[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        (dtype_len,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        dtype = np.dtype(bytes(view[offset:offset + dtype_len])
                         .decode("ascii"))
        offset += dtype_len
        (ndim,) = _U8.unpack_from(view, offset)
        offset += _U8.size
        shape = struct.unpack_from(f"!{ndim}Q", view, offset)
        offset += ndim * _U64.size
        (nbytes,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        data = view[offset:offset + nbytes]
        if len(data) != nbytes:
            raise ReplicaProtocolError("truncated tensor payload")
        offset += nbytes
        arrays[name] = np.frombuffer(data, dtype=dtype).reshape(shape)
    return arrays, offset


def pack_tensor_frame(kind: int, request_id: int,
                      stats: Tuple[int, ...],
                      arrays: Mapping[str, np.ndarray]) -> bytearray:
    """Assemble a complete tensor frame in **one** allocation.

    Wire-compatible with ``_pack_frame(kind, id, stats,
    encode_tensors(arrays))`` — same bytes — but where that path
    materializes every array via ``tobytes()``, joins the parts, and
    concatenates the header (three traversals of the payload), this
    packs headers in place and ``np.copyto``-s each tensor directly
    into a view of the final ``bytearray``: exactly one pass over the
    payload bytes, and no intermediate the allocator has to find room
    for next to the result.  ``Connection.send_bytes`` accepts the
    bytearray as-is.
    """
    names = sorted(arrays)
    metas = []
    total = _HEADER.size + _STATS.size + _U32.size
    for name in names:
        array = np.asarray(arrays[name])
        name_bytes = name.encode("utf-8")
        dtype_bytes = array.dtype.str.encode("ascii")
        metas.append((array, name_bytes, dtype_bytes))
        total += (_U16.size + len(name_bytes) + _U16.size
                  + len(dtype_bytes) + _U8.size + array.ndim * _U64.size
                  + _U64.size + array.nbytes)
    frame = bytearray(total)
    _HEADER.pack_into(frame, 0, _MAGIC, kind, request_id)
    _STATS.pack_into(frame, _HEADER.size, *stats)
    offset = _HEADER.size + _STATS.size
    _U32.pack_into(frame, offset, len(metas))
    offset += _U32.size
    for array, name_bytes, dtype_bytes in metas:
        _U16.pack_into(frame, offset, len(name_bytes))
        offset += _U16.size
        frame[offset:offset + len(name_bytes)] = name_bytes
        offset += len(name_bytes)
        _U16.pack_into(frame, offset, len(dtype_bytes))
        offset += _U16.size
        frame[offset:offset + len(dtype_bytes)] = dtype_bytes
        offset += len(dtype_bytes)
        _U8.pack_into(frame, offset, array.ndim)
        offset += _U8.size
        struct.pack_into(f"!{array.ndim}Q", frame, offset, *array.shape)
        offset += array.ndim * _U64.size
        _U64.pack_into(frame, offset, array.nbytes)
        offset += _U64.size
        target = np.frombuffer(frame, dtype=array.dtype,
                               count=array.size,
                               offset=offset).reshape(array.shape)
        np.copyto(target, array, casting="no")
        offset += array.nbytes
    return frame


def _pack_frame(kind: int, request_id: int,
                stats: Tuple[int, ...] = _ZERO_STATS,
                payload: bytes = b"") -> bytes:
    return _HEADER.pack(_MAGIC, kind, request_id) + _STATS.pack(*stats) \
        + payload


def _unpack_frame(frame: bytes):
    if len(frame) < _HEADER.size + _STATS.size:
        raise ReplicaProtocolError("short frame")
    magic, kind, request_id = _HEADER.unpack_from(frame, 0)
    if magic != _MAGIC:
        raise ReplicaProtocolError(f"bad frame magic {magic!r}")
    stats = _STATS.unpack_from(frame, _HEADER.size)
    payload = memoryview(frame)[_HEADER.size + _STATS.size:]
    return kind, request_id, stats, payload


def _pack_error(request_id: int, stats: Tuple[int, ...],
                exc: BaseException) -> bytes:
    kind_bytes = type(exc).__name__.encode("utf-8")
    message_bytes = str(exc).encode("utf-8", errors="replace")
    payload = (_U32.pack(len(kind_bytes)) + kind_bytes
               + _U32.pack(len(message_bytes)) + message_bytes)
    return _pack_frame(_KIND_ERROR, request_id, stats, payload)


def _unpack_error(payload) -> Tuple[str, str]:
    view = memoryview(payload)
    (kind_len,) = _U32.unpack_from(view, 0)
    offset = _U32.size
    kind = bytes(view[offset:offset + kind_len]).decode("utf-8")
    offset += kind_len
    (message_len,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    message = bytes(view[offset:offset + message_len]).decode("utf-8")
    return kind, message


def _unpack_trace_ctx(rest) -> Optional[int]:
    """Trace id from a request frame's trailing context block, or None
    (untraced frames simply end where the tensor payload ends)."""
    if len(rest) < _TRACE_CTX.size:
        return None
    magic, trace_id = _TRACE_CTX.unpack_from(rest, 0)
    if magic != _TRACE_CTX_MAGIC:
        return None
    return trace_id


def _pack_span_block(trace_id: int, recv_t: float, exec_start: float,
                     exec_end: float,
                     timeline: Sequence[Mapping[str, object]]) -> bytes:
    """The replica's span payload: batch landmarks + per-step entries,
    all in the replica's own perf_counter domain (steps relative to
    ``exec_start``, exactly as the executor timeline records them)."""
    parts: List[bytes] = [
        _SPAN_HEADER.pack(_SPAN_MAGIC, trace_id, recv_t, exec_start,
                          exec_end),
        _U32.pack(len(timeline)),
    ]
    for entry in timeline:
        name_bytes = str(entry["name"]).encode("utf-8")
        op_bytes = str(entry.get("op", "step")).encode("utf-8")
        parts.append(_SPAN_ENTRY.pack(
            float(entry["start"]), float(entry["end"]),
            int(entry.get("thread", 0)) & 0xFFFFFFFFFFFFFFFF,
            len(name_bytes), len(op_bytes)))
        parts.append(name_bytes)
        parts.append(op_bytes)
    return b"".join(parts)


def _unpack_span_block(rest):
    """Inverse of :func:`_pack_span_block`; None when ``rest`` holds no
    span block (untraced result frames end at the tensor payload)."""
    if len(rest) < _SPAN_HEADER.size:
        return None
    magic, trace_id, recv_t, exec_start, exec_end = \
        _SPAN_HEADER.unpack_from(rest, 0)
    if magic != _SPAN_MAGIC:
        return None
    offset = _SPAN_HEADER.size
    (count,) = _U32.unpack_from(rest, offset)
    offset += _U32.size
    steps: List[Dict[str, object]] = []
    for _ in range(count):
        start, end, thread, name_len, op_len = \
            _SPAN_ENTRY.unpack_from(rest, offset)
        offset += _SPAN_ENTRY.size
        name = bytes(rest[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        op = bytes(rest[offset:offset + op_len]).decode("utf-8")
        offset += op_len
        steps.append({"name": name, "op": op, "start": start,
                      "end": end, "thread": thread})
    return trace_id, recv_t, exec_start, exec_end, steps


# -- replica process --------------------------------------------------------


@dataclass
class ReplicaSpec:
    """Everything a replica process needs to serve (picklable).

    Weights travel as a plan-cache directory plus per-batch-size keys —
    never over the pipe; each replica memmaps the shared blob read-only.
    """

    index: int
    cache_dir: str
    keys: Dict[int, str]
    reuse_buffers: bool = True
    num_threads: int = 1
    prewarm_batches: Tuple[int, ...] = ()
    # Shared-memory ring pair to attach (None: pipe codec only).  The
    # generation inside ties every control frame to this spawn's rings.
    shm: Optional[ShmRingSpec] = None


def _replica_main(conn, spec: ReplicaSpec) -> None:
    """One replica process: load mmap-shared plans, serve batch frames."""
    import signal

    # The parent coordinates shutdown over the pipe; a ^C delivered to
    # the whole process group must not kill replicas mid-frame.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):          # non-main thread / platform
        pass

    requests = batches = failures = 0
    cache = PlanCache(spec.cache_dir)
    executors: Dict[int, Executor] = {}

    def _executor_for(batch: int) -> Executor:
        executor = executors.get(batch)
        if executor is None:
            key = spec.keys.get(batch)
            if key is None:
                raise ReplicaProtocolError(
                    f"no plan-cache key for batch size {batch} "
                    f"(tier prewarmed {sorted(spec.keys)})")
            loaded = cache.load(key)       # mmap: weights shared, read-only
            if loaded is None:
                raise RuntimeError(
                    f"plan-cache entry {key[:12]}… missing or corrupt")
            graph, plan = loaded
            executor = Executor(graph, plan=plan,
                                reuse_buffers=spec.reuse_buffers,
                                num_threads=spec.num_threads)
            executors[batch] = executor
        return executor

    def _stats() -> Tuple[int, int, int, int, int]:
        allocations = reuses = 0
        for executor in executors.values():
            arena = executor.plan.arena
            if arena is not None:
                allocations += arena.stats.allocations
                reuses += arena.stats.reuses
        return (requests, batches, failures, allocations, reuses)

    attachment: Optional[ShmAttachment] = None
    try:
        if spec.shm is not None:
            # Attach both rings before READY: an attach failure is a
            # startup failure the parent's handshake surfaces, never a
            # tier silently serving over a slower path than configured.
            attachment = ShmAttachment(spec.shm)
        for batch in spec.prewarm_batches:
            _executor_for(batch)
        conn.send_bytes(_pack_frame(_KIND_READY, 0, _stats()))
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            recv_t = time.perf_counter()
            kind, request_id, _, payload = _unpack_frame(frame)
            if kind == _KIND_SHUTDOWN:
                break
            if kind == _KIND_CLOCK:
                # Answer with our clock reading immediately: every
                # microsecond between recv and reply widens the RTT
                # bound on the parent's offset estimate.
                try:
                    conn.send_bytes(_pack_frame(
                        _KIND_CLOCK, request_id, _stats(),
                        _F64.pack(time.perf_counter())))
                except (BrokenPipeError, OSError):
                    break
                continue
            if kind not in (_KIND_REQUEST, _KIND_SHM_REQUEST):
                continue
            size = 0
            trace_id = None
            try:
                if kind == _KIND_SHM_REQUEST:
                    slot, generation = _SHM_SLOT.unpack_from(payload, 0)
                    if attachment is None:
                        raise ReplicaProtocolError(
                            "shm frame on a pipe-only replica")
                    if generation != attachment.generation:
                        raise ReplicaProtocolError(
                            f"shm frame for generation {generation}, "
                            f"attached {attachment.generation}")
                    descs, consumed = unpack_descriptors(
                        payload[_SHM_SLOT.size:])
                    trace_id = _unpack_trace_ctx(
                        payload[_SHM_SLOT.size + consumed:])
                    # Execute straight out of the mapped slot: no
                    # payload bytes ever crossed the pipe.
                    feeds = attachment.request_views(slot, descs)
                else:
                    feeds, consumed = _decode_tensors(payload)
                    trace_id = _unpack_trace_ctx(payload[consumed:])
                size = int(next(iter(feeds.values())).shape[0]) \
                    if feeds else 0
                executor = _executor_for(size)
                if trace_id is not None:
                    executor.record_timeline = True
                try:
                    exec_start = time.perf_counter()
                    outputs = executor.run(feeds)
                    exec_end = time.perf_counter()
                finally:
                    if trace_id is not None:
                        executor.record_timeline = False
                out_descs = None
                if kind == _KIND_SHM_REQUEST:
                    # One copy arena -> response slot; the parent reads
                    # it zero-copy.  None: outputs outgrew the slot
                    # (dynamic shapes) — fall back to the pipe codec
                    # for this frame only.
                    out_descs = attachment.write_response(slot, outputs)
                requests += size
                batches += 1
                # A traced batch ships its spans home piggybacked on
                # the result frame; untraced frames append nothing.
                span_block = b""
                if trace_id is not None:
                    span_block = _pack_span_block(
                        trace_id, recv_t, exec_start, exec_end,
                        executor.last_timeline or ())
                if out_descs is not None:
                    response = _pack_frame(
                        _KIND_SHM_RESULT, request_id, _stats(),
                        _SHM_SLOT.pack(slot, attachment.generation)
                        + pack_descriptors(out_descs) + span_block)
                else:
                    # Single-allocation framing: headers packed in
                    # place, result bytes copied out of the arena once.
                    response = pack_tensor_frame(
                        _KIND_RESULT, request_id, _stats(), outputs)
                    if span_block:
                        response += span_block
                executor.recycle(outputs)
            except BaseException as exc:
                failures += size if size else 1
                response = _pack_error(request_id, _stats(), exc)
            try:
                conn.send_bytes(response)
            except (BrokenPipeError, OSError):
                break
            feeds = None               # release the slot views between
    finally:                           # frames and before close below
        feeds = None
        conn.close()
        if attachment is not None:
            attachment.close()


# -- front end --------------------------------------------------------------


class TierRequestTrace(RequestTrace):
    """Span decomposition for a request crossing the replica tier.

    Same mark-sheet machinery as the in-process engine's trace, but the
    phases follow the tier pipeline, and the ``dispatch`` window (send
    to receive, the time the batch spends on the other side of the data
    plane) hosts the replica's merged remote spans::

        request
        ├── queue_wait       submit -> dispatcher pops the batch
        ├── slot_wait        waiting for a live replica with capacity
        ├── batch_assembly   concat + slot write / frame pack + send
        ├── dispatch         frame sent -> result frame received
        │   └── replica_batch   (replica process track, clock-aligned)
        │       └── execute
        │           └── <per-step kernel spans>
        └── finalize         per-request split + future completion
    """

    __slots__ = ()

    _PHASES = (
        ("queue_wait", "enqueued", "dequeued"),
        ("slot_wait", "dequeued", "acquired"),
        ("batch_assembly", "acquired", "sent"),
        ("dispatch", "sent", "received"),
        ("finalize", "received", "completed"),
    )
    _STEPS_PHASE = "dispatch"


@dataclass
class _Inflight:
    requests: List[InferenceRequest]
    sent_at: float
    # Shared-memory bookkeeping: the request-ring slot this batch rides
    # in (None: pipe frame) and the payload bytes parked there.
    slot: Optional[int] = None
    shm_bytes: int = 0
    # Tracing: the sampled traces riding in this batch and the
    # perf_counter send stamp bounding the dispatch window (remote
    # spans are clamped into [sent_pc, received_pc] after alignment).
    traces: Tuple[TierRequestTrace, ...] = ()
    sent_pc: float = 0.0


class _Replica:
    """Parent-side handle of one replica process."""

    def __init__(self, index: int, process, conn,
                 channel: Optional[ShmChannel] = None) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.channel = channel
        self.send_lock = threading.Lock()
        self.inflight: Dict[int, _Inflight] = {}
        self.alive = True
        self.completed_requests = 0
        self.completed_batches = 0
        self.failed_requests = 0
        # Latest piggybacked child counters: requests, batches,
        # failures, arena allocations, arena reuses.
        self.child_stats: Tuple[int, ...] = _ZERO_STATS
        # Clock-domain alignment: offset estimate for this process
        # (handshaken before the receiver starts, resynced in-band) and
        # the send stamps of resync probes still in flight.
        self.clock = ClockSync()
        self.clock_probes: Dict[int, float] = {}

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's view in :meth:`ReplicaEngine.replica_stats`."""

    index: int
    pid: Optional[int]
    alive: bool
    inflight: int
    completed_requests: int
    completed_batches: int
    failed_requests: int
    child_requests: int
    child_batches: int
    child_failures: int
    child_arena_allocations: int
    child_arena_reuses: int


_BLAS_ENV_VARS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
                  "MKL_NUM_THREADS")


class ReplicaEngine:
    """Routes micro-batched requests across N executor processes.

    Parameters
    ----------
    graph
        Model to serve; rebatched internally, so any build batch works.
    replicas
        Executor processes to spawn.  Throughput scales with cores
        because each replica is a full interpreter with its own GIL.
    max_batch / max_latency_ms
        Micro-batching knobs, exactly as on ``InferenceEngine``.
    max_inflight
        Outstanding batches allowed per replica; one executes while the
        next waits in the replica's pipe (pipelining), and the
        dispatcher blocks once every live replica is at the bound
        (backpressure).
    queue_limit
        Admission bound on the front-end queue; submissions past it are
        shed with :class:`TierSaturatedError`.  Defaults to
        ``4 * replicas * max_inflight * max_batch``.
    cache_dir
        Plan-cache directory shared with the replicas (default: the
        process-wide cache).  The tier pre-warms an entry per batch
        size ``1..max_batch``; replicas memmap those entries read-only,
        so all processes share one resident copy of the weights and a
        restarted tier warm-starts from disk.
    aot_config
        :class:`repro.optim.passes.AOTConfig` for the pre-warmed builds
        (bitwise-safe defaults when None).
    num_threads
        Intra-process executor threads per replica (default 1: the tier
        scales by process, and oversubscribing cores hurts).
    blas_threads
        Value exported to the BLAS thread-count env vars around replica
        spawn (default 1, same rationale); ``None`` leaves the
        environment alone.
    start_method
        ``multiprocessing`` start method (default ``"spawn"``: safe
        with the parent's dispatcher/receiver threads; ``"fork"`` is
        faster to boot but inherits arbitrary thread state).
    restart_limit
        Total replica restarts the tier will perform before declaring
        surviving capacity final (default 3).
    ready_timeout_s
        How long to wait for each replica's READY handshake.
    shm
        Route tensor payloads through per-replica shared-memory rings
        instead of the pipe (:mod:`repro.serving.shm`).  ``None`` (the
        default) follows ``REPRO_REPLICA_SHM`` (on unless set to
        ``0``); either way the tier silently runs pipe-only where POSIX
        shared memory is unavailable.  Slot sizes are fixed from the
        graph's input/output specs at ``max_batch``, with one slot pair
        per ``max_inflight`` batch; oversized frames fall back to the
        pipe codec per-request (counted in ``shm_fallbacks``).
    adaptive
        Enable SLO-aware assembly on the tier's *front-end* queue: a
        tier-level :class:`BatchLatencyModel` is fitted from
        dispatch-to-completion timings and the queue forms the largest
        batch predicted to meet the tightest queued deadline, shedding
        requests that cannot make their SLO even alone — *before* they
        cross the data plane.  The model persists next to the plan
        cache (``<key>-tier``), so a restarted tier starts calibrated.
    default_slo_ms / shed_policy / latency_model / headroom_ms
        Exactly as on :class:`repro.serving.engine.InferenceEngine`:
        the default request deadline, the queue-bound/miss-rate
        :class:`ShedPolicy`, an injected shared model, and the
        scheduling slack the assembly reserves per comparison.
    tracer
        Optional :class:`repro.telemetry.Tracer`; sampled requests
        carry a :class:`TierRequestTrace` across the data plane, and
        finished traces include the replica's clock-aligned per-step
        spans (see the module docstring).  ``None`` (the default) keeps
        every frame byte-identical to the untraced wire format.
    slow_request_ms
        Log a warning (with the tier-phase breakdown when the request
        was traced) for any request completing slower than this many
        milliseconds; mirrors the in-process engine's slow-request log
        and feeds ``slow_requests``.
    flight_recorder
        The event ring the tier records into (default: the process-wide
        recorder).  Auto-dumped on crash-restart and breaker trips.
    clock_resync_s
        How often (seconds) the dispatcher refreshes each replica's
        clock-offset estimate with an in-band probe (default 30).
    """

    def __init__(self, graph: Graph, replicas: int = 2, max_batch: int = 8,
                 max_latency_ms: float = 2.0,
                 max_inflight: int = 2,
                 queue_limit: Optional[int] = None,
                 cache_dir=None, aot_config=None,
                 reuse_buffers: bool = True,
                 num_threads: int = 1,
                 blas_threads: Optional[int] = 1,
                 start_method: str = "spawn",
                 restart_limit: int = 3,
                 ready_timeout_s: float = 120.0,
                 shm: Optional[bool] = None,
                 adaptive: bool = False,
                 default_slo_ms: Optional[float] = None,
                 shed_policy: Optional[ShedPolicy] = None,
                 latency_model: Optional[BatchLatencyModel] = None,
                 headroom_ms: float = 0.5,
                 tracer: Optional[Tracer] = None,
                 slow_request_ms: Optional[float] = None,
                 flight_recorder: Optional[FlightRecorder] = None,
                 clock_resync_s: float = DEFAULT_RESYNC_S) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.template = graph.with_batch(1)
        self.replicas = int(replicas)
        self.max_batch = int(max_batch)
        self.max_inflight = int(max_inflight)
        self.queue_limit = int(queue_limit) if queue_limit is not None \
            else 4 * self.replicas * self.max_inflight * self.max_batch
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.restart_limit = int(restart_limit)
        self.ready_timeout_s = float(ready_timeout_s)
        self.blas_threads = blas_threads
        self._ctx = multiprocessing.get_context(start_method)
        self._input_specs = {spec.name: spec
                             for spec in self.template.inputs}
        self.recorder = MetricsRecorder()
        self._cond = threading.Condition()
        self._closed = False
        self._next_id = 1
        self._restarts = 0
        self._shed = 0
        # Test seam: clearing the gate holds the dispatcher between
        # batches, making queue-drain/shed behaviour deterministic.
        self._dispatch_gate = threading.Event()
        self._dispatch_gate.set()

        # -- observability -----------------------------------------------
        self.tracer = tracer
        self.slow_request_ms = (float(slow_request_ms)
                                if slow_request_ms is not None else None)
        self.slow_requests = 0
        self.flightrec = flight_recorder if flight_recorder is not None \
            else get_flight_recorder()
        self.clock_resync_s = float(clock_resync_s)
        # Breaker-open edge detection: the flight recorder dumps once
        # per trip, not once per shed request while the breaker stays
        # open.
        self._breaker_open = False

        # -- shared-memory data plane ------------------------------------
        if shm is None:
            env = os.environ.get("REPRO_REPLICA_SHM", "")
            shm = env.strip().lower() not in ("0", "false", "off", "no")
        self.shm_enabled = bool(shm) and shm_available()
        self._generation = 0
        self._shm_requests = 0
        self._shm_fallbacks = 0
        self._shm_bytes_inflight = 0
        self._slot_wait = None
        if self.shm_enabled:
            # Fixed slot sizes from the specs at max_batch: the common
            # case always fits, dynamic shapes fall back per-frame.
            self._request_slot_bytes = required_slot_bytes(
                self.template.inputs, self.max_batch)
            specs = self.template.infer_specs()
            self._response_slot_bytes = required_slot_bytes(
                [specs[name] for name in self.template.output_names],
                self.max_batch)
            self._slot_wait = get_registry().histogram(
                "repro_replica_shm_slot_wait_seconds",
                "Dispatcher wait for a live replica with a free "
                "shared-memory slot pair",
                buckets=log_buckets(1e-5, 4.0, 12))

        # Pre-warm one plan-cache entry per batch size the queue can
        # form; replicas load these by key (mmap, zero-copy).
        self.cache_dir = str(cache_dir) if cache_dir is not None \
            else str(default_cache_dir())
        cache = PlanCache(self.cache_dir)
        self._cache_hits = 0
        self._cache_misses = 0
        keys: Dict[int, str] = {}
        for batch in range(1, self.max_batch + 1):
            model = load_or_build(self.template.with_batch(batch),
                                  aot_config, cache)
            if model.from_cache:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            keys[batch] = model.key
        self._spec_template = ReplicaSpec(
            index=-1, cache_dir=self.cache_dir, keys=keys,
            reuse_buffers=bool(reuse_buffers),
            num_threads=int(num_threads),
            prewarm_batches=(1, self.max_batch) if self.max_batch > 1
            else (1,))

        # -- SLO-aware front-end assembly --------------------------------
        self.adaptive = bool(adaptive)
        self.default_slo_ms = (float(default_slo_ms)
                               if default_slo_ms is not None else None)
        self.shed_policy = shed_policy
        self.latency_model = latency_model
        self._latency_model_path = None
        if self.adaptive and self.latency_model is None:
            # Keyed off the batch-1 plan entry, suffixed so the tier's
            # dispatch-to-completion timings never mix with the
            # in-process engine's execute-only model for the same plan.
            self._latency_model_path = model_path(
                self.cache_dir, keys[1] + "-tier")
            self.latency_model = BatchLatencyModel.load(
                self._latency_model_path)
            if self.latency_model is None:
                self.latency_model = BatchLatencyModel()
        needs_shed = self.adaptive or (
            shed_policy is not None and (
                shed_policy.queue_limit is not None
                or shed_policy.miss_rate_threshold is not None))
        self.queue = BatchQueue(
            max_batch=max_batch,
            max_latency_s=max_latency_ms / 1e3,
            cost_model=(self.latency_model.predict
                        if self.adaptive else None),
            on_shed=self._shed_request if needs_shed else None,
            queue_limit=(shed_policy.queue_limit
                         if shed_policy is not None else None),
            headroom_s=headroom_ms / 1e3)

        self._replicas: List[_Replica] = []
        self._receivers: List[threading.Thread] = []
        try:
            for index in range(self.replicas):
                self._replicas.append(self._spawn(index))
            for replica in self._replicas:
                self._await_ready(replica)
        except BaseException:
            for replica in self._replicas:
                if replica.process.is_alive():
                    replica.process.terminate()
                if replica.channel is not None:
                    replica.channel.retire()
            raise
        for replica in self._replicas:
            self._start_receiver(replica)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-replica-dispatch",
            daemon=True)
        self._dispatcher.start()
        _telemetry.track_replica_tier(self)

    # -- public API ----------------------------------------------------------

    def infer(self, feeds: Mapping[str, np.ndarray],
              slo_ms: Optional[float] = None, priority: int = 0):
        """Submit one sample; returns a Future resolving to the output
        dict.  Raises :class:`TierSaturatedError` when the admission
        queue is full and :class:`EngineClosedError` after close.

        ``slo_ms``/``priority`` mirror the in-process engine's SLO API:
        the deadline (default: ``default_slo_ms``) feeds the tier's
        SLO-miss and goodput accounting, and priority orders the
        admission queue (higher classes dispatch to replicas first,
        FIFO within a class).  With ``adaptive`` set, the front-end
        queue sizes batches to the tightest queued deadline and sheds
        requests predicted to miss even alone — their futures fail with
        :class:`RequestShedError` before any payload crosses the data
        plane.
        """
        if self._closed:
            raise EngineClosedError("replica tier is closed")
        sample = check_sample(self._input_specs, feeds)
        if self.queue.depth() >= self.queue_limit:
            with self._cond:
                self._shed += 1
            self.recorder.record_shed(1)
            self.flightrec.record("shed", reason="queue_full",
                                  priority=int(priority))
            raise TierSaturatedError(
                f"replica tier saturated: {self.queue_limit} requests "
                f"queued; request shed")
        request = InferenceRequest(feeds=sample, priority=int(priority))
        if slo_ms is None:
            slo_ms = self.default_slo_ms
        if slo_ms is not None:
            request.deadline_s = request.enqueued_at + slo_ms / 1e3
        policy = self.shed_policy
        if policy is not None and \
                policy.miss_rate_threshold is not None and \
                request.priority <= policy.shed_priority and \
                self.recorder.window_events() >= policy.min_events and \
                self.recorder.miss_rate() >= policy.miss_rate_threshold:
            # The windowed breaker is open: fail fast with the typed
            # shed error instead of queueing work the window says will
            # go bad.
            with self._cond:
                tripped = not self._breaker_open
                self._breaker_open = True
            if tripped:
                self.flightrec.record(
                    "breaker_trip",
                    miss_rate=self.recorder.miss_rate(),
                    threshold=policy.miss_rate_threshold)
                self.flightrec.try_dump("breaker-trip")
            self._shed_request(request)
            return request.future
        if self._breaker_open:
            with self._cond:
                self._breaker_open = False
        tracer = self.tracer
        if tracer is not None and tracer.sample():
            trace = TierRequestTrace()
            trace.mark("enqueued")
            request.trace = trace
        self.flightrec.record("admit", priority=request.priority,
                              slo_ms=slo_ms)
        try:
            self.queue.submit(request)
        except QueueClosedError:
            raise EngineClosedError("replica tier is closed") from None
        return request.future

    def infer_sync(self, feeds: Mapping[str, np.ndarray],
                   timeout: Optional[float] = None,
                   slo_ms: Optional[float] = None, priority: int = 0
                   ) -> Dict[str, np.ndarray]:
        return self.infer(feeds, slo_ms=slo_ms,
                          priority=priority).result(timeout=timeout)

    def infer_many(self, samples: Sequence[Mapping[str, np.ndarray]],
                   timeout: Optional[float] = None,
                   slo_ms: Optional[float] = None, priority: int = 0
                   ) -> List[Dict[str, np.ndarray]]:
        futures = [self.infer(sample, slo_ms=slo_ms, priority=priority)
                   for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    def metrics(self) -> MetricsSnapshot:
        """Front-end serving snapshot (same shape as the in-process
        engine's); per-replica detail lives in :meth:`replica_stats`."""
        return self.recorder.snapshot(
            queue_depth=self.queue.depth(),
            plan_cache_hits=self._cache_hits,
            plan_cache_misses=self._cache_misses)

    def replica_stats(self) -> List[ReplicaStats]:
        """Per-replica health and counters (parent + piggybacked)."""
        with self._cond:
            return [
                ReplicaStats(
                    index=replica.index,
                    pid=replica.pid,
                    alive=replica.alive,
                    inflight=len(replica.inflight),
                    completed_requests=replica.completed_requests,
                    completed_batches=replica.completed_batches,
                    failed_requests=replica.failed_requests,
                    child_requests=replica.child_stats[0],
                    child_batches=replica.child_stats[1],
                    child_failures=replica.child_stats[2],
                    child_arena_allocations=replica.child_stats[3],
                    child_arena_reuses=replica.child_stats[4],
                )
                for replica in self._replicas
            ]

    @property
    def restarts(self) -> int:
        with self._cond:
            return self._restarts

    @property
    def shed_requests(self) -> int:
        with self._cond:
            return self._shed

    @property
    def shm_requests(self) -> int:
        """Batches whose payload crossed via a shared-memory slot."""
        with self._cond:
            return self._shm_requests

    @property
    def shm_fallbacks(self) -> int:
        """Frames that fell back to the pipe codec while shm was on
        (oversize request or response, or no free slot)."""
        with self._cond:
            return self._shm_fallbacks

    @property
    def shm_bytes_inflight(self) -> int:
        """Request-payload bytes currently parked in ring slots."""
        with self._cond:
            return self._shm_bytes_inflight

    def shm_segment_names(self) -> List[str]:
        """Names of every live (non-retired) ring segment — the tier's
        current /dev/shm footprint (tests assert it empties on close)."""
        with self._cond:
            names: List[str] = []
            for replica in self._replicas:
                channel = replica.channel
                if channel is not None and not channel.retired:
                    names.extend(channel.segment_names())
            return names

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop admissions, fail whatever is still queued, wait for
        in-flight batches, and shut the replica processes down."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        self._dispatch_gate.set()
        self._dispatcher.join(timeout=timeout)
        drained = self.queue.drain()
        if drained:
            self._fail_requests(
                drained,
                EngineClosedError("replica tier closed before execution"))
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._cond:
            while any(replica.alive and replica.inflight
                      for replica in self._replicas):
                remaining = 0.5 if deadline is None \
                    else min(0.5, deadline - time.monotonic())
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
        with self._cond:
            replicas = list(self._replicas)
        for replica in replicas:
            try:
                with replica.send_lock:
                    replica.conn.send_bytes(
                        _pack_frame(_KIND_SHUTDOWN, 0))
            except (OSError, ValueError):
                pass
        for replica in replicas:
            replica.process.join(timeout=5.0)
            if replica.process.is_alive():
                replica.process.terminate()
                replica.process.join(timeout=1.0)
                if replica.process.is_alive():
                    replica.process.kill()
                    replica.process.join(timeout=1.0)
            try:
                replica.conn.close()
            except OSError:
                pass
            if replica.channel is not None:
                # After the join above no process maps the rings, so
                # retirement both unlinks the names and releases the
                # parent mapping — nothing of this tier survives in
                # /dev/shm.
                replica.channel.retire()
        for thread in self._receivers:
            thread.join(timeout=5.0)
        if self._latency_model_path is not None and \
                self.latency_model is not None and \
                self.latency_model.observations > 0:
            # Persist the tier-level calibration so the next tier on
            # this model starts warm (mirrors the in-process engine).
            try:
                self.latency_model.save(self._latency_model_path)
            except OSError as exc:
                logger.warning("could not persist tier latency model "
                               "to %s: %s", self._latency_model_path,
                               exc)

    def __enter__(self) -> "ReplicaEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index: int) -> _Replica:
        channel: Optional[ShmChannel] = None
        if self.shm_enabled:
            # A fresh generation per spawn: a restarted replica can
            # never see (or be addressed through) a predecessor's
            # rings, so stale frames cannot alias new batches.
            with self._cond:
                self._generation += 1
                generation = self._generation
            channel = ShmChannel(self.max_inflight,
                                 self._request_slot_bytes,
                                 self._response_slot_bytes, generation)
        spec = ReplicaSpec(
            index=index,
            cache_dir=self._spec_template.cache_dir,
            keys=self._spec_template.keys,
            reuse_buffers=self._spec_template.reuse_buffers,
            num_threads=self._spec_template.num_threads,
            prewarm_batches=self._spec_template.prewarm_batches,
            shm=channel.spec() if channel is not None else None)
        try:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            saved = {}
            if self.blas_threads is not None:
                # The replica inherits its environment at spawn: pin its
                # BLAS pools so N replicas do not oversubscribe the cores
                # they are supposed to split.
                for var in _BLAS_ENV_VARS:
                    saved[var] = os.environ.get(var)
                    os.environ[var] = str(self.blas_threads)
            try:
                process = self._ctx.Process(
                    target=_replica_main, args=(child_conn, spec),
                    name=f"repro-replica-{index}", daemon=True)
                process.start()
            finally:
                for var, value in saved.items():
                    if value is None:
                        os.environ.pop(var, None)
                    else:
                        os.environ[var] = value
        except BaseException:
            if channel is not None:
                channel.retire()
            raise
        child_conn.close()
        return _Replica(index, process, parent_conn, channel=channel)

    def _await_ready(self, replica: _Replica) -> None:
        if not replica.conn.poll(self.ready_timeout_s):
            replica.process.terminate()
            raise RuntimeError(
                f"replica {replica.index} failed to become ready within "
                f"{self.ready_timeout_s:.0f}s")
        try:
            frame = replica.conn.recv_bytes()
        except (EOFError, OSError):
            replica.process.join(timeout=1.0)
            raise RuntimeError(
                f"replica {replica.index} died during startup (exit "
                f"code {replica.process.exitcode})") from None
        kind, _, stats, _ = _unpack_frame(frame)
        if kind != _KIND_READY:
            replica.process.terminate()
            raise ReplicaProtocolError(
                f"replica {replica.index} sent frame kind {kind} "
                f"instead of READY")
        replica.child_stats = stats
        self._sync_clock(replica)

    def _sync_clock(self, replica: _Replica,
                    probes: int = DEFAULT_HANDSHAKE_PROBES) -> None:
        """Spawn-time offset handshake: a few synchronous round trips
        over the just-idle pipe (runs between READY and the receiver
        thread starting, so the parent owns the connection).  Keeps the
        min-RTT midpoint estimate; see :mod:`repro.telemetry.clock`."""
        for _ in range(probes):
            t_send = time.perf_counter()
            replica.conn.send_bytes(_pack_frame(_KIND_CLOCK, 0))
            if not replica.conn.poll(self.ready_timeout_s):
                replica.process.terminate()
                raise RuntimeError(
                    f"replica {replica.index} did not answer the clock "
                    f"handshake within {self.ready_timeout_s:.0f}s")
            frame = replica.conn.recv_bytes()
            t_recv = time.perf_counter()
            kind, _, stats, payload = _unpack_frame(frame)
            if kind != _KIND_CLOCK or len(payload) < _F64.size:
                replica.process.terminate()
                raise ReplicaProtocolError(
                    f"replica {replica.index} answered the clock "
                    f"handshake with frame kind {kind}")
            replica.child_stats = stats
            (t_child,) = _F64.unpack_from(payload, 0)
            replica.clock.observe(t_send, t_child, t_recv)

    def _start_receiver(self, replica: _Replica) -> None:
        thread = threading.Thread(
            target=self._receive_loop, args=(replica,),
            name=f"repro-replica-recv-{replica.index}", daemon=True)
        thread.start()
        self._receivers.append(thread)

    def _restart(self, replica: _Replica) -> None:
        """Spawn a replacement for a crashed replica (receiver thread)."""
        replacement = None
        try:
            replacement = self._spawn(replica.index)
            self._await_ready(replacement)
        except BaseException:
            logger.exception("replica %d restart failed", replica.index)
            if replacement is not None and \
                    replacement.channel is not None:
                replacement.channel.retire()
            with self._cond:
                self._cond.notify_all()
            return
        with self._cond:
            if self._closed:
                # close() raced the restart: the replacement never
                # entered the replica list, so shut it down here.
                replacement.alive = False
            else:
                position = self._replicas.index(replica)
                self._replicas[position] = replacement
            self._cond.notify_all()
        if not replacement.alive:
            replacement.process.terminate()
            replacement.process.join(timeout=1.0)
            if replacement.channel is not None:
                replacement.channel.retire()
            return
        self._start_receiver(replacement)
        logger.warning("replica %d restarted (pid %s)", replica.index,
                       replacement.pid)

    def _on_replica_failure(self, replica: _Replica,
                            exc: BaseException) -> None:
        with self._cond:
            if not replica.alive:
                return
            replica.alive = False
            doomed = list(replica.inflight.values())
            replica.inflight.clear()
            replica.failed_requests += sum(
                len(inflight.requests) for inflight in doomed)
            for inflight in doomed:
                if inflight.slot is not None:
                    self._shm_bytes_inflight -= inflight.shm_bytes
            should_restart = (not self._closed
                              and self._restarts < self.restart_limit)
            if should_restart:
                self._restarts += 1
            self._cond.notify_all()
        generation = replica.channel.generation \
            if replica.channel is not None else None
        if replica.channel is not None:
            # Retire the whole generation: both segment names leave
            # /dev/shm immediately; in-flight slots die with it (a
            # racing slot write holds the mapping open — close defers,
            # the quarantined mapping drains, the name is already
            # gone).  The replacement spawns fresh rings.
            replica.channel.retire()
        try:
            replica.conn.close()
        except OSError:
            pass
        replica.process.join(timeout=1.0)
        for inflight in doomed:
            self._fail_requests(inflight.requests, ReplicaCrashError(
                f"replica {replica.index} (pid {replica.pid}) died with "
                f"the batch in flight: {exc}"))
        if doomed or not self._closed:
            logger.warning(
                "replica %d (pid %s) exited%s", replica.index,
                replica.pid,
                f" failing {len(doomed)} in-flight batches" if doomed
                else "")
            # Crash path: record the generation retirement, then dump
            # the ring so the moments before the crash (last admits,
            # batch compositions, the retire itself) are on disk even
            # if the process never recovers.
            self.flightrec.record(
                "generation_retire", replica=replica.index,
                generation=generation if generation is not None else -1,
                inflight_batches=len(doomed),
                inflight_requests=sum(len(inflight.requests)
                                      for inflight in doomed),
                restarting=should_restart)
            if should_restart:
                self.flightrec.record("restart", replica=replica.index)
            self.flightrec.try_dump(f"replica-{replica.index}-crash")
        if should_restart:
            self._restart(replica)

    # -- dispatch ------------------------------------------------------------

    def _shed_request(self, request: InferenceRequest) -> None:
        """Fail one request with the typed shed error and record it
        (the queue's ``on_shed`` callback and the admission breaker)."""
        with self._cond:
            self._shed += 1
        self.recorder.record_shed(1)
        self.flightrec.record("shed", reason="slo",
                              priority=request.priority)
        self._finish_trace(request)
        if not request.future.done():
            deadline_note = ""
            if request.deadline_s is not None:
                remaining_ms = (request.deadline_s
                                - time.monotonic()) * 1e3
                deadline_note = (f" ({remaining_ms:.1f} ms of SLO "
                                 f"budget left)")
            request.future.set_exception(RequestShedError(
                f"request shed by the replica tier's SLO-aware "
                f"admission control{deadline_note}; retry with backoff "
                f"or lower load"))

    def _finish_trace(self, request: InferenceRequest) -> None:
        """Close out a sampled request's trace on a non-success path so
        the partial span tree (however far it got) still exports."""
        trace = request.trace
        if trace is None or self.tracer is None:
            return
        trace.mark("completed")
        self.tracer.finish(trace)

    def _fail_requests(self, requests: List[InferenceRequest],
                       exc: BaseException) -> None:
        failed_at = time.monotonic()
        self.recorder.record_failure(
            len(requests), [failed_at - request.enqueued_at
                            for request in requests])
        for request in requests:
            self._finish_trace(request)
            if not request.future.done():
                request.future.set_exception(exc)

    def _acquire_replica(self) -> Optional[_Replica]:
        """Least-loaded live replica with a free in-flight slot; blocks
        while all are saturated (backpressure), returns None once no
        replica is alive and no restart is pending.

        With the shm data plane the in-flight bound is one ring-slot
        pair per batch, so this wait *is* the slot wait — it feeds the
        ``repro_replica_shm_slot_wait_seconds`` histogram.
        """
        started = time.perf_counter()
        waited = False
        with self._cond:
            while True:
                live = [replica for replica in self._replicas
                        if replica.alive]
                available = [replica for replica in live
                             if len(replica.inflight) < self.max_inflight]
                if available:
                    if self._slot_wait is not None:
                        self._slot_wait.observe(
                            time.perf_counter() - started)
                    choice = min(available,
                                 key=lambda r: len(r.inflight))
                    break
                if not live:
                    return None
                waited = True
                self._cond.wait(timeout=0.25)
        if waited:
            # Only actual blocking is an event: the common free-slot
            # path stays recorder-free.
            self.flightrec.record(
                "slot_wait", replica=choice.index,
                wait_s=time.perf_counter() - started)
        return choice

    def _dispatch_loop(self) -> None:
        while True:
            self._dispatch_gate.wait()
            batch = self.queue.next_batch()
            if batch is None:
                return
            traces = () if self.tracer is None else \
                tuple(request.trace for request in batch
                      if request.trace is not None)
            if traces:
                dequeued = time.perf_counter()
                for trace in traces:
                    trace.mark("dequeued", at=dequeued)
            while True:
                replica = self._acquire_replica()
                if replica is None:
                    self._fail_requests(batch, ReplicaCrashError(
                        "no live replicas (crashed beyond the restart "
                        "limit)"))
                    break
                if traces:
                    acquired = time.perf_counter()
                    for trace in traces:
                        trace.mark("acquired", at=acquired)
                if self._send_batch(replica, batch, traces):
                    break

    def _send_batch(self, replica: _Replica,
                    batch: List[InferenceRequest],
                    traces: Tuple[TierRequestTrace, ...] = ()) -> bool:
        """Route ``batch`` to ``replica``; False if the replica died
        between acquisition and registration (caller re-routes)."""
        if len(batch) == 1:
            feeds = batch[0].feeds
        else:
            feeds = {
                name: np.concatenate(
                    [request.feeds[name] for request in batch], axis=0)
                for name in self._input_specs
            }
        descs = None
        total = 0
        if replica.channel is not None:
            descs, total = layout_tensors(feeds)
            if total > replica.channel.request_slot_bytes:
                descs = None               # oversize: pipe fallback
        slot = None
        view = None
        with self._cond:
            if not replica.alive:
                # The in-flight registry is only mutated while the
                # replica is alive, so the crash handler's drain is
                # guaranteed to see every registered batch.
                return False
            if descs is not None:
                slot = replica.channel.acquire_slot()
                if slot is not None:
                    # Materialize the slot view while the replica is
                    # known alive: a concurrent retirement now finds a
                    # live export and defers its close, so the write
                    # below lands in a (worst case quarantined) mapping
                    # rather than a released one.
                    view = replica.channel.request_ring.slot_view(slot)
                    self._shm_bytes_inflight += total
                    self._shm_requests += 1
            if replica.channel is not None and slot is None:
                self._shm_fallbacks += 1
            request_id = self._next_id
            self._next_id += 1
            entry = _Inflight(
                batch, time.monotonic(), slot=slot,
                shm_bytes=total if slot is not None else 0,
                traces=traces)
            replica.inflight[request_id] = entry
        # A traced batch asks the replica for spans by appending the
        # trace-context block after the regular payload (both codecs
        # are self-delimiting, so untraced frames are byte-identical to
        # the pre-tracing wire format).
        trailer = _TRACE_CTX.pack(_TRACE_CTX_MAGIC, traces[0].trace_id) \
            if traces else b""
        if slot is not None:
            # The data plane's single copy, outside the lock: payload
            # bytes go straight into the mapped slot and only the tiny
            # control frame crosses the pipe.
            write_tensors(view, feeds, descs)
            frame = _pack_frame(
                _KIND_SHM_REQUEST, request_id,
                payload=_SHM_SLOT.pack(slot, replica.channel.generation)
                + pack_descriptors(descs) + trailer)
        else:
            frame = pack_tensor_frame(_KIND_REQUEST, request_id,
                                      _ZERO_STATS, feeds)
            if trailer:
                frame += trailer
        probe_id = None
        if self.tracer is not None and \
                replica.clock.stale(resync_s=self.clock_resync_s):
            with self._cond:
                if not replica.clock_probes:
                    probe_id = self._next_id
                    self._next_id += 1
                    replica.clock_probes[probe_id] = 0.0
        try:
            with replica.send_lock:
                if probe_id is not None:
                    # Periodic in-band resync, sent *ahead* of the
                    # batch so the reply never queues behind the
                    # execution (which would balloon the RTT bound; a
                    # worse sample loses to the min-RTT estimate, but
                    # there is no reason to collect one on purpose).
                    replica.clock_probes[probe_id] = \
                        time.perf_counter()
                    replica.conn.send_bytes(
                        _pack_frame(_KIND_CLOCK, probe_id))
                # Stamp and mark *before* the send: the receiver thread
                # may process the reply (and freeze the trace's span
                # tree) before this thread runs again, so marking after
                # the send races the merge and can lose the dispatch
                # phase entirely.
                sent_pc = time.perf_counter()
                if traces:
                    entry.sent_pc = sent_pc
                    for trace in traces:
                        trace.mark("sent", at=sent_pc)
                        trace.batch_size = len(batch)
                replica.conn.send_bytes(frame)
        except (OSError, ValueError) as exc:
            # The crash handler (here or on the receiver thread) drains
            # the registered in-flight entry, failing these futures.
            self._on_replica_failure(replica, exc)
            return True
        self.flightrec.record(
            "batch", replica=replica.index, size=len(batch),
            slot=slot if slot is not None else -1, shm_bytes=total)
        return True

    # -- receive -------------------------------------------------------------

    def _receive_loop(self, replica: _Replica) -> None:
        while True:
            try:
                frame = replica.conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                kind, request_id, stats, payload = _unpack_frame(frame)
            except ReplicaProtocolError:
                logger.exception("replica %d sent a malformed frame",
                                 replica.index)
                break
            if kind in (_KIND_RESULT, _KIND_SHM_RESULT):
                self._on_result(replica, request_id, stats, payload,
                                shm=(kind == _KIND_SHM_RESULT))
            elif kind == _KIND_ERROR:
                self._on_error(replica, request_id, stats, payload)
            elif kind == _KIND_CLOCK:
                self._on_clock(replica, request_id, stats, payload)
        self._on_replica_failure(
            replica, ReplicaCrashError("connection lost"))

    def _on_clock(self, replica: _Replica, request_id: int,
                  stats: Tuple[int, ...], payload) -> None:
        """Fold a resync probe reply into the replica's offset estimate
        (receiver thread only, so ClockSync needs no lock)."""
        t_recv = time.perf_counter()
        with self._cond:
            replica.child_stats = tuple(stats)
            t_send = replica.clock_probes.pop(request_id, None)
        if t_send is None or t_send <= 0.0 or \
                len(payload) < _F64.size:
            return
        (t_child,) = _F64.unpack_from(payload, 0)
        replica.clock.observe(t_send, t_child, t_recv)

    def _merge_replica_spans(self, replica: _Replica, entry: _Inflight,
                             received_pc: float, block) -> None:
        """Attach the replica's piggybacked spans to every trace in the
        batch, aligned onto the parent clock and clamped into the
        batch's dispatch window.

        Alignment maps child readings through the replica's offset
        estimate; clamping into ``[sent_pc, received_pc]`` then makes
        the nesting *structural* — whatever residual offset error
        remains (bounded by the winning probe's RTT/2), the replica's
        spans cannot escape the parent span that caused them, so the
        merged trace is always monotonic.
        """
        trace_id, recv_c, exec_start_c, exec_end_c, steps = block
        offset = replica.clock.offset_s
        lo, hi = entry.sent_pc, received_pc

        def align(t_child: float) -> float:
            return min(max(t_child + offset, lo), hi)

        process = f"replica-{replica.index}"
        execute = Span("execute", "replica",
                       align(exec_start_c), align(exec_end_c),
                       process=process)
        for step in steps:
            execute.children.append(Span(
                str(step["name"]), str(step["op"]),
                align(exec_start_c + float(step["start"])),
                align(exec_start_c + float(step["end"])),
                thread=int(step["thread"]), process=process))
        root = Span("replica_batch", "replica",
                    align(recv_c), align(exec_end_c),
                    process=process,
                    args={"replica": replica.index,
                          "trace_id": trace_id,
                          "batch_size": len(entry.requests),
                          "clock_offset_s": offset,
                          "clock_rtt_s": replica.clock.rtt_s},
                    children=[execute])
        for trace in entry.traces:
            trace.attach_children("dispatch", [root])

    def _log_slow_requests(self, entry: _Inflight, replica: _Replica,
                           latencies: List[float]) -> None:
        """Mirror the in-process engine's slow-request log, with the
        tier-phase breakdown (slot wait, dispatch/IPC) when traced."""
        threshold_s = self.slow_request_ms / 1e3
        slow = [(request, latency) for request, latency
                in zip(entry.requests, latencies)
                if latency >= threshold_s]
        if not slow:
            return
        with self._cond:
            self.slow_requests += len(slow)
        for request, latency in slow:
            trace = request.trace
            if trace is not None:
                phases = trace.phase_durations_ms()
                breakdown = ", ".join(
                    f"{name} {phases[name]:.2f}ms" for name in
                    ("queue_wait", "slot_wait", "batch_assembly",
                     "dispatch", "finalize") if name in phases)
                logger.warning(
                    "slow request on replica tier: %.2f ms "
                    "(threshold %.2f ms, replica %d, batch %d): %s",
                    latency * 1e3, self.slow_request_ms,
                    replica.index, len(entry.requests), breakdown)
            else:
                logger.warning(
                    "slow request on replica tier: %.2f ms "
                    "(threshold %.2f ms, replica %d, batch %d; "
                    "untraced — attach a tracer for the phase "
                    "breakdown)", latency * 1e3, self.slow_request_ms,
                    replica.index, len(entry.requests))

    def _peek_inflight(self, replica: _Replica, request_id: int,
                       stats: Tuple[int, ...]) -> Optional[_Inflight]:
        """Look the entry up *without* releasing anything: its slots
        stay owned until :meth:`_finish_inflight` — releasing before
        the result bytes are copied out would let the next batch
        overwrite a response slot still being read."""
        with self._cond:
            replica.child_stats = tuple(stats)
            return replica.inflight.get(request_id)

    def _finish_inflight(self, replica: _Replica,
                         request_id: int) -> Optional[_Inflight]:
        """Pop the entry and recycle its ring slot; None when the
        crash handler raced us and already failed the batch."""
        with self._cond:
            entry = replica.inflight.pop(request_id, None)
            if entry is not None and entry.slot is not None:
                if replica.channel is not None:
                    replica.channel.release_slot(entry.slot)
                self._shm_bytes_inflight -= entry.shm_bytes
            self._cond.notify_all()
        return entry

    def _on_result(self, replica: _Replica, request_id: int,
                   stats: Tuple[int, ...], payload,
                   shm: bool = False) -> None:
        received_pc = time.perf_counter()
        entry = self._peek_inflight(replica, request_id, stats)
        if entry is None:
            return
        requests = entry.requests
        span_block = None
        try:
            if shm:
                slot, generation = _SHM_SLOT.unpack_from(payload, 0)
                channel = replica.channel
                with self._cond:
                    if channel is None or channel.retired or \
                            generation != channel.generation or \
                            slot != entry.slot:
                        raise ReplicaProtocolError(
                            f"shm result for slot {slot} generation "
                            f"{generation} does not match the in-"
                            f"flight batch")
                    # Export the view under the lock (same rule as the
                    # send side): a concurrent retirement defers its
                    # close instead of unmapping under the read.
                    view = channel.response_ring.slot_view(slot)
                descs, consumed = unpack_descriptors(
                    payload[_SHM_SLOT.size:])
                if entry.traces:
                    span_block = _unpack_span_block(
                        payload[_SHM_SLOT.size + consumed:])
                outputs = read_tensors(view, descs)
            else:
                if entry.slot is not None:
                    # The batch went out over shm but the outputs did
                    # not fit the response slot: the replica fell back
                    # to an inline pipe result for this frame.
                    with self._cond:
                        self._shm_fallbacks += 1
                outputs, consumed = _decode_tensors(payload)
                if entry.traces:
                    span_block = _unpack_span_block(payload[consumed:])
            # The per-request split is the read side's only copy; the
            # response slot is free for reuse the moment it is done.
            results = [
                {name: array[index:index + 1].copy()
                 for name, array in outputs.items()}
                for index in range(len(requests))
            ]
        except BaseException as exc:
            if self._finish_inflight(replica, request_id) is not None:
                self._record_replica_failure(
                    replica, requests, ReplicaError(
                        f"replica {replica.index} returned an "
                        f"undecodable result: {exc}"))
            return
        if self._finish_inflight(replica, request_id) is None:
            return
        if self.latency_model is not None:
            # Tier-level calibration point: dispatch-to-completion for
            # this batch size — exactly the interval the front-end
            # assembly adds to "now" when it sizes a batch against a
            # deadline (pipe transit and replica queueing included).
            self.latency_model.observe(
                len(requests), time.monotonic() - entry.sent_at)
        if entry.traces:
            for trace in entry.traces:
                trace.mark("received", at=received_pc)
            if span_block is not None:
                self._merge_replica_spans(replica, entry, received_pc,
                                          span_block)
        completed = time.monotonic()
        latencies = [completed - request.enqueued_at
                     for request in requests]
        slo_misses = sum(1 for request in requests
                         if request.deadline_s is not None
                         and completed > request.deadline_s)
        self.recorder.record_batch(len(requests), latencies,
                                   slo_misses=slo_misses)
        if slo_misses:
            self.flightrec.record("slo_miss", replica=replica.index,
                                  count=slo_misses, size=len(requests))
        with self._cond:
            replica.completed_requests += len(requests)
            replica.completed_batches += 1
        for request, result in zip(requests, results):
            if not request.future.done():
                request.future.set_result(result)
        if entry.traces:
            completed_pc = time.perf_counter()
            tracer = self.tracer
            for trace in entry.traces:
                trace.mark("completed", at=completed_pc)
                if tracer is not None:
                    tracer.finish(trace)
        if self.slow_request_ms is not None:
            self._log_slow_requests(entry, replica, latencies)

    def _on_error(self, replica: _Replica, request_id: int,
                  stats: Tuple[int, ...], payload) -> None:
        with self._cond:
            replica.child_stats = tuple(stats)
        entry = self._finish_inflight(replica, request_id)
        if entry is None:
            return
        try:
            kind, message = _unpack_error(payload)
        except BaseException:
            kind, message = "unknown", "malformed error frame"
        self._record_replica_failure(
            replica, entry.requests,
            ReplicaError(f"replica {replica.index} failed the batch: "
                         f"{kind}: {message}"))

    def _record_replica_failure(self, replica: _Replica,
                                requests: List[InferenceRequest],
                                exc: BaseException) -> None:
        with self._cond:
            replica.failed_requests += len(requests)
        self._fail_requests(requests, exc)
