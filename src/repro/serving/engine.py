"""Batched inference engine: micro-batching over a pool of plan workers.

The serving layer the ROADMAP's "heavy traffic" north star asks for,
built on the compiled-plan runtime:

* a :class:`repro.serving.batcher.BatchQueue` coalesces concurrent
  single-sample requests along the leading batch axis (Fig. 4's batch
  scaling, applied online);
* whole batches run as tasks on the process-wide shared
  :class:`repro.runtime.parallel.WorkerPool` — numpy's BLAS-bound
  kernels release the GIL, so batches overlap on multi-core hosts, and
  with ``num_threads > 1`` each batch's executor additionally schedules
  independent plan steps (and row shards of wide steps) onto the *same*
  pool.  One pool serves both levels; there are no ad-hoc threads;
* every plan instance owns a scratch arena and kernel workspace
  (``reuse_buffers``), so steady-state serving performs no large heap
  allocations: batch results are split into per-request copies and the
  batch buffers immediately recycled.

Plans are compiled once per observed batch size and shared: workers hold
cheap ``with_buffers()`` instances over the same immutable compiled steps.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Future
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph
from ..runtime.arena import ArenaStats
from ..runtime.executor import Executor
from ..runtime.parallel import get_pool, resolve_num_threads
from ..runtime.plan import ExecutionPlan, compile_plan
from ..telemetry import collectors as _telemetry
from ..telemetry.tracing import RequestTrace, Tracer
from .batcher import (
    BatchQueue,
    InferenceRequest,
    QueueClosedError,
    RequestShedError,
)
from .latency_model import BatchLatencyModel, model_path
from .metrics import MetricsRecorder, MetricsSnapshot

import time

from dataclasses import dataclass

logger = logging.getLogger("repro.serving")


class EngineClosedError(RuntimeError):
    """Raised when submitting to an engine that has been shut down."""


@dataclass(frozen=True)
class ShedPolicy:
    """When and what the engine sheds instead of queueing.

    ``queue_limit`` bounds the batch queue: an arrival past it evicts
    the youngest lowest-priority queued request if the arrival outranks
    it, else the arrival itself is shed (both with
    :class:`RequestShedError`).  ``miss_rate_threshold`` arms a
    windowed circuit breaker: once the recorder's miss rate (failures +
    sheds + deadline misses over recent requests) reaches it, arriving
    requests with ``priority <= shed_priority`` are shed at admission —
    the lowest classes brown out first while higher classes keep their
    SLO.  The breaker only arms after ``min_events`` requests so a cold
    engine is never judged on two data points.
    """

    queue_limit: Optional[int] = None
    miss_rate_threshold: Optional[float] = None
    shed_priority: int = 0
    min_events: int = 32


def check_sample(input_specs: Mapping[str, "object"],
                 feeds: Mapping[str, np.ndarray]
                 ) -> Dict[str, np.ndarray]:
    """Validate one single-sample feed dict against ``input_specs``
    (name -> :class:`repro.ir.tensor.TensorSpec`) and return arrays the
    serving pipeline *owns*.

    ``astype(..., copy=False)`` aliases the caller's buffer whenever no
    dtype conversion is needed, so a caller mutating its array after
    ``infer()`` returns would corrupt the in-flight batch; any feed that
    still shares memory with the caller's array is copied here.
    """
    sample: Dict[str, np.ndarray] = {}
    for name, spec in input_specs.items():
        if name not in feeds:
            raise ValueError(f"missing feed for graph input {name!r}")
        raw = feeds[name]
        value = np.asarray(raw)
        if tuple(value.shape) != spec.shape:
            raise ValueError(
                f"feed {name!r} has shape {value.shape}, expected the "
                f"single-sample shape {spec.shape}")
        converted = value.astype(spec.dtype.to_numpy(), copy=False)
        if isinstance(raw, np.ndarray) and \
                np.shares_memory(converted, raw):
            converted = converted.copy()
        sample[name] = converted
    extra = set(feeds) - set(sample)
    if extra:
        raise ValueError(f"unknown feed tensors: {sorted(extra)}")
    return sample


class InferenceEngine:
    """Serves single-sample requests through dynamically formed batches.

    Parameters
    ----------
    graph
        Model to serve; rebatched internally, so any build batch works.
    workers
        Concurrent plan workers (and the bound on in-flight batches).
    max_batch
        Largest batch the queue may coalesce.
    max_latency_ms
        How long the oldest queued request may wait for the batch to
        fill before being dispatched anyway.
    reuse_buffers
        Run workers on scratch arenas (allocation-free steady state).
    plan_cache
        Optional :class:`repro.runtime.plan_cache.PlanCache`: per-batch
        plan builds go through :func:`load_or_build`, so a restarted
        engine warm-starts from disk instead of respecializing.  Hit and
        miss counts surface in :meth:`metrics`.
    aot_config
        :class:`repro.optim.passes.AOTConfig` for cache-backed builds
        (bitwise-safe defaults when None).
    prewarm
        Pre-populate each worker arena from the plan's activation shapes
        (first run allocation-free, not just steady state).
    num_threads
        Threads each batch's executor may use for dependency-scheduled
        step execution and row sharding (bitwise-identical results at
        any value).  ``None`` defers to ``REPRO_NUM_THREADS``, else 1.
    tracer
        Optional :class:`repro.telemetry.tracing.Tracer`.  Requests the
        tracer samples carry a :class:`RequestTrace` through the whole
        pipeline (queue wait, dispatch wait, batch assembly, execute
        with per-step kernel spans, finalize); finished traces land in
        the tracer's ring buffer for Chrome-trace export.  ``None`` (the
        default) disables tracing: the hot path pays one branch.
    slow_request_ms
        When set, any request whose end-to-end latency is at or above
        this many milliseconds is logged on the ``repro.serving`` logger
        (with its phase decomposition when traced) and counted in
        ``repro_serving_slow_requests_total``.
    adaptive
        Enable SLO-aware adaptive batching: the engine fits an online
        :class:`repro.serving.latency_model.BatchLatencyModel` from its
        own execute timings and the queue assembles the largest batch
        whose predicted completion still meets the tightest in-queue
        deadline (falling back to the fixed knobs while the model is
        cold).  Requests whose deadline is predicted unmeetable even at
        batch 1 are shed with :class:`RequestShedError`.  With a
        ``plan_cache`` attached the model is persisted next to the plan
        entry, so a restarted engine starts calibrated.
    default_slo_ms
        Deadline assigned to requests that do not pass ``slo_ms``
        explicitly (None: such requests are best-effort and never miss).
    shed_policy
        A :class:`ShedPolicy` arming queue-bound eviction and the
        windowed miss-rate admission breaker.
    latency_model
        Inject a pre-built/shared :class:`BatchLatencyModel` (tests,
        cross-engine calibration); default builds or loads one when
        ``adaptive`` is set.
    headroom_ms
        Scheduling slack the adaptive assembly reserves on every
        deadline comparison (dispatch/finalize overhead the execute
        cost model does not see).  Raise it to trade goodput for a
        tighter admitted-request tail; a useful rule of thumb is
        10-20% of the SLO.
    """

    def __init__(self, graph: Graph, workers: int = 1, max_batch: int = 8,
                 max_latency_ms: float = 2.0,
                 reuse_buffers: bool = True,
                 plan_cache=None, aot_config=None,
                 prewarm: bool = False,
                 num_threads: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 slow_request_ms: Optional[float] = None,
                 adaptive: bool = False,
                 default_slo_ms: Optional[float] = None,
                 shed_policy: Optional[ShedPolicy] = None,
                 latency_model: Optional[BatchLatencyModel] = None,
                 headroom_ms: float = 0.5) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.template = graph.with_batch(1)
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.reuse_buffers = reuse_buffers
        self.plan_cache = plan_cache
        self.aot_config = aot_config
        self.prewarm = bool(prewarm)
        self._cache_hits = 0
        self._cache_misses = 0
        self._input_specs = {spec.name: spec for spec in self.template.inputs}
        self.adaptive = bool(adaptive)
        self.default_slo_ms = (float(default_slo_ms)
                               if default_slo_ms is not None else None)
        self.shed_policy = shed_policy
        self.latency_model = latency_model
        self._latency_model_path = None
        if self.adaptive and self.latency_model is None:
            if plan_cache is not None:
                # Warm starts begin calibrated: the model is keyed and
                # stored alongside the plan-cache entry it timed.
                key = plan_cache.key_for(self.template, aot_config)
                self._latency_model_path = model_path(
                    plan_cache.directory, key)
                self.latency_model = BatchLatencyModel.load(
                    self._latency_model_path)
            if self.latency_model is None:
                self.latency_model = BatchLatencyModel()
        needs_shed = self.adaptive or (
            shed_policy is not None and (
                shed_policy.queue_limit is not None
                or shed_policy.miss_rate_threshold is not None))
        self.queue = BatchQueue(
            max_batch=max_batch,
            max_latency_s=max_latency_ms / 1e3,
            cost_model=(self.latency_model.predict
                        if self.adaptive else None),
            on_shed=self._shed_request if needs_shed else None,
            queue_limit=(shed_policy.queue_limit
                         if shed_policy is not None else None),
            headroom_s=headroom_ms / 1e3)
        self.recorder = MetricsRecorder()
        self.tracer = tracer if tracer is not None and tracer.enabled \
            else None
        self.slow_request_ms = (float(slow_request_ms)
                                if slow_request_ms is not None else None)
        self.slow_requests = 0
        self._slow_lock = threading.Lock()
        self._closed = False
        # Compiled base plans shared across workers, keyed by batch size.
        self._compile_lock = threading.Lock()
        self._compiled: Dict[int, Tuple[Graph, ExecutionPlan]] = {}
        # Checked-in executors per batch size, plus every executor ever
        # created (for aggregate arena stats).
        self._pool_lock = threading.Lock()
        self._free: Dict[int, List[Executor]] = {}
        self._executors: List[Executor] = []
        # A worker slot must be free before the dispatcher forms a batch;
        # otherwise it would drain the queue into the shared pool's
        # backlog and lose every coalescing opportunity.
        self._slots = threading.Semaphore(self.workers)
        self.num_threads = resolve_num_threads(num_threads)
        # One shared process pool runs both the engine's batch tasks and
        # the executors' step/shard helpers; size it so a full complement
        # of batches still leaves the intra-batch helpers runnable.
        self._pool = get_pool(ensure=self.workers + self.num_threads - 1)
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="repro-serve-dispatch",
                                            daemon=True)
        self._dispatcher.start()
        # Serving series (requests, failures, queue depth, windowed
        # percentiles) surface in the process-wide metrics registry via
        # a scrape-time collector over live engines.
        _telemetry.track_engine(self)

    # -- public API ----------------------------------------------------------

    def infer(self, feeds: Mapping[str, np.ndarray],
              slo_ms: Optional[float] = None,
              priority: int = 0) -> "Future":
        """Submit one sample (leading batch axis 1); returns a Future
        resolving to a dict of output name -> array.

        ``slo_ms`` attaches a completion deadline this many ms from now
        (default: the engine's ``default_slo_ms``); the adaptive batcher
        sizes batches so predicted completion meets the tightest queued
        deadline, and sheds requests it predicts will miss anyway.
        ``priority`` orders service and shedding (higher serves first,
        sheds last).  The future may fail with
        :class:`RequestShedError` when the request is shed.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        request = InferenceRequest(feeds=self._check_sample(feeds),
                                   priority=int(priority))
        if slo_ms is None:
            slo_ms = self.default_slo_ms
        if slo_ms is not None:
            request.deadline_s = request.enqueued_at + slo_ms / 1e3
        policy = self.shed_policy
        if policy is not None and \
                policy.miss_rate_threshold is not None and \
                request.priority <= policy.shed_priority and \
                self.recorder.window_events() >= policy.min_events and \
                self.recorder.miss_rate() >= policy.miss_rate_threshold:
            # The breaker is open: fail fast with the typed shed error
            # instead of queueing work the window says will go bad.
            self._shed_request(request)
            return request.future
        if self.tracer is not None and self.tracer.sample():
            trace = RequestTrace(self.template.name or "request")
            trace.mark("enqueued")
            request.trace = trace
        try:
            self.queue.submit(request)
        except QueueClosedError:
            # close() won the race between our _closed check and the
            # queue submit; surface the same typed error as the check.
            raise EngineClosedError("engine is closed") from None
        return request.future

    def infer_sync(self, feeds: Mapping[str, np.ndarray],
                   timeout: Optional[float] = None,
                   slo_ms: Optional[float] = None,
                   priority: int = 0) -> Dict[str, np.ndarray]:
        return self.infer(feeds, slo_ms=slo_ms,
                          priority=priority).result(timeout=timeout)

    def infer_many(self, samples: Sequence[Mapping[str, np.ndarray]],
                   timeout: Optional[float] = None,
                   slo_ms: Optional[float] = None,
                   priority: int = 0) -> List[Dict[str, np.ndarray]]:
        """Submit a burst of samples and wait for all results in order."""
        futures = [self.infer(sample, slo_ms=slo_ms, priority=priority)
                   for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    def metrics(self) -> MetricsSnapshot:
        """A consistent snapshot of throughput/latency/batching/arena."""
        arena_stats = ArenaStats()
        workspace_allocations = 0
        with self._pool_lock:
            executors = list(self._executors)
        for executor in executors:
            arena = executor.plan.arena
            if arena is not None:
                arena_stats.allocations += arena.stats.allocations
                arena_stats.allocated_bytes += arena.stats.allocated_bytes
                arena_stats.large_allocations += arena.stats.large_allocations
                arena_stats.reuses += arena.stats.reuses
                arena_stats.reused_bytes += arena.stats.reused_bytes
            if executor.plan.workspace is not None:
                workspace_allocations += executor.plan.workspace.allocations
        with self._compile_lock:
            cache_hits, cache_misses = self._cache_hits, self._cache_misses
        return self.recorder.snapshot(
            queue_depth=self.queue.depth(),
            arena_stats=arena_stats,
            workspace_allocations=workspace_allocations,
            plan_cache_hits=cache_hits,
            plan_cache_misses=cache_misses)

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, fail whatever is still queued, and wait
        for in-flight batches to finish.

        The shared process pool is never shut down (other subsystems use
        it); instead, draining every worker slot proves all of this
        engine's batch tasks have completed."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        self._dispatcher.join(timeout=timeout)
        drained = self.queue.drain()
        if drained:
            # Requests failed at shutdown are failures like any other:
            # without this, ``failures``/``failure_rate`` under-report
            # every request the close drained.
            self._fail_batch(
                drained, EngineClosedError("engine closed before "
                                           "execution"))
        acquired = 0
        for _ in range(self.workers):
            ok = (self._slots.acquire(timeout=timeout)
                  if timeout is not None else self._slots.acquire())
            if not ok:
                break
            acquired += 1
        for _ in range(acquired):
            self._slots.release()
        if self._latency_model_path is not None and \
                self.latency_model is not None and \
                self.latency_model.observations > 0:
            # Persist the calibration next to the plan-cache entry so
            # the next engine on this model starts warm.
            try:
                self.latency_model.save(self._latency_model_path)
            except OSError as exc:
                logger.warning("could not persist latency model to %s: "
                               "%s", self._latency_model_path, exc)

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _check_sample(self, feeds: Mapping[str, np.ndarray]
                      ) -> Dict[str, np.ndarray]:
        return check_sample(self._input_specs, feeds)

    def _shed_request(self, request: InferenceRequest) -> None:
        """Fail one request with the typed shed error and record it."""
        self.recorder.record_shed(1)
        if not request.future.done():
            deadline_note = ""
            if request.deadline_s is not None:
                remaining_ms = (request.deadline_s
                                - time.monotonic()) * 1e3
                deadline_note = (f" ({remaining_ms:.1f} ms of SLO "
                                 f"budget left)")
            request.future.set_exception(RequestShedError(
                f"request shed by SLO-aware admission control"
                f"{deadline_note}; retry with backoff or lower load"))
        if request.trace is not None:
            self._finish_traces([request.trace], failed=True)

    def _fail_batch(self, requests: List[InferenceRequest],
                    exc: BaseException, traces: Sequence = ()) -> None:
        """Record and propagate a whole batch's failure.

        Failure latencies join the same percentile window as successes,
        so p99 reflects the worst outcomes.
        """
        failed_at = time.monotonic()
        self.recorder.record_failure(
            len(requests), [failed_at - request.enqueued_at
                            for request in requests])
        for request in requests:
            if not request.future.done():
                request.future.set_exception(exc)
        self._finish_traces(list(traces), failed=True)

    def _base_plan(self, batch: int) -> Tuple[Graph, ExecutionPlan]:
        with self._compile_lock:
            entry = self._compiled.get(batch)
            if entry is None:
                graph = self.template.with_batch(batch)
                if self.plan_cache is not None:
                    from ..runtime.plan_cache import load_or_build

                    model = load_or_build(graph, self.aot_config,
                                          self.plan_cache)
                    if model.from_cache:
                        self._cache_hits += 1
                    else:
                        self._cache_misses += 1
                    entry = (model.graph, model.plan)
                else:
                    entry = (graph, compile_plan(graph))
                self._compiled[batch] = entry
            return entry

    def _checkout(self, batch: int) -> Executor:
        with self._pool_lock:
            free = self._free.get(batch)
            if free:
                return free.pop()
        graph, plan = self._base_plan(batch)
        executor = Executor(graph, reuse_buffers=self.reuse_buffers,
                            plan=plan, prewarm=self.prewarm,
                            num_threads=self.num_threads)
        with self._pool_lock:
            self._executors.append(executor)
        return executor

    def _checkin(self, batch: int, executor: Executor) -> None:
        with self._pool_lock:
            self._free.setdefault(batch, []).append(executor)

    def _dispatch_loop(self) -> None:
        while True:
            self._slots.acquire()
            batch = self.queue.next_batch()
            if batch is None:
                self._slots.release()
                return
            if self.tracer is not None:
                for request in batch:
                    if request.trace is not None:
                        request.trace.mark("dequeued")
            try:
                self._pool.submit(self._make_batch_task(batch))
            except BaseException as exc:
                # The task never made it onto the pool, so its finally
                # block will never run: release the worker slot here (a
                # leaked permit would hang a later close() on slot
                # drain) and fail the batch's futures.
                self._slots.release()
                self._fail_batch(
                    batch, exc,
                    traces=[request.trace for request in batch
                            if request.trace is not None])

    def _make_batch_task(self, batch: List[InferenceRequest]):
        def task() -> None:
            try:
                self._run_batch(batch)
            finally:
                self._slots.release()
        return task

    def _run_batch(self, requests: List[InferenceRequest]) -> None:
        size = len(requests)
        # Traces ride along only for sampled requests; with no tracer
        # attached this is a single falsy check per batch.
        traces = [request.trace for request in requests
                  if request.trace is not None] if self.tracer is not None \
            else []
        for trace in traces:
            trace.batch_size = size
            trace.mark("task_start")
        task_t0 = time.perf_counter() if self.latency_model is not None \
            else 0.0
        try:
            executor = self._checkout(size)
            try:
                if size == 1:
                    feeds = requests[0].feeds
                else:
                    feeds = {
                        name: np.concatenate(
                            [request.feeds[name] for request in requests],
                            axis=0)
                        for name in self._input_specs
                    }
                if traces:
                    execute_t0 = time.perf_counter()
                    for trace in traces:
                        trace.mark("assembled", execute_t0)
                        trace.mark("execute_t0", execute_t0)
                    executor.record_timeline = True
                try:
                    outputs = executor.run(feeds)
                finally:
                    if traces:
                        executor.record_timeline = False
                if traces:
                    timeline = executor.last_timeline or []
                    for trace in traces:
                        trace.mark("executed")
                        trace.attach_steps(timeline)
                # Per-request copies so the (large) batch buffers can go
                # straight back to the worker's arena.
                results = [
                    {name: array[index:index + 1].copy()
                     for name, array in outputs.items()}
                    for index in range(size)
                ]
                executor.recycle(outputs)
            finally:
                self._checkin(size, executor)
        except BaseException as exc:
            self._fail_batch(requests, exc, traces=traces)
            return
        if self.latency_model is not None:
            # The model predicts task-start-to-results time (assembly +
            # execute + finalize): exactly the interval the assembly
            # policy adds to "now" when it asks whether a batch of n
            # makes a deadline.
            self.latency_model.observe(
                size, time.perf_counter() - task_t0)
        completed = time.monotonic()
        latencies = [completed - request.enqueued_at
                     for request in requests]
        slo_misses = sum(
            1 for request in requests
            if request.deadline_s is not None
            and completed > request.deadline_s)
        self.recorder.record_batch(size, latencies,
                                   slo_misses=slo_misses)
        for request, result in zip(requests, results):
            request.future.set_result(result)
        for trace in traces:
            trace.mark("completed")
        self._finish_traces(traces, failed=False)
        if self.slow_request_ms is not None:
            self._log_slow(requests, latencies)

    def _finish_traces(self, traces, failed: bool) -> None:
        if not traces or self.tracer is None:
            return
        for trace in traces:
            if failed:
                trace.mark("completed")
            self.tracer.finish(trace)

    def _log_slow(self, requests: List[InferenceRequest],
                  latencies: List[float]) -> None:
        threshold_s = self.slow_request_ms / 1e3
        for request, latency in zip(requests, latencies):
            if latency < threshold_s:
                continue
            with self._slow_lock:
                self.slow_requests += 1
            if request.trace is not None:
                phases = request.trace.phase_durations_ms()
                detail = ", ".join(f"{name} {value:.2f} ms"
                                   for name, value in phases.items())
                logger.warning(
                    "slow request (trace %d): %.2f ms >= %.2f ms (%s)",
                    request.trace.trace_id, latency * 1e3,
                    self.slow_request_ms, detail)
            else:
                logger.warning(
                    "slow request: %.2f ms >= %.2f ms "
                    "(enable tracing for a phase breakdown)",
                    latency * 1e3, self.slow_request_ms)
