"""Batched inference engine: micro-batching over a pool of plan workers.

The serving layer the ROADMAP's "heavy traffic" north star asks for,
built on the compiled-plan runtime:

* a :class:`repro.serving.batcher.BatchQueue` coalesces concurrent
  single-sample requests along the leading batch axis (Fig. 4's batch
  scaling, applied online);
* whole batches run as tasks on the process-wide shared
  :class:`repro.runtime.parallel.WorkerPool` — numpy's BLAS-bound
  kernels release the GIL, so batches overlap on multi-core hosts, and
  with ``num_threads > 1`` each batch's executor additionally schedules
  independent plan steps (and row shards of wide steps) onto the *same*
  pool.  One pool serves both levels; there are no ad-hoc threads;
* every plan instance owns a scratch arena and kernel workspace
  (``reuse_buffers``), so steady-state serving performs no large heap
  allocations: batch results are split into per-request copies and the
  batch buffers immediately recycled.

Plans are compiled once per observed batch size and shared: workers hold
cheap ``with_buffers()`` instances over the same immutable compiled steps.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Future
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.graph import Graph
from ..runtime.arena import ArenaStats
from ..runtime.executor import Executor
from ..runtime.parallel import get_pool, resolve_num_threads
from ..runtime.plan import ExecutionPlan, compile_plan
from ..telemetry import collectors as _telemetry
from ..telemetry.tracing import RequestTrace, Tracer
from .batcher import BatchQueue, InferenceRequest, QueueClosedError
from .metrics import MetricsRecorder, MetricsSnapshot

import time

logger = logging.getLogger("repro.serving")


class EngineClosedError(RuntimeError):
    """Raised when submitting to an engine that has been shut down."""


def check_sample(input_specs: Mapping[str, "object"],
                 feeds: Mapping[str, np.ndarray]
                 ) -> Dict[str, np.ndarray]:
    """Validate one single-sample feed dict against ``input_specs``
    (name -> :class:`repro.ir.tensor.TensorSpec`) and return arrays the
    serving pipeline *owns*.

    ``astype(..., copy=False)`` aliases the caller's buffer whenever no
    dtype conversion is needed, so a caller mutating its array after
    ``infer()`` returns would corrupt the in-flight batch; any feed that
    still shares memory with the caller's array is copied here.
    """
    sample: Dict[str, np.ndarray] = {}
    for name, spec in input_specs.items():
        if name not in feeds:
            raise ValueError(f"missing feed for graph input {name!r}")
        raw = feeds[name]
        value = np.asarray(raw)
        if tuple(value.shape) != spec.shape:
            raise ValueError(
                f"feed {name!r} has shape {value.shape}, expected the "
                f"single-sample shape {spec.shape}")
        converted = value.astype(spec.dtype.to_numpy(), copy=False)
        if isinstance(raw, np.ndarray) and \
                np.shares_memory(converted, raw):
            converted = converted.copy()
        sample[name] = converted
    extra = set(feeds) - set(sample)
    if extra:
        raise ValueError(f"unknown feed tensors: {sorted(extra)}")
    return sample


class InferenceEngine:
    """Serves single-sample requests through dynamically formed batches.

    Parameters
    ----------
    graph
        Model to serve; rebatched internally, so any build batch works.
    workers
        Concurrent plan workers (and the bound on in-flight batches).
    max_batch
        Largest batch the queue may coalesce.
    max_latency_ms
        How long the oldest queued request may wait for the batch to
        fill before being dispatched anyway.
    reuse_buffers
        Run workers on scratch arenas (allocation-free steady state).
    plan_cache
        Optional :class:`repro.runtime.plan_cache.PlanCache`: per-batch
        plan builds go through :func:`load_or_build`, so a restarted
        engine warm-starts from disk instead of respecializing.  Hit and
        miss counts surface in :meth:`metrics`.
    aot_config
        :class:`repro.optim.passes.AOTConfig` for cache-backed builds
        (bitwise-safe defaults when None).
    prewarm
        Pre-populate each worker arena from the plan's activation shapes
        (first run allocation-free, not just steady state).
    num_threads
        Threads each batch's executor may use for dependency-scheduled
        step execution and row sharding (bitwise-identical results at
        any value).  ``None`` defers to ``REPRO_NUM_THREADS``, else 1.
    tracer
        Optional :class:`repro.telemetry.tracing.Tracer`.  Requests the
        tracer samples carry a :class:`RequestTrace` through the whole
        pipeline (queue wait, dispatch wait, batch assembly, execute
        with per-step kernel spans, finalize); finished traces land in
        the tracer's ring buffer for Chrome-trace export.  ``None`` (the
        default) disables tracing: the hot path pays one branch.
    slow_request_ms
        When set, any request whose end-to-end latency is at or above
        this many milliseconds is logged on the ``repro.serving`` logger
        (with its phase decomposition when traced) and counted in
        ``repro_serving_slow_requests_total``.
    """

    def __init__(self, graph: Graph, workers: int = 1, max_batch: int = 8,
                 max_latency_ms: float = 2.0,
                 reuse_buffers: bool = True,
                 plan_cache=None, aot_config=None,
                 prewarm: bool = False,
                 num_threads: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 slow_request_ms: Optional[float] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.template = graph.with_batch(1)
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.reuse_buffers = reuse_buffers
        self.plan_cache = plan_cache
        self.aot_config = aot_config
        self.prewarm = bool(prewarm)
        self._cache_hits = 0
        self._cache_misses = 0
        self._input_specs = {spec.name: spec for spec in self.template.inputs}
        self.queue = BatchQueue(max_batch=max_batch,
                                max_latency_s=max_latency_ms / 1e3)
        self.recorder = MetricsRecorder()
        self.tracer = tracer if tracer is not None and tracer.enabled \
            else None
        self.slow_request_ms = (float(slow_request_ms)
                                if slow_request_ms is not None else None)
        self.slow_requests = 0
        self._slow_lock = threading.Lock()
        self._closed = False
        # Compiled base plans shared across workers, keyed by batch size.
        self._compile_lock = threading.Lock()
        self._compiled: Dict[int, Tuple[Graph, ExecutionPlan]] = {}
        # Checked-in executors per batch size, plus every executor ever
        # created (for aggregate arena stats).
        self._pool_lock = threading.Lock()
        self._free: Dict[int, List[Executor]] = {}
        self._executors: List[Executor] = []
        # A worker slot must be free before the dispatcher forms a batch;
        # otherwise it would drain the queue into the shared pool's
        # backlog and lose every coalescing opportunity.
        self._slots = threading.Semaphore(self.workers)
        self.num_threads = resolve_num_threads(num_threads)
        # One shared process pool runs both the engine's batch tasks and
        # the executors' step/shard helpers; size it so a full complement
        # of batches still leaves the intra-batch helpers runnable.
        self._pool = get_pool(ensure=self.workers + self.num_threads - 1)
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="repro-serve-dispatch",
                                            daemon=True)
        self._dispatcher.start()
        # Serving series (requests, failures, queue depth, windowed
        # percentiles) surface in the process-wide metrics registry via
        # a scrape-time collector over live engines.
        _telemetry.track_engine(self)

    # -- public API ----------------------------------------------------------

    def infer(self, feeds: Mapping[str, np.ndarray]) -> "Future":
        """Submit one sample (leading batch axis 1); returns a Future
        resolving to a dict of output name -> array."""
        if self._closed:
            raise EngineClosedError("engine is closed")
        request = InferenceRequest(feeds=self._check_sample(feeds))
        if self.tracer is not None and self.tracer.sample():
            trace = RequestTrace(self.template.name or "request")
            trace.mark("enqueued")
            request.trace = trace
        try:
            self.queue.submit(request)
        except QueueClosedError:
            # close() won the race between our _closed check and the
            # queue submit; surface the same typed error as the check.
            raise EngineClosedError("engine is closed") from None
        return request.future

    def infer_sync(self, feeds: Mapping[str, np.ndarray],
                   timeout: Optional[float] = None) -> Dict[str, np.ndarray]:
        return self.infer(feeds).result(timeout=timeout)

    def infer_many(self, samples: Sequence[Mapping[str, np.ndarray]],
                   timeout: Optional[float] = None
                   ) -> List[Dict[str, np.ndarray]]:
        """Submit a burst of samples and wait for all results in order."""
        futures = [self.infer(sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    def metrics(self) -> MetricsSnapshot:
        """A consistent snapshot of throughput/latency/batching/arena."""
        arena_stats = ArenaStats()
        workspace_allocations = 0
        with self._pool_lock:
            executors = list(self._executors)
        for executor in executors:
            arena = executor.plan.arena
            if arena is not None:
                arena_stats.allocations += arena.stats.allocations
                arena_stats.allocated_bytes += arena.stats.allocated_bytes
                arena_stats.large_allocations += arena.stats.large_allocations
                arena_stats.reuses += arena.stats.reuses
                arena_stats.reused_bytes += arena.stats.reused_bytes
            if executor.plan.workspace is not None:
                workspace_allocations += executor.plan.workspace.allocations
        with self._compile_lock:
            cache_hits, cache_misses = self._cache_hits, self._cache_misses
        return self.recorder.snapshot(
            queue_depth=self.queue.depth(),
            arena_stats=arena_stats,
            workspace_allocations=workspace_allocations,
            plan_cache_hits=cache_hits,
            plan_cache_misses=cache_misses)

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, fail whatever is still queued, and wait
        for in-flight batches to finish.

        The shared process pool is never shut down (other subsystems use
        it); instead, draining every worker slot proves all of this
        engine's batch tasks have completed."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        self._dispatcher.join(timeout=timeout)
        drained = self.queue.drain()
        if drained:
            # Requests failed at shutdown are failures like any other:
            # without this, ``failures``/``failure_rate`` under-report
            # every request the close drained.
            self._fail_batch(
                drained, EngineClosedError("engine closed before "
                                           "execution"))
        acquired = 0
        for _ in range(self.workers):
            ok = (self._slots.acquire(timeout=timeout)
                  if timeout is not None else self._slots.acquire())
            if not ok:
                break
            acquired += 1
        for _ in range(acquired):
            self._slots.release()

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _check_sample(self, feeds: Mapping[str, np.ndarray]
                      ) -> Dict[str, np.ndarray]:
        return check_sample(self._input_specs, feeds)

    def _fail_batch(self, requests: List[InferenceRequest],
                    exc: BaseException, traces: Sequence = ()) -> None:
        """Record and propagate a whole batch's failure.

        Failure latencies join the same percentile window as successes,
        so p99 reflects the worst outcomes.
        """
        failed_at = time.monotonic()
        self.recorder.record_failure(
            len(requests), [failed_at - request.enqueued_at
                            for request in requests])
        for request in requests:
            if not request.future.done():
                request.future.set_exception(exc)
        self._finish_traces(list(traces), failed=True)

    def _base_plan(self, batch: int) -> Tuple[Graph, ExecutionPlan]:
        with self._compile_lock:
            entry = self._compiled.get(batch)
            if entry is None:
                graph = self.template.with_batch(batch)
                if self.plan_cache is not None:
                    from ..runtime.plan_cache import load_or_build

                    model = load_or_build(graph, self.aot_config,
                                          self.plan_cache)
                    if model.from_cache:
                        self._cache_hits += 1
                    else:
                        self._cache_misses += 1
                    entry = (model.graph, model.plan)
                else:
                    entry = (graph, compile_plan(graph))
                self._compiled[batch] = entry
            return entry

    def _checkout(self, batch: int) -> Executor:
        with self._pool_lock:
            free = self._free.get(batch)
            if free:
                return free.pop()
        graph, plan = self._base_plan(batch)
        executor = Executor(graph, reuse_buffers=self.reuse_buffers,
                            plan=plan, prewarm=self.prewarm,
                            num_threads=self.num_threads)
        with self._pool_lock:
            self._executors.append(executor)
        return executor

    def _checkin(self, batch: int, executor: Executor) -> None:
        with self._pool_lock:
            self._free.setdefault(batch, []).append(executor)

    def _dispatch_loop(self) -> None:
        while True:
            self._slots.acquire()
            batch = self.queue.next_batch()
            if batch is None:
                self._slots.release()
                return
            if self.tracer is not None:
                for request in batch:
                    if request.trace is not None:
                        request.trace.mark("dequeued")
            try:
                self._pool.submit(self._make_batch_task(batch))
            except BaseException as exc:
                # The task never made it onto the pool, so its finally
                # block will never run: release the worker slot here (a
                # leaked permit would hang a later close() on slot
                # drain) and fail the batch's futures.
                self._slots.release()
                self._fail_batch(
                    batch, exc,
                    traces=[request.trace for request in batch
                            if request.trace is not None])

    def _make_batch_task(self, batch: List[InferenceRequest]):
        def task() -> None:
            try:
                self._run_batch(batch)
            finally:
                self._slots.release()
        return task

    def _run_batch(self, requests: List[InferenceRequest]) -> None:
        size = len(requests)
        # Traces ride along only for sampled requests; with no tracer
        # attached this is a single falsy check per batch.
        traces = [request.trace for request in requests
                  if request.trace is not None] if self.tracer is not None \
            else []
        for trace in traces:
            trace.batch_size = size
            trace.mark("task_start")
        try:
            executor = self._checkout(size)
            try:
                if size == 1:
                    feeds = requests[0].feeds
                else:
                    feeds = {
                        name: np.concatenate(
                            [request.feeds[name] for request in requests],
                            axis=0)
                        for name in self._input_specs
                    }
                if traces:
                    execute_t0 = time.perf_counter()
                    for trace in traces:
                        trace.mark("assembled", execute_t0)
                        trace.mark("execute_t0", execute_t0)
                    executor.record_timeline = True
                try:
                    outputs = executor.run(feeds)
                finally:
                    if traces:
                        executor.record_timeline = False
                if traces:
                    timeline = executor.last_timeline or []
                    for trace in traces:
                        trace.mark("executed")
                        trace.attach_steps(timeline)
                # Per-request copies so the (large) batch buffers can go
                # straight back to the worker's arena.
                results = [
                    {name: array[index:index + 1].copy()
                     for name, array in outputs.items()}
                    for index in range(size)
                ]
                executor.recycle(outputs)
            finally:
                self._checkin(size, executor)
        except BaseException as exc:
            self._fail_batch(requests, exc, traces=traces)
            return
        completed = time.monotonic()
        latencies = [completed - request.enqueued_at
                     for request in requests]
        self.recorder.record_batch(size, latencies)
        for request, result in zip(requests, results):
            request.future.set_result(result)
        for trace in traces:
            trace.mark("completed")
        self._finish_traces(traces, failed=False)
        if self.slow_request_ms is not None:
            self._log_slow(requests, latencies)

    def _finish_traces(self, traces, failed: bool) -> None:
        if not traces or self.tracer is None:
            return
        for trace in traces:
            if failed:
                trace.mark("completed")
            self.tracer.finish(trace)

    def _log_slow(self, requests: List[InferenceRequest],
                  latencies: List[float]) -> None:
        threshold_s = self.slow_request_ms / 1e3
        for request, latency in zip(requests, latencies):
            if latency < threshold_s:
                continue
            with self._slow_lock:
                self.slow_requests += 1
            if request.trace is not None:
                phases = request.trace.phase_durations_ms()
                detail = ", ".join(f"{name} {value:.2f} ms"
                                   for name, value in phases.items())
                logger.warning(
                    "slow request (trace %d): %.2f ms >= %.2f ms (%s)",
                    request.trace.trace_id, latency * 1e3,
                    self.slow_request_ms, detail)
            else:
                logger.warning(
                    "slow request: %.2f ms >= %.2f ms "
                    "(enable tracing for a phase breakdown)",
                    latency * 1e3, self.slow_request_ms)
