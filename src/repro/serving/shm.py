"""Zero-copy shared-memory data plane for the replica tier.

PR 6 made the *weights* zero-copy (one resident read-only mmap of the
plan cache's ``weights.bin`` across every replica), but activations
still paid full serialization per request: ``tobytes()`` →
``send_bytes()`` → ``recv_bytes()`` → ``frombuffer()`` is at least two
whole copies plus a kernel pipe transit of every payload byte, each
direction.  For activation-heavy vision models that copy tax — not the
GEMMs — is the replica tier's marginal cost.

This module replaces the pipe-borne payload with slots in per-replica
``multiprocessing.shared_memory`` rings:

* the parent writes request tensors **once**, directly into a 64-byte-
  aligned slot of the replica's request ring (``np.copyto`` into a
  mapped view — no pickle, no intermediate frame, no pipe transit of
  payload bytes);
* only a tiny control frame (slot index, generation, tensor descriptor
  table, plus the existing piggybacked stats) crosses the pipe;
* the replica executes straight out of read-only views of the mapped
  slot and writes outputs into the paired slot of a **response ring**,
  which the parent reads zero-copy (the per-request result split was
  already a copy and stays the only one).

Slot lifecycle
--------------

Rings carry a **generation** counter.  Slots are acquired and released
only by the parent (under the tier's condition variable), so ring-slot
availability *is* the tier's ``max_inflight`` backpressure: one slot
pair per in-flight batch, and a batch can only be sent while a slot is
free.  When a replica crashes, its rings are **retired**: the whole
generation is unlinked (no `/dev/shm` leak), in-flight slots die with
it, and the restarted replica attaches a fresh generation — a stale
frame can never alias a new batch's memory.  Retirement tolerates live
exported views (a crash can race a slot write): ``close()`` of the
mapping is retried, but ``unlink()`` always happens immediately, so the
segment name is gone even while a quarantined mapping drains.

Sizing and fallback
-------------------

Slot sizes are computed statically from the graph's input/output specs
at the tier's ``max_batch`` — the common case always fits.  Anything
that does not (oversized tensors, dynamic shapes) falls back per-frame
to the PR 6 pipe codec, as does the whole tier under
``REPRO_REPLICA_SHM=0`` or on platforms without POSIX shared memory.
Fallbacks are counted and exported via telemetry; results are bitwise
identical on every path by construction (same bytes, same kernels).
"""

from __future__ import annotations

import struct
import uuid
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

SLOT_ALIGN = 64

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


def shm_available() -> bool:
    """True when POSIX shared memory is usable on this platform."""
    return _shared_memory is not None


def align_up(nbytes: int, align: int = SLOT_ALIGN) -> int:
    return (int(nbytes) + align - 1) // align * align


@dataclass(frozen=True)
class TensorDesc:
    """One tensor's placement inside a slot (wire-encodable)."""

    name: str
    dtype: str                      # numpy dtype.str, e.g. "<f4"
    shape: Tuple[int, ...]
    offset: int                     # bytes from the slot start (aligned)
    nbytes: int


def layout_tensors(arrays: Mapping[str, np.ndarray]
                   ) -> Tuple[List[TensorDesc], int]:
    """Assign 64-byte-aligned offsets to ``arrays`` in sorted-name order.

    Returns the descriptor table and the total slot bytes required.
    Deterministic given names/shapes/dtypes, so parent and tests agree.
    """
    descs: List[TensorDesc] = []
    offset = 0
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        descs.append(TensorDesc(name=name, dtype=array.dtype.str,
                                shape=tuple(int(s) for s in array.shape),
                                offset=offset, nbytes=int(array.nbytes)))
        offset += align_up(array.nbytes)
    return descs, offset


def required_slot_bytes(specs, batch: int) -> int:
    """Slot bytes needed for one batch of ``specs`` (TensorSpec-likes
    whose leading dimension is the per-sample batch axis)."""
    total = 0
    for spec in specs:
        shape = (batch,) + tuple(spec.shape[1:])
        nbytes = int(np.dtype(spec.dtype.to_numpy()).itemsize
                     * int(np.prod(shape, dtype=np.int64)))
        total += align_up(nbytes)
    return total


def write_tensors(view: memoryview, arrays: Mapping[str, np.ndarray],
                  descs: Sequence[TensorDesc]) -> None:
    """Copy ``arrays`` into ``view`` at their descriptor offsets.

    The single copy of the data plane: ``np.copyto`` into a typed view
    of the slot handles non-contiguous sources without materializing
    intermediate bytes.
    """
    for desc in descs:
        target = np.frombuffer(view, dtype=np.dtype(desc.dtype),
                               count=_elements(desc),
                               offset=desc.offset).reshape(desc.shape)
        np.copyto(target, arrays[desc.name], casting="no")


def read_tensors(view: memoryview, descs: Sequence[TensorDesc],
                 writable: bool = False) -> Dict[str, np.ndarray]:
    """Zero-copy views over a slot described by ``descs``.

    Read-only by default: the replica must never mutate request memory
    the parent may reuse, and the parent copies what it keeps.
    """
    arrays: Dict[str, np.ndarray] = {}
    for desc in descs:
        array = np.frombuffer(view, dtype=np.dtype(desc.dtype),
                              count=_elements(desc),
                              offset=desc.offset).reshape(desc.shape)
        if writable and not array.flags.writeable:
            raise ValueError("slot view is not writable")
        if not writable:
            array = array.view()
            array.flags.writeable = False
        arrays[desc.name] = array
    return arrays


def _elements(desc: TensorDesc) -> int:
    count = 1
    for dim in desc.shape:
        count *= int(dim)
    return count


def pack_descriptors(descs: Sequence[TensorDesc]) -> bytes:
    """Encode a descriptor table (headers only — no payload bytes)."""
    parts: List[bytes] = [_U32.pack(len(descs))]
    for desc in descs:
        name_bytes = desc.name.encode("utf-8")
        dtype_bytes = desc.dtype.encode("ascii")
        parts.append(_U16.pack(len(name_bytes)))
        parts.append(name_bytes)
        parts.append(_U16.pack(len(dtype_bytes)))
        parts.append(dtype_bytes)
        parts.append(_U8.pack(len(desc.shape)))
        parts.append(struct.pack(f"!{len(desc.shape)}Q", *desc.shape))
        parts.append(_U64.pack(desc.offset))
        parts.append(_U64.pack(desc.nbytes))
    return b"".join(parts)


def unpack_descriptors(payload) -> Tuple[List[TensorDesc], int]:
    """Decode :func:`pack_descriptors` output; returns (table, bytes
    consumed)."""
    view = memoryview(payload)
    offset = 0
    (count,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    descs: List[TensorDesc] = []
    for _ in range(count):
        (name_len,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        name = bytes(view[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        (dtype_len,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        dtype = bytes(view[offset:offset + dtype_len]).decode("ascii")
        offset += dtype_len
        (ndim,) = _U8.unpack_from(view, offset)
        offset += _U8.size
        shape = struct.unpack_from(f"!{ndim}Q", view, offset)
        offset += ndim * _U64.size
        (tensor_offset,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        (nbytes,) = _U64.unpack_from(view, offset)
        offset += _U64.size
        descs.append(TensorDesc(name=name, dtype=dtype,
                                shape=tuple(int(s) for s in shape),
                                offset=int(tensor_offset),
                                nbytes=int(nbytes)))
    return descs, offset


@dataclass(frozen=True)
class ShmRingSpec:
    """Everything a replica needs to attach a channel (picklable)."""

    request_name: str
    response_name: str
    slots: int
    request_slot_bytes: int
    response_slot_bytes: int
    generation: int


class _Ring:
    """One named shared-memory segment divided into equal slots."""

    def __init__(self, name: Optional[str], slots: int,
                 slot_bytes: int, create: bool) -> None:
        if _shared_memory is None:
            raise RuntimeError("shared memory is unavailable")
        self.slots = int(slots)
        self.slot_bytes = align_up(slot_bytes)
        size = max(1, self.slots * self.slot_bytes)
        if create:
            # Short repro_-prefixed names: the CI leak check greps
            # /dev/shm for repro_* and macOS caps POSIX names ~31 chars.
            name = f"repro_{uuid.uuid4().hex[:16]}"
            self._shm = _shared_memory.SharedMemory(
                name=name, create=True, size=size)
        else:
            self._shm = _shared_memory.SharedMemory(name=name)
        self.name = self._shm.name
        self._closed = False

    def slot_view(self, index: int) -> memoryview:
        if not 0 <= index < self.slots:
            raise IndexError(f"slot {index} out of range "
                             f"[0, {self.slots})")
        start = index * self.slot_bytes
        return self._shm.buf[start:start + self.slot_bytes]

    def close(self) -> bool:
        """Release the mapping; False when live exported views defer it
        (quarantine — the caller may retry, and process exit collects
        it regardless).  The segment *name* is handled by unlink()."""
        if self._closed:
            return True
        try:
            self._shm.close()
        except BufferError:
            return False
        self._closed = True
        return True

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ShmChannel:
    """Parent-side slot bookkeeping for one replica's ring pair.

    The tier serializes acquire/release under its own lock, so this
    class keeps plain lists.  ``slots`` equals the tier's
    ``max_inflight``: slot availability *is* the backpressure bound.
    """

    def __init__(self, slots: int, request_slot_bytes: int,
                 response_slot_bytes: int, generation: int) -> None:
        self.generation = int(generation)
        self.request_ring = _Ring(None, slots, request_slot_bytes,
                                  create=True)
        try:
            self.response_ring = _Ring(None, slots, response_slot_bytes,
                                       create=True)
        except BaseException:
            self.request_ring.close()
            self.request_ring.unlink()
            raise
        # LIFO free list: hot slots stay cache- and TLB-warm.
        self._free: List[int] = list(range(int(slots)))
        self.retired = False

    @property
    def slots(self) -> int:
        return self.request_ring.slots

    @property
    def request_slot_bytes(self) -> int:
        return self.request_ring.slot_bytes

    @property
    def response_slot_bytes(self) -> int:
        return self.response_ring.slot_bytes

    def free_slots(self) -> int:
        return len(self._free)

    def acquire_slot(self) -> Optional[int]:
        """Pop a free slot index (caller holds the tier lock); None when
        every slot is in flight (backpressure)."""
        if self.retired or not self._free:
            return None
        return self._free.pop()

    def release_slot(self, index: int) -> None:
        if not self.retired:
            self._free.append(index)

    def segment_names(self) -> Tuple[str, str]:
        return (self.request_ring.name, self.response_ring.name)

    def spec(self) -> ShmRingSpec:
        return ShmRingSpec(
            request_name=self.request_ring.name,
            response_name=self.response_ring.name,
            slots=self.slots,
            request_slot_bytes=self.request_slot_bytes,
            response_slot_bytes=self.response_slot_bytes,
            generation=self.generation)

    def retire(self) -> None:
        """Unlink both segments now; close mappings (or quarantine).

        Idempotent.  Called on replica crash and tier close — after it
        returns no ``repro_*`` name of this generation exists in
        ``/dev/shm`` regardless of what was in flight.
        """
        if self.retired:
            self.request_ring.unlink()
            self.response_ring.unlink()
            self.request_ring.close()
            self.response_ring.close()
            return
        self.retired = True
        self._free = []
        self.request_ring.unlink()
        self.response_ring.unlink()
        self.request_ring.close()
        self.response_ring.close()


class ShmAttachment:
    """Replica-side view of the parent's ring pair.

    Attaching re-registers the segment names, but replicas share the
    parent's resource-tracker process (``spawn`` passes the tracker fd
    down), and its registry is a set — so the attach is a no-op there,
    a SIGKILLed replica cannot trigger an unlink of segments the
    parent still owns, and leftover names are still reaped if the
    whole tree dies without :meth:`ShmChannel.retire`.
    """

    def __init__(self, spec: ShmRingSpec) -> None:
        self.generation = spec.generation
        self.request_ring = _Ring(spec.request_name, spec.slots,
                                  spec.request_slot_bytes, create=False)
        try:
            self.response_ring = _Ring(spec.response_name, spec.slots,
                                       spec.response_slot_bytes,
                                       create=False)
        except BaseException:
            self.request_ring.close()
            raise

    def request_views(self, slot: int, descs: Sequence[TensorDesc]
                      ) -> Dict[str, np.ndarray]:
        return read_tensors(self.request_ring.slot_view(slot), descs)

    def write_response(self, slot: int,
                       outputs: Mapping[str, np.ndarray]
                       ) -> Optional[List[TensorDesc]]:
        """Write ``outputs`` into the response slot; None when they do
        not fit (the caller falls back to the pipe codec)."""
        descs, total = layout_tensors(outputs)
        if total > self.response_ring.slot_bytes:
            return None
        write_tensors(self.response_ring.slot_view(slot), outputs, descs)
        return descs

    def close(self) -> None:
        self.request_ring.close()
        self.response_ring.close()
