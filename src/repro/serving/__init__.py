"""Serving layer: dynamic micro-batching over pooled execution plans,
plus the multi-process replica tier for multi-core scale."""

from .batcher import (
    BatchQueue,
    InferenceRequest,
    QueueClosedError,
    RequestShedError,
)
from .bench import (
    BenchResult,
    ReplicaBenchResult,
    ShmBenchResult,
    TraceReplayResult,
    make_trace,
    render,
    render_replicas,
    render_shm,
    render_trace_replay,
    run_bench,
    run_replica_bench,
    run_shm_bench,
    run_trace_replay,
    sample_feeds,
)
from .engine import (
    EngineClosedError,
    InferenceEngine,
    ShedPolicy,
    check_sample,
)
from .latency_model import BatchLatencyModel
from .metrics import MetricsRecorder, MetricsSnapshot, percentile
from .replicas import (
    ReplicaCrashError,
    ReplicaEngine,
    ReplicaError,
    ReplicaStats,
    TierSaturatedError,
)
from .shm import ShmChannel, ShmRingSpec, shm_available

__all__ = [
    "BatchQueue", "InferenceRequest", "QueueClosedError",
    "RequestShedError",
    "BenchResult", "ReplicaBenchResult", "ShmBenchResult",
    "TraceReplayResult",
    "make_trace", "render", "render_replicas", "render_shm",
    "render_trace_replay",
    "run_bench", "run_replica_bench", "run_shm_bench",
    "run_trace_replay", "sample_feeds",
    "ShmChannel", "ShmRingSpec", "shm_available",
    "EngineClosedError", "InferenceEngine", "ShedPolicy",
    "check_sample", "BatchLatencyModel",
    "MetricsRecorder", "MetricsSnapshot", "percentile",
    "ReplicaCrashError", "ReplicaEngine", "ReplicaError",
    "ReplicaStats", "TierSaturatedError",
]
