"""Serving layer: dynamic micro-batching over pooled execution plans,
plus the multi-process replica tier for multi-core scale."""

from .batcher import BatchQueue, InferenceRequest, QueueClosedError
from .bench import (
    BenchResult,
    ReplicaBenchResult,
    render,
    render_replicas,
    run_bench,
    run_replica_bench,
    sample_feeds,
)
from .engine import EngineClosedError, InferenceEngine, check_sample
from .metrics import MetricsRecorder, MetricsSnapshot, percentile
from .replicas import (
    ReplicaCrashError,
    ReplicaEngine,
    ReplicaError,
    ReplicaStats,
    TierSaturatedError,
)

__all__ = [
    "BatchQueue", "InferenceRequest", "QueueClosedError",
    "BenchResult", "ReplicaBenchResult", "render", "render_replicas",
    "run_bench", "run_replica_bench", "sample_feeds",
    "EngineClosedError", "InferenceEngine", "check_sample",
    "MetricsRecorder", "MetricsSnapshot", "percentile",
    "ReplicaCrashError", "ReplicaEngine", "ReplicaError",
    "ReplicaStats", "TierSaturatedError",
]
