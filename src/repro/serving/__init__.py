"""Serving layer: dynamic micro-batching over pooled execution plans."""

from .batcher import BatchQueue, InferenceRequest
from .bench import BenchResult, render, run_bench, sample_feeds
from .engine import EngineClosedError, InferenceEngine
from .metrics import MetricsRecorder, MetricsSnapshot, percentile

__all__ = [
    "BatchQueue", "InferenceRequest",
    "BenchResult", "render", "run_bench", "sample_feeds",
    "EngineClosedError", "InferenceEngine",
    "MetricsRecorder", "MetricsSnapshot", "percentile",
]
