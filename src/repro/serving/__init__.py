"""Serving layer: dynamic micro-batching over pooled execution plans,
plus the multi-process replica tier for multi-core scale."""

from .batcher import (
    BatchQueue,
    InferenceRequest,
    QueueClosedError,
    RequestShedError,
)
from .bench import (
    BenchResult,
    ReplicaBenchResult,
    TraceReplayResult,
    make_trace,
    render,
    render_replicas,
    render_trace_replay,
    run_bench,
    run_replica_bench,
    run_trace_replay,
    sample_feeds,
)
from .engine import (
    EngineClosedError,
    InferenceEngine,
    ShedPolicy,
    check_sample,
)
from .latency_model import BatchLatencyModel
from .metrics import MetricsRecorder, MetricsSnapshot, percentile
from .replicas import (
    ReplicaCrashError,
    ReplicaEngine,
    ReplicaError,
    ReplicaStats,
    TierSaturatedError,
)

__all__ = [
    "BatchQueue", "InferenceRequest", "QueueClosedError",
    "RequestShedError",
    "BenchResult", "ReplicaBenchResult", "TraceReplayResult",
    "make_trace", "render", "render_replicas", "render_trace_replay",
    "run_bench", "run_replica_bench", "run_trace_replay",
    "sample_feeds",
    "EngineClosedError", "InferenceEngine", "ShedPolicy",
    "check_sample", "BatchLatencyModel",
    "MetricsRecorder", "MetricsSnapshot", "percentile",
    "ReplicaCrashError", "ReplicaEngine", "ReplicaError",
    "ReplicaStats", "TierSaturatedError",
]
