"""Txt-P — implicit-GEMM convolution and cache-blocked quantized GEMM.

PR 7 rebuilt the convolution lowering three ways: the float path feeds
geometry-tagged column buffers (border-zeroed once, in-bounds patches
gathered per call) straight to the GEMM instead of materializing a
padded copy first; the quantized path runs its integer GEMM exactly in
float64 BLAS panels sized to the L2 budget (`QGEMM_PANEL_BYTES`)
instead of int32 `matmul`; and the layout-planner pass converts
quantized conv regions to NHWC between boundary transposes.  All three
are bitwise-identical to the seed paths — speed is the only thing that
may change, and this benchmark is the CI guard on it:

1. *quantized conv throughput* (tiny_yolo int8, single core, arena
   steady state): exact blocked f64 GEMM vs. the seed int32 path.
   Guarded at >= 1.3x — the headline win of this PR.
2. *float conv throughput* (tiny_yolo fp32): implicit-GEMM vs. seed
   materialized im2col.  The float GEMM call itself is unchanged, so the
   win is only the avoided pad-copy — reported honestly and guarded
   against regression (>= 0.95x).
3. *warm plan build* with the layout pass on vs. off: hydrating a cached
   layout-planned plan must cost <= 1.1x the plain warm build.
4. *scratch footprint*: peak kernel-workspace bytes, implicit vs. seed
   (must shrink — the padded-input copy is gone), plus the per-conv
   column-buffer sizes for both paths.

``REPRO_BENCH_SMOKE=1`` shrinks repeats for CI smoke jobs.  Results go
to ``BENCH_pr7.json`` at the repo root.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ir import build_model
from repro.ir.tensor import DType
from repro.optim import AOTConfig, fuse_graph, quantize_int8
from repro.runtime import Executor, PlanCache, compile_plan, load_or_build
from repro.runtime import kernels

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 3 if SMOKE else 7
RUNS = 15 if SMOKE else 40

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr7.json"

MODEL = "tiny_yolo"


def _steady_state_us(executor, feeds):
    """Best-of mean microseconds per run in arena steady state."""
    executor.recycle(executor.run(feeds))  # warm arenas and workspaces
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(RUNS):
            executor.recycle(executor.run(feeds))
        best = min(best, (time.perf_counter() - start) / RUNS)
    return best * 1e6


def _interleaved(executors, feeds):
    for executor in executors:
        executor.recycle(executor.run(feeds))
    best = [float("inf")] * len(executors)
    for _ in range(REPEATS):
        for index, executor in enumerate(executors):
            start = time.perf_counter()
            for _ in range(RUNS):
                executor.recycle(executor.run(feeds))
            best[index] = min(best[index],
                              (time.perf_counter() - start) / RUNS)
    return [b * 1e6 for b in best]


def quantized_conv_study():
    """Exact blocked f64 quantized GEMM vs. the seed int32 path."""
    rng = np.random.default_rng(0)
    base = fuse_graph(build_model(MODEL, batch=1))
    shape = tuple(base.inputs[0].shape)
    x = rng.normal(size=shape).astype(np.float32)
    graph = quantize_int8(base, [{base.inputs[0].name: x}])
    feeds = {base.inputs[0].name: x}

    # Seed path: exact packs off at *compile* time (w_int packs) and the
    # im2col conv mode at *run* time — exactly the pre-PR-7 pipeline.
    prev_exact = kernels.set_exact_qgemm(False)
    prev_mode = kernels.set_conv_mode("im2col")
    try:
        seed_exec = Executor(graph,
                             plan=compile_plan(graph, prepack=True),
                             reuse_buffers=True)
        seed_us = _steady_state_us(seed_exec, feeds)
        seed_peak = seed_exec.plan.workspace.peak_bytes
    finally:
        kernels.set_exact_qgemm(prev_exact)
        kernels.set_conv_mode(prev_mode)

    exact_exec = Executor(graph, plan=compile_plan(graph, prepack=True),
                          reuse_buffers=True)
    exact_us = _steady_state_us(exact_exec, feeds)
    exact_out = exact_exec.run(feeds)

    # Hard bar: the fast path earns nothing unless it is bit-identical.
    prev_exact = kernels.set_exact_qgemm(False)
    prev_mode = kernels.set_conv_mode("im2col")
    try:
        ref_out = Executor(graph).run(feeds)
    finally:
        kernels.set_exact_qgemm(prev_exact)
        kernels.set_conv_mode(prev_mode)
    for name in ref_out:
        np.testing.assert_array_equal(ref_out[name], exact_out[name])

    return {
        "model": f"{MODEL} int8", "seed_us": seed_us,
        "exact_us": exact_us, "speedup": seed_us / exact_us,
        "seed_fps": 1e6 / seed_us, "exact_fps": 1e6 / exact_us,
    }


def float_conv_study():
    """Implicit-GEMM vs. seed materialized im2col, fp32."""
    graph = fuse_graph(build_model(MODEL, batch=1))
    rng = np.random.default_rng(1)
    shape = tuple(graph.inputs[0].shape)
    feeds = {graph.inputs[0].name:
             rng.normal(size=shape).astype(np.float32)}
    implicit_exec = Executor(graph,
                             plan=compile_plan(graph, prepack=True),
                             reuse_buffers=True)
    seed_exec = Executor(graph, plan=compile_plan(graph, prepack=True),
                         reuse_buffers=True)

    prev = kernels.set_conv_mode("implicit")
    try:
        implicit_us = _steady_state_us(implicit_exec, feeds)
        kernels.set_conv_mode("im2col")
        seed_us = _steady_state_us(seed_exec, feeds)
    finally:
        kernels.set_conv_mode(prev)

    return {
        "model": f"{MODEL} fp32", "seed_us": seed_us,
        "implicit_us": implicit_us, "speedup": seed_us / implicit_us,
        "implicit_peak_workspace_bytes":
            implicit_exec.plan.workspace.peak_bytes,
        "seed_peak_workspace_bytes": seed_exec.plan.workspace.peak_bytes,
    }


def plan_build_study(cache_dir):
    """Warm plan hydration with the layout pass on vs. off."""
    rng = np.random.default_rng(2)
    base = fuse_graph(build_model(MODEL, batch=1))
    shape = tuple(base.inputs[0].shape)
    x = rng.normal(size=shape).astype(np.float32)
    graph = quantize_int8(base, [{base.inputs[0].name: x}])
    cache = PlanCache(cache_dir)
    configs = {"off": AOTConfig(), "on": AOTConfig(plan_layout=True)}
    warm = {}
    for name, config in configs.items():
        assert not load_or_build(graph, config=config,
                                 cache=cache).from_cache
    for _ in range(REPEATS):
        for name, config in configs.items():
            start = time.perf_counter()
            model = load_or_build(graph, config=config, cache=cache)
            elapsed = time.perf_counter() - start
            assert model.from_cache
            warm[name] = min(warm.get(name, float("inf")), elapsed)
    return {
        "model": f"{MODEL} int8",
        "warm_layout_off_ms": warm["off"] * 1e3,
        "warm_layout_on_ms": warm["on"] * 1e3,
        "ratio": warm["on"] / warm["off"],
    }


def conv_intermediate_study():
    """Per-conv column-buffer bytes: seed im2col vs. implicit path."""
    graph = fuse_graph(build_model(MODEL, batch=1))
    specs = graph.infer_specs()
    rows = []
    for node in graph.nodes:
        if node.op_type not in ("conv2d", "fused_conv2d", "qconv2d"):
            continue
        data = specs[node.inputs[0]]
        weight = specs[node.inputs[1]]
        out = specs[node.outputs[0]]
        n, _, oh, ow = out.shape
        out_c, in_c, kh, kw = weight.shape
        item = np.dtype(data.dtype.to_numpy()).itemsize
        cols = n * in_c * kh * kw * oh * ow * item
        stride = kernels._pair(node.attrs.get("stride", 1))
        ph, pw = kernels._pair(node.attrs.get("padding", 0))
        pointwise = (kh, kw) == (1, 1) and stride == (1, 1) \
            and not (ph or pw)
        h, w = data.shape[2], data.shape[3]
        padded_input = n * in_c * (h + 2 * ph) * (w + 2 * pw) * item
        rows.append({
            "node": node.name,
            "seed_bytes": cols + (padded_input if (ph or pw) else 0),
            "implicit_bytes": 0 if pointwise else cols,
        })
    return rows


def render(quant, flt, build, inter):
    lines = [
        f"quantized conv throughput ({quant['model']}, 1 core)",
        f"  seed int32 path:  {quant['seed_us']:>10.1f} us/run "
        f"({quant['seed_fps']:.0f} fps)",
        f"  exact f64 blocked:{quant['exact_us']:>10.1f} us/run "
        f"({quant['exact_fps']:.0f} fps)",
        f"  speedup:          {quant['speedup']:>10.2f}x  (guard >= 1.30x)",
        f"float conv throughput ({flt['model']}, 1 core)",
        f"  seed im2col:      {flt['seed_us']:>10.1f} us/run",
        f"  implicit GEMM:    {flt['implicit_us']:>10.1f} us/run",
        f"  speedup:          {flt['speedup']:>10.2f}x  (guard >= 0.95x)",
        f"  peak workspace:   "
        f"{flt['seed_peak_workspace_bytes']:>10d} B seed -> "
        f"{flt['implicit_peak_workspace_bytes']:>10d} B implicit",
        f"warm plan build ({build['model']})",
        f"  layout pass off:  {build['warm_layout_off_ms']:>10.2f} ms",
        f"  layout pass on:   {build['warm_layout_on_ms']:>10.2f} ms",
        f"  ratio:            {build['ratio']:>10.2f}x  (guard <= 1.10x)",
        "per-conv column buffers (bytes, seed -> implicit)",
    ]
    for row in inter:
        lines.append(f"  {row['node']:<24} {row['seed_bytes']:>10d} -> "
                     f"{row['implicit_bytes']:>10d}")
    return "\n".join(lines)


def test_txt_kernel_speed(benchmark, report, tmp_path):
    def study():
        return (quantized_conv_study(), float_conv_study(),
                plan_build_study(tmp_path / "plan-cache"),
                conv_intermediate_study())

    quant, flt, build, inter = benchmark.pedantic(study, rounds=1,
                                                  iterations=1)
    report("txt_kernel_speed", render(quant, flt, build, inter))
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "txt_kernel_speed",
        "smoke": SMOKE,
        "quantized_conv": quant,
        "float_conv": flt,
        "plan_build": build,
        "conv_intermediates": inter,
    }, indent=2) + "\n")

    # CI guards.  The quantized rewrite is the tentpole: >= 1.3x or the
    # PR has not delivered.  The float path only drops the pad copy, so
    # it is guarded against regression, not oversold.
    assert quant["speedup"] >= 1.3, quant
    assert flt["speedup"] >= 0.95, flt
    # The layout pass must not make warm starts meaningfully slower.
    assert build["ratio"] <= 1.10, build
    # The padded-input copy is gone, so the scratch high-water mark must
    # shrink on conv-heavy float workloads.
    assert flt["implicit_peak_workspace_bytes"] < \
        flt["seed_peak_workspace_bytes"], flt
    # The pointwise convs run straight off input views.
    assert any(row["implicit_bytes"] == 0 and row["seed_bytes"] > 0
               for row in inter), inter
