"""Ablation — orchestrated placement across a heterogeneous chassis.

The abstract's middleware promise: "collaboratively solving complex Deep
Learning applications across distributed systems" on hardware that allows
"easy exchange of computing resources and seamless switching between the
different heterogeneous components" (Sec. II-A).

The smart-mirror's four pipelines plus an arc-detection stream are placed
across a three-module edge box.  Compared policies: the power-minimizing
orchestrator vs. the naive everything-on-the-fastest-node baseline.  A
node failure is then injected and the orchestrator re-places the orphans.
"""

import pytest

from repro.core import ComputeNode, Orchestrator, Placement, Workload
from repro.hw import get_accelerator
from repro.ir import build_model


def make_setup():
    nodes = [
        ComputeNode("xavier-nx", get_accelerator("XavierNX")),
        ComputeNode("zu3-dpu", get_accelerator("ZynqZU3")),
        ComputeNode("imx8m", get_accelerator("i.MX8M")),
    ]
    vision = [Workload(name, build_model("tiny_convnet", batch=1,
                                         num_classes=4, seed=seed),
                       rate_hz=15.0, max_latency_s=1 / 30)
              for seed, name in enumerate(("gesture", "face", "object"))]
    speech = Workload("speech", build_model("mlp", batch=1, in_features=64,
                                            hidden=(128,), num_classes=5),
                      rate_hz=15.0, max_latency_s=1 / 30)
    arc = Workload("arc", build_model("arc_net", batch=1),
                   rate_hz=3000.0, max_latency_s=0.0003)
    return nodes, vision + [speech, arc]


def naive_placement(nodes, workloads):
    """Baseline: everything on the highest-peak node."""
    fastest = max(nodes, key=lambda n: n.spec.peak_gops_best)
    from repro.core.orchestrator import Assignment

    return Placement([Assignment(w, fastest, fastest.predict(w.graph))
                      for w in workloads])


def run_study():
    nodes, workloads = make_setup()
    orchestrator = Orchestrator(nodes)
    optimized = orchestrator.place(workloads)
    naive = naive_placement(nodes, workloads)
    # Snapshot feasibility before the failure injection below marks the
    # victim unhealthy (feasibility is evaluated against live node state).
    pre_failure_feasible = (optimized.feasible, naive.feasible)

    victim = optimized.assignment_of("arc").node.name
    recovered = orchestrator.handle_node_failure(optimized, victim)
    return optimized, naive, victim, recovered, pre_failure_feasible


def test_abl_orchestration(benchmark, report):
    (optimized, naive, victim, recovered,
     pre_failure_feasible) = benchmark.pedantic(run_study, rounds=1,
                                                iterations=1)
    text = ("orchestrated placement:\n" + optimized.report()
            + "\n\nnaive (all on fastest node):\n" + naive.report()
            + f"\n\nafter failure of {victim!r}:\n" + recovered.report())
    report("abl_orchestration", text)

    # 1. Both placements were feasible before the injected failure, and
    #    orchestration saves power by consolidating onto efficient modules.
    assert pre_failure_feasible == (True, True)
    assert optimized.total_power_w < naive.total_power_w
    # 2. The saving is substantial (the NX idles at 4 W; the small modules
    #    idle at 1.5-2.5 W).
    assert optimized.total_power_w < 0.9 * naive.total_power_w
    # 3. Failover keeps all five workloads running within budget.
    assert recovered.feasible
    assert len(recovered.assignments) == len(optimized.assignments)
    assert all(a.node.name != victim for a in recovered.assignments)
