"""Fig. 5 — Architecture of the Smart Mirror Demonstrator.

Camera + microphone feed four neural networks (gesture, face, object,
speech); everything runs on-site within an embedded power budget.  This
benchmark assembles the full demonstrator, runs an interaction session,
and regenerates the per-network latency/energy table on the uRECS-class
platform.
"""

import numpy as np
import pytest

from repro.apps.smarthome import build_default_mirror
from repro.core import train_readout
from repro.datasets import make_shapes_dataset
from repro.datasets.audio import KEYWORD_CLASSES, keyword_waveform, \
    make_keyword_dataset
from repro.hw import get_accelerator
from repro.ir import build_model


@pytest.fixture(scope="module")
def mirror():
    def conv(seed):
        g = build_model("tiny_convnet", batch=8, image_size=32,
                        num_classes=4, seed=seed)
        ds = make_shapes_dataset(160, image_size=32, seed=seed)
        return train_readout(g, ds).graph.with_batch(1)

    speech = train_readout(
        build_model("mlp", batch=8, in_features=64, hidden=(128,),
                    num_classes=5, seed=4),
        make_keyword_dataset(40, seed=4)).graph.with_batch(1)
    return build_default_mirror(
        {"gesture": conv(1), "face": conv(2), "object": conv(3),
         "speech": speech},
        platform=get_accelerator("ZynqZU3"))


def run_session(mirror, ticks=20):
    rng = np.random.default_rng(0)
    frames = make_shapes_dataset(ticks, image_size=32, seed=7).features
    keywords = [KEYWORD_CLASSES[i % len(KEYWORD_CLASSES)]
                for i in range(ticks)]
    results = []
    for frame, keyword in zip(frames, keywords):
        audio = keyword_waveform(keyword, rng=rng)
        results.append((keyword, mirror.tick(frame, audio)))
    return results


def test_fig5_smart_mirror(benchmark, report, mirror):
    results = benchmark.pedantic(run_session, args=(mirror,),
                                 rounds=1, iterations=1)
    lines = [mirror.budget_report(), ""]
    speech_hits = sum(r.outputs["speech"] == kw for kw, r in results
                      if kw != "silence")
    speech_total = sum(1 for kw, _ in results if kw != "silence")
    lines.append(f"interaction session: {len(results)} ticks, "
                 f"speech accuracy {speech_hits}/{speech_total}")
    lines.append(f"sustained platform power: "
                 f"{mirror.sustained_power_w:.2f} W")
    lines.append(f"off-site transfers: {mirror.boundary.offsite_transfers}")
    report("fig5_smart_mirror", "\n".join(lines))

    # 1. All four networks present and within the real-time frame budget.
    assert len(mirror.pipelines) == 4
    assert all(r.within_budget for _, r in results)
    # 2. Speech interaction works (demand-oriented interaction).
    assert speech_hits >= speech_total * 0.7
    # 3. Privacy: no resident data leaves the device.
    assert mirror.boundary.offsite_transfers == 0
    # 4. Low power: sustained draw far below the uRECS 15 W budget.
    assert mirror.sustained_power_w < 5.0
    # 5. Energy split: the vision nets dominate, speech is cheap.
    predictions = mirror.predictions
    assert predictions["speech"].energy_per_inference_j < \
        predictions["object"].energy_per_inference_j
