"""Txt-J — the accelerator memory study.

Paper Sec. II-B: "an in-depth study of how the memory is utilized in
current accelerators and exploring new approaches for the memory hierarchy
for future DL accelerators is performed."

Two parts, both over the evaluation's own models:

1. *utilization*: how much activation memory the models really need —
   naive per-buffer allocation vs. a liveness-planned arena vs. the
   theoretical lower bound;
2. *hierarchy exploration*: DRAM-traffic saving as a function of on-chip
   scratchpad size — the sizing curve a future accelerator's SRAM budget
   is chosen from.
"""

import pytest

from repro.ir import build_model
from repro.optim import plan_memory, scratchpad_analysis

MODELS = ("tiny_convnet", "motor_net", "mobilenet_v3_small",
          "mobilenet_v3_large", "resnet50")
SRAM_SIZES = (1 << 17, 1 << 19, 1 << 21, 1 << 23)  # 128 KiB .. 8 MiB


def utilization_study():
    rows = []
    for name in MODELS:
        graph = build_model(name, batch=1)
        plan = plan_memory(graph)
        rows.append((name, plan))
    return rows


def hierarchy_study():
    graph = build_model("mobilenet_v3_small", batch=1)
    return [(size, scratchpad_analysis(graph, size)) for size in SRAM_SIZES]


def render(rows, curve):
    lines = [f"{'model':<22}{'naive KiB':>11}{'arena KiB':>11}"
             f"{'reuse':>7}{'vs bound':>9}"]
    for name, plan in rows:
        lines.append(f"{name:<22}{plan.naive_bytes / 1024:>11.0f}"
                     f"{plan.arena_bytes / 1024:>11.0f}"
                     f"{plan.reuse_factor:>6.1f}x"
                     f"{plan.efficiency:>9.0%}")
    lines.append("")
    lines.append("scratchpad sizing (MobileNetV3-Small activations):")
    lines.append(f"{'SRAM KiB':>10}{'DRAM traffic saved':>20}")
    for size, report in curve:
        lines.append(f"{size / 1024:>10.0f}{report.traffic_saving:>19.0%}")
    return "\n".join(lines)


def test_txt_memory_study(benchmark, report):
    rows = benchmark.pedantic(utilization_study, rounds=1, iterations=1)
    curve = hierarchy_study()
    report("txt_memory_study", render(rows, curve))

    plans = {name: plan for name, plan in rows}
    # 1. Deep CNNs waste most activation memory without planning: arena
    #    reuse is >= 5x on the MobileNets and >= 10x on ResNet50.
    assert plans["mobilenet_v3_small"].reuse_factor >= 5.0
    assert plans["mobilenet_v3_large"].reuse_factor >= 5.0
    assert plans["resnet50"].reuse_factor >= 10.0
    # 2. The greedy planner is near-optimal on these topologies.
    for name, plan in rows:
        assert plan.efficiency >= 0.5, name
        plan.validate()
    # 3. The hierarchy curve is monotone and saturates: a few MiB of SRAM
    #    absorbs all of MobileNetV3-Small's activation traffic.
    savings = [r.traffic_saving for _, r in curve]
    assert all(a <= b + 1e-9 for a, b in zip(savings, savings[1:]))
    assert savings[-1] == 1.0
    # 4. ...but 128 KiB is not enough — the knee is in between, which is
    #    exactly the design trade the paper's study targets.
    assert savings[0] < 0.9
