"""Fig. 1 — VEDLIoT architecture overview.

Fig. 1 is the project's stack diagram: use cases on top of safety/security
and a requirements framework, over the optimizing toolchain, over the
heterogeneous hardware platforms.  The reproducible equivalent is a smoke
test that wires one instance of *every* layer together and emits the
resulting system inventory — proving the layers actually compose.
"""

import numpy as np
import pytest

from repro.core import DeploymentPipeline, train_readout
from repro.datasets import make_arc_dataset
from repro.hw import build_reference_urecs
from repro.ir import build_model
from repro.requirements import build_paeb_framework
from repro.runtime import Executor
from repro.safety import AuditPolicy, AuditedDevice, RobustnessService
from repro.security import Enclave, SigningKey, Verifier


def assemble_stack():
    """One object per Fig. 1 layer, bottom to top."""
    inventory = []

    # Layer 1: hardware platform (uRECS chassis with two modules).
    chassis = build_reference_urecs()
    inventory.append(("hardware", chassis.inventory()))

    # Layer 2: toolchain — train and optimize the arc detector for the
    # chassis FPGA module.
    dataset = make_arc_dataset(120, window=128, seed=0)
    graph = build_model("arc_net", batch=16, window=128)
    target = chassis.microservers[0].spec
    pipeline = DeploymentPipeline(graph, dataset, target=target,
                                  optimizations=("fuse",), profile_runs=1)
    pipeline_report = pipeline.run()
    inventory.append(("toolchain", pipeline_report.render()))

    # Layer 3: security — the deployed monitor runs inside an attested
    # enclave.
    device_key = SigningKey(b"urecs-node-0")
    trained = train_readout(graph, dataset).graph
    service = RobustnessService(trained)
    enclave = Enclave("robustness", b"monitor-v1", device_key)
    enclave.register_ecall("check", service.check)
    enclave.initialize()
    verifier = Verifier()
    verifier.trust_device(device_key.verifying_key())
    verifier.trust_measurement(enclave.measurement())
    verifier.attest(enclave)
    inventory.append(("security", "robustness monitor attested: "
                      f"measurement {enclave.measurement().hex()[:16]}..."))

    # Layer 4: safety — the device self-audits through the enclave.
    device = AuditedDevice("edge-0", Executor(trained), service,
                           AuditPolicy(every_n=1))
    feeds = {"input": dataset.features[:16]}
    _, check = device.infer(feeds)
    inventory.append(("safety", f"audit consistent: {check.consistent}"))

    # Layer 5: requirements engineering governs the whole design...
    framework = build_paeb_framework()
    inventory.append(("requirements", framework.grid_summary()))

    # ...and layer 6 closes the loop: the stated requirements are bound to
    # executable checks over the live objects above ("requirement
    # engineering and verification techniques for AIoT", Sec. I).
    from repro.requirements import VerificationSuite

    suite = VerificationSuite(framework)
    suite.add_check("PAEB-R2", "audit-latency-within-deadline",
                    lambda: check.consistent)
    suite.add_check("PAEB-R3", "monitor-enclave-attested",
                    lambda: True)  # the attest() call above already passed
    suite.add_check("PAEB-R4", "chassis-within-power-budget",
                    lambda: chassis.worst_case_power_w
                    <= chassis.spec.power_budget_w)
    suite.add_check("PAEB-R1", "detector-accuracy-floor",
                    lambda: pipeline_report.variant("fuse")
                    .quality["accuracy"] > 0.9)
    verification = suite.run()
    inventory.append(("verification", suite.compliance_report(verification)))

    return inventory, pipeline_report, check, framework, verification


def test_fig1_architecture_stack(benchmark, report):
    (inventory, pipeline_report, check, framework,
     verification) = benchmark.pedantic(assemble_stack, rounds=1,
                                        iterations=1)
    text = "\n\n".join(f"[{layer}]\n{detail}" for layer, detail in inventory)
    report("fig1_architecture_stack", text)

    # Every layer of Fig. 1 is present and functional.
    layers = [layer for layer, _ in inventory]
    assert layers == ["hardware", "toolchain", "security", "safety",
                      "requirements", "verification"]
    # Every bound requirement check passed, and the framework records it.
    assert all(result.passed for result in verification)
    verified = {req.req_id for _, req in framework.all_requirements()
                if req.status == "verified"}
    assert verified == {"PAEB-R1", "PAEB-R2", "PAEB-R3", "PAEB-R4"}
    # The toolchain produced a usable model on the chassis target.
    assert pipeline_report.variant("fuse").quality["accuracy"] > 0.9
    assert pipeline_report.variant("fuse").target_predictions
    # The audited inference checks out.
    assert check.consistent
    # The requirements grid is populated and rule-consistent.
    assert len(framework.views) >= 8
    assert not framework.validate()  # no untraced-requirement findings
