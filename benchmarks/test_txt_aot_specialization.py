"""Txt-M — ahead-of-time specialization: warm starts and prepacked dispatch.

The paper's deployment flow does the compiler's work once, offline; the
runtime only ever loads the artifact (VEDLIoT Sec. III).  This benchmark
quantifies both halves of that bargain in our reproduction:

1. *plan build, cold vs. warm*: a cold start runs graph specialization,
   validation, shape inference, liveness analysis, weight prepacking, and
   persists the entry; a warm start hydrates the same plan from the
   on-disk cache (`repro.runtime.plan_cache`).  Both sides pay the
   content-hash lookup, so the delta is exactly the work the cache skips.
2. *steady-state quantized dispatch, packed vs. unpacked*: prepacking
   bakes the im2col weight reshape, the integer transpose, the
   requantization multipliers, and the zero-point row-sums into the plan;
   the unpacked plan recomputes them per call.

``REPRO_BENCH_SMOKE=1`` shrinks repeats for CI smoke jobs.  Results are
written to ``BENCH_pr3.json`` at the repo root; the assertions are the
CI guard — warm must beat cold, and packed must not lose to unpacked.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ir import build_model
from repro.optim import fuse_graph, quantize_int8
from repro.runtime import Executor, PlanCache, compile_plan, load_or_build

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 3 if SMOKE else 7
RUNS = 20 if SMOKE else 50

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr3.json"

BUILD_MODEL = "tiny_yolo"


def plan_build_study(cache_dir):
    """Best-of-``REPEATS`` cold (specialize+compile+store on a cleared
    cache) vs. warm (hydrate the persisted entry) ``load_or_build``."""
    graph = build_model(BUILD_MODEL, batch=1)
    cache = PlanCache(cache_dir)
    cold = warm = float("inf")
    for _ in range(REPEATS):
        cache.clear()
        start = time.perf_counter()
        model = load_or_build(graph, cache=cache)
        cold = min(cold, time.perf_counter() - start)
        assert not model.from_cache
        start = time.perf_counter()
        model = load_or_build(graph, cache=cache)
        warm = min(warm, time.perf_counter() - start)
        assert model.from_cache
    return {"model": BUILD_MODEL, "nodes": len(graph.nodes),
            "cold_ms": cold * 1e3, "warm_ms": warm * 1e3,
            "speedup": cold / warm}


def quantized_dispatch_study():
    """Steady-state arena execution of the QDQ graph: prepacked plan
    (weights in GEMM layout, requant plan and row-sums baked in) vs. the
    unpacked plan that redoes that work per call."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 3, 32, 32)).astype(np.float32)
    graph = quantize_int8(fuse_graph(build_model("tiny_convnet", batch=1)),
                          [{"input": x}])
    feeds = {"input": x}
    executors = [
        Executor(graph, plan=compile_plan(graph, prepack=True),
                 reuse_buffers=True),
        Executor(graph, plan=compile_plan(graph, prepack=False),
                 reuse_buffers=True),
    ]
    for executor in executors:          # warm caches and arenas
        executor.recycle(executor.run(feeds))
    best = [float("inf")] * len(executors)
    for _ in range(REPEATS):            # interleaved best-of, as in Txt-K
        for index, executor in enumerate(executors):
            start = time.perf_counter()
            for _ in range(RUNS):
                executor.recycle(executor.run(feeds))
            best[index] = min(best[index],
                              (time.perf_counter() - start) / RUNS)
    packed, unpacked = best
    return {"model": "tiny_convnet int8", "packed_us": packed * 1e6,
            "unpacked_us": unpacked * 1e6, "packed_fps": 1.0 / packed,
            "unpacked_fps": 1.0 / unpacked, "speedup": unpacked / packed}


def render(build, dispatch):
    return "\n".join([
        f"plan build ({build['model']}, {build['nodes']} nodes)",
        f"  cold (specialize+compile+store): {build['cold_ms']:>8.2f} ms",
        f"  warm (cache hydrate):            {build['warm_ms']:>8.2f} ms",
        f"  warm-start speedup:              {build['speedup']:>8.2f}x",
        f"quantized dispatch ({dispatch['model']}, arena steady state)",
        f"  prepacked: {dispatch['packed_us']:>10.1f} us/run "
        f"({dispatch['packed_fps']:.0f} fps)",
        f"  unpacked:  {dispatch['unpacked_us']:>10.1f} us/run "
        f"({dispatch['unpacked_fps']:.0f} fps)",
        f"  prepack speedup: {dispatch['speedup']:>6.2f}x",
    ])


def test_txt_aot_specialization(benchmark, report, tmp_path):
    def study():
        return plan_build_study(tmp_path / "plan-cache"), \
            quantized_dispatch_study()

    build, dispatch = benchmark.pedantic(study, rounds=1, iterations=1)
    report("txt_aot_specialization", render(build, dispatch))
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "txt_aot_specialization",
        "smoke": SMOKE,
        "plan_build": build,
        "quantized_dispatch": dispatch,
    }, indent=2) + "\n")

    # CI guard: the cache must actually save work — a warm start loads
    # the persisted entry instead of respecializing, and must be
    # measurably faster than the cold build it replaces.
    assert build["warm_ms"] < build["cold_ms"] * 0.9, build
    # Prepacked quantized dispatch bakes per-call weight work into the
    # plan; it must never lose to the unpacked path (noise margin only).
    assert dispatch["packed_us"] <= dispatch["unpacked_us"] * 1.05, dispatch
