"""Ablation — layer-wise model splitting between device and edge.

Sec. V-A asks for "the distribution of the deep learning models … between
different on-car systems and edge devices".  This ablation sweeps the full
strategy spectrum — all-on-device, every layer-wise cut, all-on-edge — for
two very different models, reproducing the Neurosurgeon-style result: as
bandwidth rises the best strategy traverses all-on-device -> mid split ->
all-on-edge, with the winning cuts landing at downsampling bottlenecks
(inverted-residual projections on MobileNetV3, the stride-8 CSP stage on
YoloV4) where int8 boundary activations undercut the raw input frame.
Where the cut lands — and whether splitting helps at all — depends on the
model and the live network state, which is why the decision engine must
evaluate the whole spectrum.
"""

import pytest

from repro.apps.automotive import ChannelSample, SplitOffloadStudy
from repro.hw import get_accelerator
from repro.ir import build_model

BANDWIDTHS_MBPS = (1, 4, 10, 50)


def sweep(study, deadline_s):
    rows = []
    for mbps in BANDWIDTHS_MBPS:
        channel = ChannelSample(float(mbps), 30.0, True)
        all_edge, all_oncar = study.endpoints(channel)
        best = study.best(channel, deadline_s=deadline_s)
        rows.append((mbps, all_edge, all_oncar, best))
    return rows


def render(rows, title):
    lines = [title,
             f"{'Mbps':>6}{'all-edge J':>12}{'all-dev J':>11}"
             f"{'best':>12}{'best J':>9}{'cut after':>24}{'KB':>6}"]
    for mbps, all_edge, all_oncar, best in rows:
        lines.append(f"{mbps:>6}{all_edge.oncar_energy_j:>12.3f}"
                     f"{all_oncar.oncar_energy_j:>11.3f}"
                     f"{best.kind:>12}{best.oncar_energy_j:>9.3f}"
                     f"{best.after_node:>24}"
                     f"{best.boundary_bytes // 1024:>6}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def mobilenet_study():
    detector = build_model("mobilenet_v3_large", image_size=224,
                           num_classes=1000)
    return SplitOffloadStudy(detector, get_accelerator("RPi-CM4"),
                             get_accelerator("XavierNX"),
                             activation_compression=4.0)


@pytest.fixture(scope="module")
def yolo_study(yolov4):
    return SplitOffloadStudy(yolov4, get_accelerator("JetsonTX2"),
                             get_accelerator("GTX1660"),
                             activation_compression=4.0)


def test_abl_model_splitting(benchmark, report, mobilenet_study, yolo_study):
    mobile_rows = benchmark.pedantic(sweep, args=(mobilenet_study, 5.0),
                                     rounds=1, iterations=1)
    yolo_rows = sweep(yolo_study, 1.0)
    report("abl_model_splitting",
           render(mobile_rows, "MobileNetV3-L, RPi-CM4 device -> XavierNX "
                  "edge (int8 boundary):")
           + "\n\n"
           + render(yolo_rows, "YoloV4-416, JetsonTX2 car -> GTX1660 edge "
                    "(int8 boundary):"))

    mobile = {mbps: best for mbps, _, _, best in mobile_rows}
    # 1. MobileNet regime: bad network -> on-device; moderate network ->
    #    a genuine mid split that beats BOTH endpoints on device energy.
    assert mobile[1].kind == "all-oncar"
    assert mobile[10].kind == "split"
    _, edge10, dev10, best10 = mobile_rows[BANDWIDTHS_MBPS.index(10)]
    assert best10.oncar_energy_j < edge10.oncar_energy_j
    assert best10.oncar_energy_j < dev10.oncar_energy_j
    # The winning cuts transmit far less than the input frame.
    assert mobile[10].boundary_bytes < edge10.boundary_bytes / 5

    yolo = {mbps: best for mbps, _, _, best in yolo_rows}
    # 2. YoloV4 traverses all three regimes as bandwidth rises: on-car at
    #    1-4 Mbps, a mid split at the stride-8 CSP bottleneck at 10 Mbps,
    #    full offload at 50 Mbps.
    assert yolo[1].kind == "all-oncar"
    assert yolo[4].kind == "all-oncar"
    assert yolo[10].kind == "split"
    _, edge_y, dev_y, best_y = yolo_rows[BANDWIDTHS_MBPS.index(10)]
    assert best_y.oncar_energy_j < min(edge_y.oncar_energy_j,
                                       dev_y.oncar_energy_j)
    assert yolo[50].kind == "all-edge"
