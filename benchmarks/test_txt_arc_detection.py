"""Txt-F — Arc detection: ultra-low FNR at very low first-spark latency.

Paper Sec. V-B: "detect unwanted arcs in DC power distribution cabinets …
A challenge is to guarantee a very low latency from the first spark till
inference, including sensing and pre-processing, and an ultra-low
false-negative error rate for a smooth operation."

This benchmark trains the detector, runs a large stream campaign on the
embedded target, and sweeps the k-of-n debounce (the DESIGN.md ablation
trading false positives against detection latency).
"""

import pytest

from repro.apps.industrial import ArcDetector, run_arc_campaign
from repro.core import train_readout
from repro.datasets import make_arc_dataset
from repro.hw import get_accelerator
from repro.ir import build_model

PROTECTION_DEADLINE_S = 0.010  # 10 ms breaker budget


@pytest.fixture(scope="module")
def arc_model():
    dataset = make_arc_dataset(250, window=128, seed=0)
    graph = build_model("arc_net", batch=16, window=128)
    return train_readout(graph, dataset).graph.with_batch(1)


def debounce_sweep(arc_model):
    rows = []
    for k_of_n in ((1, 1), (2, 3), (3, 4), (4, 5)):
        detector = ArcDetector(arc_model, k_of_n=k_of_n,
                               platform=get_accelerator("K210"))
        stats = run_arc_campaign(detector, num_streams=60, seed=1)
        rows.append((k_of_n, stats))
    return rows


def render(rows):
    lines = [f"protection deadline: {PROTECTION_DEADLINE_S * 1e3:.0f} ms "
             "(sensing 100 kHz, window 128, hop 32)",
             f"{'k-of-n':>8}{'FNR':>8}{'FPR':>8}{'mean ms':>9}"
             f"{'p99 ms':>8}"]
    for (k, n), stats in rows:
        lines.append(f"{f'{k}/{n}':>8}{stats.false_negative_rate:>8.3f}"
                     f"{stats.false_positive_rate:>8.3f}"
                     f"{stats.mean_latency_s * 1e3:>9.2f}"
                     f"{stats.p99_latency_s * 1e3:>8.2f}")
    return "\n".join(lines)


def test_txt_arc_detection(benchmark, report, arc_model):
    rows = benchmark.pedantic(debounce_sweep, args=(arc_model,),
                              rounds=1, iterations=1)
    report("txt_arc_detection", render(rows))

    stats_by_kn = {kn: stats for kn, stats in rows}
    # 1. The operating point (2-of-3) achieves ultra-low error rates.
    operating = stats_by_kn[(2, 3)]
    assert operating.false_negative_rate <= 0.04
    assert operating.false_positive_rate <= 0.04
    # 2. Detection latency is far below the protection deadline.
    assert operating.p99_latency_s < PROTECTION_DEADLINE_S
    # 3. The debounce ablation: more agreement -> never-worse FPR but
    #    monotonically later trips.
    latencies = [stats.mean_latency_s for _, stats in rows]
    assert all(a <= b + 1e-9 for a, b in zip(latencies, latencies[1:]))
    fprs = [stats.false_positive_rate for _, stats in rows]
    assert fprs[-1] <= fprs[0] + 1e-9


def test_txt_arc_embedded_energy(benchmark, report, arc_model):
    """The detector fits MCU-class silicon with microjoule inferences."""

    def measure():
        rows = []
        for platform in ("K210", "GAP8", "MAX78000"):
            detector = ArcDetector(arc_model,
                                   platform=get_accelerator(platform))
            rows.append((platform, detector.inference_latency_s,
                         detector.energy_per_inference_j))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [f"{'platform':<12}{'latency us':>12}{'energy uJ':>11}"]
    for platform, latency, energy in rows:
        lines.append(f"{platform:<12}{latency * 1e6:>12.1f}"
                     f"{energy * 1e6:>11.2f}")
    report("txt_arc_embedded_energy", "\n".join(lines))

    for platform, latency, energy in rows:
        # Inference adds negligible latency vs. the 0.32 ms hop period and
        # costs micro- to milli-joules.
        assert latency < 0.00032
        assert energy < 1e-3
