"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark regenerates one figure or quantitative claim of the paper
(see DESIGN.md's per-experiment index).  Besides pytest-benchmark timings,
every benchmark writes its table to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference reproducible artifacts.
"""

from pathlib import Path

import pytest

from repro.ir import build_model

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Write a named result table; also echo it to stdout."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _write


@pytest.fixture(scope="session")
def yolov4():
    """YoloV4 at 416 px, built once per session (the Fig. 4 workload)."""
    return build_model("yolov4", image_size=416)


@pytest.fixture(scope="session")
def resnet50():
    return build_model("resnet50")


@pytest.fixture(scope="session")
def mobilenet_v3():
    return build_model("mobilenet_v3_large")
