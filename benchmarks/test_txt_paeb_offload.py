"""Txt-E — PAEB: distributing detection between car and edge.

Paper Sec. V-A: "The major development goals are the distribution of the
deep learning models and the decision making between different on-car
systems and edge devices at varying speeds and reliability of mobile
networks … The overall goal is to optimize the energy efficiency in total
and minimize the on-car energy consumption."

This benchmark sweeps vehicle speed and network quality with the YoloV4
detector (TX2 on-car, GTX1660 edge station) and regenerates the offload
decision surface: offload fraction, on-car energy saving, and deadline
behaviour.  The hysteresis ablation from DESIGN.md is included.
"""

import numpy as np
import pytest

from repro.apps.automotive import (
    MobileNetwork,
    PaebSimulation,
    braking_deadline_s,
    default_paeb_setup,
)

SPEEDS = (30, 50, 70, 90, 110)
FRAMES = 40


def sweep_speeds(detector, outage_probability=0.01, seed=0):
    rows = []
    for speed in SPEEDS:
        engine, network = default_paeb_setup(detector, seed=seed)
        network.outage_probability = outage_probability
        stats = PaebSimulation(engine, network).run([float(speed)] * FRAMES)
        rows.append((speed, braking_deadline_s(speed), stats))
    return rows


def render(rows, title):
    lines = [title,
             f"{'km/h':>6}{'deadline ms':>13}{'offload':>9}{'saving':>9}"
             f"{'misses':>8}{'onboard J':>11}"]
    for speed, deadline, stats in rows:
        lines.append(f"{speed:>6}{deadline * 1e3:>13.0f}"
                     f"{stats.offload_fraction:>9.2f}"
                     f"{stats.oncar_energy_saving:>9.2f}"
                     f"{stats.deadline_misses:>8}"
                     f"{stats.oncar_energy_j:>11.2f}")
    return "\n".join(lines)


def test_txt_paeb_offload(benchmark, report, yolov4):
    rows = benchmark.pedantic(sweep_speeds, args=(yolov4,),
                              rounds=1, iterations=1)
    bad_rows = sweep_speeds(yolov4, outage_probability=0.5, seed=1)
    text = render(rows, "reliable network (1% outage):") + "\n\n" + \
        render(bad_rows, "unreliable network (50% outage):")
    report("txt_paeb_offload", text)

    by_speed = {row[0]: row[2] for row in rows}
    # 1. At city/highway speeds with a good network, the decision engine
    #    offloads nearly everything and slashes on-car energy.
    assert by_speed[50].offload_fraction > 0.9
    assert by_speed[50].oncar_energy_saving > 0.8
    assert by_speed[50].deadline_misses == 0
    # 2. The offload fraction is non-increasing in speed (network degrades
    #    and the braking deadline tightens) and collapses at the extreme.
    fractions = [row[2].offload_fraction for row in rows]
    assert all(a >= b - 0.10 for a, b in zip(fractions, fractions[1:]))
    assert by_speed[110].offload_fraction == 0.0
    # 3. Unreliable networks push the decision back on-car at every speed.
    for (speed, _, good), (_, _, bad) in zip(rows, bad_rows):
        assert bad.offload_fraction <= good.offload_fraction + 1e-9
    # 4. On-car inference (264 ms on TX2) cannot meet the deadline at
    #    110+ km/h — the physical limit the paper's distribution targets.
    assert by_speed[110].deadline_misses == FRAMES


def test_txt_paeb_hysteresis_ablation(benchmark, report, yolov4):
    """DESIGN.md ablation: decision hysteresis suppresses placement
    flapping on a noisy channel without giving up the energy win."""

    def run(hysteresis, seed=3):
        engine, network = default_paeb_setup(yolov4, seed=seed,
                                             hysteresis=hysteresis)
        engine.min_reliability = 0.5
        rng = np.random.default_rng(0)
        profile = 70 + 25 * rng.random(100)
        return PaebSimulation(engine, network).run(profile)

    def ablate():
        return {h: run(h) for h in (0.0, 0.25, 0.5)}

    results = benchmark.pedantic(ablate, rounds=1, iterations=1)
    lines = [f"{'hysteresis':>11}{'switches':>10}{'offload':>9}"
             f"{'saving':>9}"]
    for h, stats in results.items():
        lines.append(f"{h:>11.2f}{stats.switches:>10}"
                     f"{stats.offload_fraction:>9.2f}"
                     f"{stats.oncar_energy_saving:>9.2f}")
    report("txt_paeb_hysteresis", "\n".join(lines))

    assert results[0.5].switches <= results[0.0].switches
    # The energy win survives hysteresis (within a few points).
    assert results[0.5].oncar_energy_saving >= \
        results[0.0].oncar_energy_saving - 0.1
