"""Txt-L — throughput scaling from batching and plan-pool workers.

The paper's batch-size study shows throughput climbing with batch size
until the accelerator saturates; this benchmark reproduces that lever on
the host runtime and verifies the serving layer captures it online:

1. *Executor-level batch scaling*: one arena-backed executor per batch
   size, steady-state (zero-allocation) runs; batch 8 must beat batch 1
   by >= 1.5x on at least one zoo model (dispatch overhead and GEMM
   shape amortization).
2. *Serving-engine worker scaling*: a closed-loop serve-bench sweep of
   the plan-worker pool.  numpy only overlaps workers inside
   GIL-releasing BLAS calls, so strict > 1x scaling is asserted only on
   multi-core hosts; single-core hosts assert a no-collapse floor.
3. *Allocation-free steady state*: after warmup, timed executor runs
   perform zero scratch-arena allocations (and in particular zero large
   ones), asserted via the arena's stats counters.

``REPRO_BENCH_SMOKE=1`` shrinks runs/requests for CI smoke jobs.
"""

import os
import time

import numpy as np
import pytest

from repro.ir import build_model
from repro.runtime import Executor
from repro.serving import run_bench, sample_feeds
from repro.serving.bench import render as render_bench

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
RUNS = 6 if SMOKE else 20
REPEATS = 2 if SMOKE else 4
REQUESTS = 24 if SMOKE else 96
MODELS = ("mlp", "arc_net", "motor_net", "tiny_convnet")
BATCHES = (1, 8)


def _steady_throughput(graph, batch, runs=RUNS, repeats=REPEATS):
    """Best-of samples/s of arena-backed steady-state runs, plus the
    arena's allocation counters over the timed section."""
    batched = graph.with_batch(batch)
    single = sample_feeds(graph)
    feeds = {name: np.concatenate([array] * batch, axis=0) if batch > 1
             else array for name, array in single.items()}
    executor = Executor(batched, reuse_buffers=True)
    executor.recycle(executor.run(feeds))                   # warmup
    arena = executor.plan.arena
    baseline = arena.stats.snapshot()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(runs):
            executor.recycle(executor.run(feeds))
        best = min(best, (time.perf_counter() - start) / runs)
    stats = arena.stats
    return (batch / best,
            stats.allocations - baseline.allocations,
            stats.large_allocations - baseline.large_allocations,
            stats.reuses - baseline.reuses)


def batch_scaling_study():
    rows = []
    for name in MODELS:
        graph = build_model(name)
        per_batch = {}
        for batch in BATCHES:
            fps, allocs, large, reuses = _steady_throughput(graph, batch)
            per_batch[batch] = (fps, allocs, large, reuses)
        rows.append((name, per_batch))
    return rows


def render_scaling(rows):
    lines = [f"{'model':<16}{'batch':>6}{'samples/s':>12}{'speedup':>9}"
             f"{'allocs':>8}{'large':>7}{'reuses':>8}"]
    for name, per_batch in rows:
        base = per_batch[BATCHES[0]][0]
        for batch in BATCHES:
            fps, allocs, large, reuses = per_batch[batch]
            lines.append(f"{name:<16}{batch:>6}{fps:>12.1f}"
                         f"{fps / base:>8.2f}x{allocs:>8}{large:>7}"
                         f"{reuses:>8}")
    return "\n".join(lines)


def test_txt_batch_scaling(benchmark, report):
    rows = benchmark.pedantic(batch_scaling_study, rounds=1, iterations=1)

    # Worker-pool sweep over the serving engine (closed loop).
    graph = build_model("tiny_convnet")
    sweep = run_bench(graph, configs=[(1, 1), (1, 8), (4, 8)],
                      requests=REQUESTS, warmup=8)
    report("txt_batch_scaling",
           render_scaling(rows) + "\n\n" +
           render_bench(sweep, name="tiny_convnet serve-bench") +
           f"\n(host cpu_count={os.cpu_count()}, smoke={SMOKE})")

    # 1. Batching captures >= 1.5x on at least one model.
    speedups = {name: per_batch[8][0] / per_batch[1][0]
                for name, per_batch in rows}
    assert max(speedups.values()) >= 1.5, speedups
    # 2. Steady state is allocation-free: the timed runs performed no
    #    arena allocations at all — large or small — on any model/batch.
    for name, per_batch in rows:
        for batch, (fps, allocs, large, reuses) in per_batch.items():
            assert allocs == 0, (name, batch, allocs)
            assert large == 0, (name, batch, large)
            assert reuses > 0, (name, batch)
    # 3. Micro-batching wins end-to-end through the serving engine too.
    by_config = {(r.workers, r.max_batch): r for r in sweep}
    assert (by_config[(1, 8)].throughput_rps
            > by_config[(1, 1)].throughput_rps)
    # 4. Worker-pool scaling: strict on multi-core hosts; on a single
    #    core the GIL serializes workers, so only assert no collapse.
    pool_ratio = (by_config[(4, 8)].throughput_rps
                  / by_config[(1, 8)].throughput_rps)
    if (os.cpu_count() or 1) >= 2:
        assert pool_ratio > 1.0, pool_ratio
    else:
        assert pool_ratio > 0.5, pool_ratio
