"""Txt-D — RISC-V PMP: secure execution via physical memory protection.

Paper Sec. IV-C: the VexRiscv PMP unit "enables secure processing by
limiting the physical addresses accessible by software … the PMP
configurations can efficiently ensure the secure execution of software in
M-mode and U-mode."

This benchmark runs an attack matrix on the simulated SoC: U-mode code
attempts reads/writes/jumps across a PMP policy, and locked entries bind
even M-mode.  It also measures the simulation-time cost of PMP checking
(the "efficiently" half of the claim in our functional model).
"""

import time

import pytest

from repro.security.pmp import PMP_R, PMP_W, PMP_X, PmpUnit
from repro.simulator import (
    CAUSE_ECALL_FROM_U,
    CAUSE_INSTRUCTION_ACCESS_FAULT,
    CAUSE_LOAD_ACCESS_FAULT,
    CAUSE_STORE_ACCESS_FAULT,
    Machine,
    RAM_BASE,
    halt_with,
)

CODE = (RAM_BASE, 0x1000, PMP_R | PMP_X)        # user text: read/exec
DATA = (RAM_BASE + 0x1000, 0x1000, PMP_R | PMP_W)  # user data: read/write
SECRET = RAM_BASE + 0x8000                       # M-mode only


def build_machine(user_body):
    pmp = PmpUnit()
    machine = Machine(pmp=pmp)
    for index, (base, size, perms) in enumerate((CODE, DATA)):
        pmp.set_region(index, base, size, perms)
    machine.load_assembly(f"""
        la   t0, trap
        csrw mtvec, t0
        li   t0, {SECRET}
        li   t1, 0x5EC12E7
        sw   t1, 0(t0)        # M-mode plants a secret outside U regions
        la   t0, user
        csrw mepc, t0
        mret
    user:
        {user_body}
    hang:
        j hang
    trap:
    """ + halt_with(1))
    return machine, pmp


ATTACKS = [
    ("read secret", f"li a0, {SECRET}\nlw a1, 0(a0)",
     CAUSE_LOAD_ACCESS_FAULT),
    ("write secret", f"li a0, {SECRET}\nsw a0, 0(a0)",
     CAUSE_STORE_ACCESS_FAULT),
    ("write own code", f"li a0, {RAM_BASE}\nsw a0, 0(a0)",
     CAUSE_STORE_ACCESS_FAULT),
    ("jump outside text", f"li a0, {RAM_BASE + 0x4000}\njr a0",
     CAUSE_INSTRUCTION_ACCESS_FAULT),
    ("reach MMIO", "li a0, 0x10000000\nsb a0, 0(a0)",
     CAUSE_STORE_ACCESS_FAULT),
]


def run_attack_matrix():
    rows = []
    for name, body, expected_cause in ATTACKS:
        machine, pmp = build_machine(body)
        result = machine.run(max_steps=500)
        rows.append((name, machine.cpu.last_trap_cause, expected_cause,
                     pmp.denied_count, result.exit_code))
    # Legitimate U-mode work inside its windows proceeds untouched.
    machine, pmp = build_machine(f"""
        li   a0, {DATA[0]}
        li   a1, 1234
        sw   a1, 0(a0)
        lw   a2, 0(a0)
        ecall
    """)
    result = machine.run(max_steps=500)
    legit = (machine.cpu.last_trap_cause, pmp.denied_count,
             machine.read_word(DATA[0]))
    return rows, legit


def render(rows, legit):
    lines = [f"{'attack':<22}{'trap cause':>11}{'expected':>10}"
             f"{'denials':>9}{'contained':>11}"]
    for name, cause, expected, denials, exit_code in rows:
        contained = cause == expected and exit_code == 1
        lines.append(f"{name:<22}{cause:>11}{expected:>10}{denials:>9}"
                     f"{str(contained):>11}")
    lines.append("")
    lines.append(f"legitimate U-mode workload: trap cause {legit[0]} "
                 f"(ecall), PMP denials {legit[1]}, "
                 f"data word 0x{legit[2]:x}")
    return "\n".join(lines)


def test_txt_pmp_isolation(benchmark, report):
    rows, legit = benchmark.pedantic(run_attack_matrix, rounds=1,
                                     iterations=1)
    report("txt_pmp_isolation", render(rows, legit))

    # Every attack trapped with the right cause and reached the handler.
    for name, cause, expected, denials, exit_code in rows:
        assert cause == expected, name
        assert denials >= 1, name
        assert exit_code == 1, name
    # Legitimate accesses inside granted windows saw zero denials.
    cause, denials, word = legit
    assert cause == CAUSE_ECALL_FROM_U
    assert denials == 0
    assert word == 1234


def test_txt_pmp_check_cost(benchmark, report):
    """Simulation cost of PMP checking: a guarded machine runs the same
    loop as an unguarded one; the check overhead stays within a small
    factor (the functional-model analogue of 'highly optimized')."""
    loop = """
        li   a0, 2000
    loop:
        addi a0, a0, -1
        bnez a0, loop
    """ + halt_with(0)

    def run_pair():
        plain = Machine()
        plain.load_assembly(loop)
        start = time.perf_counter()
        plain.run(max_steps=50_000)
        plain_s = time.perf_counter() - start

        pmp = PmpUnit()
        pmp.set_region(0, RAM_BASE, 1 << 20, PMP_R | PMP_W | PMP_X)
        guarded = Machine(pmp=pmp)
        guarded.load_assembly(loop)
        start = time.perf_counter()
        guarded.run(max_steps=50_000)
        guarded_s = time.perf_counter() - start
        return plain_s, guarded_s

    plain_s, guarded_s = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    factor = guarded_s / plain_s
    report("txt_pmp_check_cost",
           f"plain machine: {plain_s * 1e3:.1f} ms\n"
           f"PMP-guarded:  {guarded_s * 1e3:.1f} ms\n"
           f"overhead factor: {factor:.2f}x")
    assert factor < 10.0
