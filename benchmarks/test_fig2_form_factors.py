"""Fig. 2 — Computer-On-Module form factors supported by the platforms.

The figure arranges COM standards by footprint against the compute-
performance range they serve, from credit-card modules to COM-HPC Server.
This benchmark regenerates the catalog table and checks the figure's
ordering claims, plus the chassis/form-factor compatibility matrix that
realizes "covering the complete range from embedded via edge to cloud".
"""

import pytest

from repro.hw import (
    ALL_CHASSIS,
    PerformanceClass,
    form_factors,
    get_form_factor,
)

_CLASS_ORDER = {
    PerformanceClass.EMBEDDED: 0,
    PerformanceClass.LOW_POWER: 1,
    PerformanceClass.MID_RANGE: 2,
    PerformanceClass.HIGH_END: 3,
}


def build_fig2_table():
    rows = []
    for ff in form_factors():
        rows.append((ff.name, ff.width_mm, ff.height_mm, ff.area_mm2,
                     ff.max_power_w, ff.performance_class,
                     [a.value for a in ff.architectures]))
    return rows


def render(rows):
    lines = [f"{'form factor':<22}{'size mm':>12}{'area':>8}{'max W':>7}"
             f"{'class':<12} architectures"]
    for name, w, h, area, power, perf, archs in rows:
        lines.append(f"{name:<22}{f'{w:.0f}x{h:.0f}':>12}{area:>8.0f}"
                     f"{power:>7.0f} {perf.value:<12}{', '.join(archs)}")
    lines.append("")
    lines.append("chassis compatibility:")
    for chassis in ALL_CHASSIS:
        lines.append(f"  {chassis.name:<10} ({chassis.target}): "
                     + ", ".join(chassis.accepted_form_factors))
    return "\n".join(lines)


def test_fig2_form_factors(benchmark, report):
    rows = benchmark(build_fig2_table)
    report("fig2_form_factors", render(rows))

    # 1. Footprint correlates with performance class (Fig. 2's diagonal):
    #    the mean area grows monotonically across classes.
    by_class = {}
    for row in rows:
        by_class.setdefault(row[5], []).append(row[3])
    means = [sum(v) / len(v) for _, v in
             sorted(by_class.items(), key=lambda kv: _CLASS_ORDER[kv[0]])]
    assert all(a < b for a, b in zip(means, means[1:]))

    # 2. Power envelopes grow with class.
    powers = {perf: max(row[4] for row in rows if row[5] is perf)
              for perf in by_class}
    assert powers[PerformanceClass.EMBEDDED] < \
        powers[PerformanceClass.HIGH_END]

    # 3. SMARC carries x86, ARM, and FPGA SoCs (the figure's callout).
    smarc = get_form_factor("SMARC")
    assert len(smarc.architectures) >= 3

    # 4. Each chassis tier accepts a disjoint power class of modules:
    #    uRECS only embedded form factors, RECS|Box only COM Express.
    urecs = next(c for c in ALL_CHASSIS if c.name == "uRECS")
    for name in urecs.accepted_form_factors:
        assert get_form_factor(name).performance_class is \
            PerformanceClass.EMBEDDED
    recs_box = next(c for c in ALL_CHASSIS if c.name == "RECS|Box")
    assert all("COM-Express" in name
               for name in recs_box.accepted_form_factors)
