"""Txt-N — thread scaling: dependency-scheduled parallel plan execution.

VEDLIoT's heterogeneous platforms expose multiple CPU cores even on the
embedded form factors (Sec. IV); leaving a graph's independent branches
to run one-at-a-time wastes them.  This benchmark measures what the
dependency-counted scheduler and batch-row sharding buy on the host:

1. *wide-branch graph*: ``wide_branch_net`` has ``branches`` independent
   conv arms off a shared stem — the scheduler's best case for inter-op
   parallelism, plus batch sharding inside each wide conv step.
2. *large-batch convnet*: a single-chain ``tiny_convnet`` at batch 32 —
   no graph width at all, so every win must come from intra-op row
   sharding of the conv steps.

Each workload runs at 1, 2, 4, and 8 threads on the shared worker pool,
interleaved best-of timing, with a bitwise-identity check against the
sequential executor on every configuration (the scheduler's hard bar:
parallelism may change *when* steps run, never a single output bit).

``REPRO_BENCH_SMOKE=1`` shrinks repeats for CI smoke jobs.  Results are
written to ``BENCH_pr4.json`` at the repo root.  The CI speedup guard
(>= 1.5x at 4 threads on the wide-branch workload) only arms on hosts
with at least 4 CPUs — on smaller runners the numbers are recorded but
cannot show scaling.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ir import build_model
from repro.runtime import Executor

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPEATS = 3 if SMOKE else 5
RUNS = 5 if SMOKE else 15

THREADS = (1, 2, 4, 8)
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr4.json"


def reference_feeds(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {
        spec.name: rng.normal(size=spec.shape)
        .astype(spec.dtype.to_numpy())
        for spec in graph.inputs
    }


def thread_sweep(graph):
    """Time ``graph`` at each thread count (interleaved best-of) and
    verify every parallel run is bitwise-identical to sequential."""
    feeds = reference_feeds(graph)
    want = Executor(graph).run(feeds)
    executors = [Executor(graph, reuse_buffers=True, num_threads=n)
                 for n in THREADS]
    for executor in executors:          # warm arenas; check correctness
        got = executor.run(feeds)
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])
        executor.recycle(got)
    best = [float("inf")] * len(executors)
    for _ in range(REPEATS):
        for index, executor in enumerate(executors):
            start = time.perf_counter()
            for _ in range(RUNS):
                executor.recycle(executor.run(feeds))
            best[index] = min(best[index],
                              (time.perf_counter() - start) / RUNS)
    plan = executors[0].plan
    return {
        "nodes": len(graph.nodes),
        "schedule_depth": plan.schedule.depth,
        "schedule_max_width": plan.schedule.max_width,
        "sharded_steps": sum(1 for s in plan.steps if s.shard is not None),
        "threads": {str(n): {"ms": t * 1e3, "speedup": best[0] / t}
                    for n, t in zip(THREADS, best)},
    }


def render(results):
    lines = []
    for name, row in results.items():
        lines.append(
            f"{name} ({row['nodes']} nodes, depth {row['schedule_depth']}, "
            f"width {row['schedule_max_width']}, "
            f"{row['sharded_steps']} sharded steps)")
        for threads, timing in row["threads"].items():
            lines.append(f"  {threads:>2} threads: {timing['ms']:>8.2f} ms "
                         f"({timing['speedup']:.2f}x)")
    lines.append(f"host cpus: {os.cpu_count()}")
    return "\n".join(lines)


def test_txt_thread_scaling(benchmark, report):
    workloads = {
        "wide_branch_net b8": build_model("wide_branch_net", batch=8,
                                          branches=4),
        "tiny_convnet b32": build_model("tiny_convnet", batch=32),
    }

    def study():
        return {name: thread_sweep(graph)
                for name, graph in workloads.items()}

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    report("txt_thread_scaling", render(results))
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "txt_thread_scaling",
        "smoke": SMOKE,
        "cpus": os.cpu_count(),
        "workloads": results,
    }, indent=2) + "\n")

    # Bitwise identity already asserted inside thread_sweep for every
    # configuration.  The scaling guard needs real cores to mean
    # anything: on >= 4-CPU hosts (the CI runner class), 4 threads must
    # beat sequential by >= 1.5x on the wide-branch workload.
    wide = results["wide_branch_net b8"]
    assert wide["schedule_max_width"] >= 4
    assert wide["sharded_steps"] > 0
    if (os.cpu_count() or 1) >= 4:
        speedup = wide["threads"]["4"]["speedup"]
        assert speedup >= 1.5, (
            f"4-thread speedup {speedup:.2f}x < 1.5x on "
            f"{os.cpu_count()}-cpu host")
