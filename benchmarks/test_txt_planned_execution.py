"""Txt-K — dispatch overhead of planned vs. interpreted execution.

The toolchain compiles a model once and runs it many times (paper
Sec. III); the runtime therefore binds every node's kernel, attributes
and quantization parameters a single time (``repro.runtime.plan``) and
executes a thin loop over the bound steps.  This benchmark quantifies
what that buys over the seed interpreter, which re-resolved attrs,
dtypes and quantization parameters on every run.

Two workloads over the small CNN the use-case pipelines deploy:

1. *fp32*: dispatch overhead is attr lookups and closure construction;
2. *int8* (QDQ): the interpreter additionally rebuilds ``QuantParams``
   (array coercion + validation) per quantized node per run — the
   pathological case the compile-once split removes.
"""

import time

import numpy as np
import pytest

from repro.ir import build_model
from repro.optim import fuse_graph, quantize_int8
from repro.runtime import Executor, compile_node

RUNS = 30
REPEATS = 5


def make_workloads():
    rng = np.random.default_rng(0)
    fp32 = build_model("tiny_convnet", batch=1)
    x = rng.normal(size=(1, 3, 32, 32)).astype(np.float32)
    int8 = quantize_int8(fuse_graph(fp32), [{"input": x}])
    return [("tiny_convnet fp32", fp32, {"input": x}),
            ("tiny_convnet int8", int8, {"input": x})]


def interpret_run(executor, graph, specs, feeds):
    """The seed interpreter's cost model: per-run feed validation, then
    re-resolving every node's kernel from its attrs."""
    env = executor._check_feeds(feeds)
    env.update(graph.initializers)
    for node in graph.nodes:
        args = [env[name] for name in node.inputs]
        outputs = compile_node(node, specs)(args)
        for name, value in zip(node.outputs, outputs):
            env[name] = value
    return {name: env[name] for name in graph.output_names}


def _best_of_interleaved(fns, repeats=REPEATS, runs=RUNS):
    """Time each callable as best-of-``repeats`` mean over ``runs`` calls,
    alternating between them every round so frequency scaling and cache
    warmth bias neither side."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            for _ in range(runs):
                fn()
            best[i] = min(best[i], (time.perf_counter() - start) / runs)
    return best


def dispatch_study():
    rows = []
    for label, graph, feeds in make_workloads():
        executor = Executor(graph)
        specs = graph.infer_specs()
        executor.run(feeds)                   # warm caches
        interpret_run(executor, graph, specs, feeds)
        planned, interpreted = _best_of_interleaved([
            lambda: executor.run(feeds),
            lambda: interpret_run(executor, graph, specs, feeds),
        ])
        rows.append((label, len(graph.nodes), planned, interpreted))
    return rows


def render(rows):
    lines = [f"{'workload':<22}{'nodes':>7}{'planned us':>12}"
             f"{'interp us':>12}{'speedup':>9}"]
    for label, nodes, planned, interpreted in rows:
        lines.append(f"{label:<22}{nodes:>7}{planned * 1e6:>12.1f}"
                     f"{interpreted * 1e6:>12.1f}"
                     f"{interpreted / planned:>8.2f}x")
    return "\n".join(lines)


def test_txt_planned_execution(benchmark, report):
    rows = benchmark.pedantic(dispatch_study, rounds=1, iterations=1)
    report("txt_planned_execution", render(rows))

    results = {label: (planned, interpreted)
               for label, _, planned, interpreted in rows}
    # 1. Planned execution never loses to per-run dispatch (small noise
    #    margin: kernels dominate the fp32 graph).
    for label, (planned, interpreted) in results.items():
        assert planned <= interpreted * 1.10, label
    # 2. On the quantized graph the per-run QuantParams rebuild is pure
    #    overhead; compiling it away must win outright.
    planned, interpreted = results["tiny_convnet int8"]
    assert planned < interpreted
