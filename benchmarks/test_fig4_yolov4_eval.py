"""Fig. 4 — YoloV4 performance evaluation of DL accelerators.

The paper measures YoloV4 throughput (GOPS) and power (W) on ten platforms
(x86 CPUs, a desktop GPU, Jetson eGPUs including two Xavier AGX power
modes, two Zynq FPGAs, and the Myriad VPU) at batch sizes 1/4/8, each at
its vendor-recommended precision.

This benchmark regenerates the full table from the roofline model and
asserts the figure's qualitative shape.
"""

import pytest

from repro.hw import FIG4_PLATFORMS, RooflineModel, resolve_platform

BATCHES = (1, 4, 8)


def evaluate_platforms(graph):
    table = {}
    for name in FIG4_PLATFORMS:
        model = RooflineModel(resolve_platform(name))
        table[name] = model.sweep_batches(graph, batches=BATCHES)
    return table


def render(table):
    lines = [f"{'platform':<16}{'dtype':<6}"
             + "".join(f"{f'B{b} GOPS':>10}" for b in BATCHES)
             + "".join(f"{f'B{b} W':>8}" for b in BATCHES)
             + f"{'fps@B1':>8}"]
    for name, preds in table.items():
        row = f"{name:<16}{preds[0].dtype.value:<6}"
        row += "".join(f"{p.throughput_gops:>10.0f}" for p in preds)
        row += "".join(f"{p.avg_power_w:>8.1f}" for p in preds)
        row += f"{preds[0].fps:>8.2f}"
        lines.append(row)
    return "\n".join(lines)


def test_fig4_yolov4_eval(benchmark, report, yolov4):
    table = benchmark.pedantic(evaluate_platforms, args=(yolov4,),
                               rounds=1, iterations=1)
    report("fig4_yolov4_eval", render(table))

    b8 = {name: preds[2] for name, preds in table.items()}
    b1 = {name: preds[0] for name, preds in table.items()}

    # 1. The desktop GPU leads in absolute throughput and absolute power
    #    (among accelerators; the 100 W server CPU draws more than eGPUs).
    top = max(b8, key=lambda n: b8[n].throughput_gops)
    assert top == "GTX1660"
    # 2. eGPU ordering: AGX MAXN > NX > TX2; AGX 10 W mode below MAXN.
    assert b8["XavierAGX"].throughput_gops > b8["XavierNX"].throughput_gops \
        > b8["JetsonTX2"].throughput_gops
    assert b8["XavierAGX:10W"].throughput_gops < \
        b8["XavierAGX"].throughput_gops
    assert b1["XavierAGX:10W"].avg_power_w < b1["XavierAGX"].avg_power_w
    # 3. FPGAs: the big ZU15 clearly beats the small ZU3.
    assert b8["ZynqZU15"].throughput_gops > 2 * b8["ZynqZU3"].throughput_gops
    # 4. The VPU is the lowest-power platform.
    lowest_power = min(b1, key=lambda n: b1[n].avg_power_w)
    assert lowest_power == "Myriad"
    # 5. Batch scaling: GPUs gain strongly from B1 to B8, CPUs barely.
    for gpu in ("GTX1660", "XavierAGX", "XavierNX"):
        assert b8[gpu].throughput_gops > 1.8 * b1[gpu].throughput_gops
    for cpu in ("Epyc3451", "D1577"):
        assert b8[cpu].throughput_gops < 1.15 * b1[cpu].throughput_gops
    # 6. Power grows sublinearly with batch everywhere.
    for name in table:
        assert b8[name].avg_power_w < 1.5 * b1[name].avg_power_w
    # 7. CPUs sit at the bottom of the per-watt ranking.
    eff = {n: p.efficiency_gops_per_w for n, p in b8.items()}
    cpu_eff = max(eff["Epyc3451"], eff["D1577"])
    for accel in ("GTX1660", "XavierAGX", "XavierNX", "ZynqZU15", "Myriad"):
        assert eff[accel] > cpu_eff


def test_fig4_precision_selection(benchmark, yolov4, report):
    """Platforms run at their vendor-recommended precision (Sec. II-C)."""
    from repro.ir.tensor import DType

    table = benchmark.pedantic(evaluate_platforms, args=(yolov4,),
                               rounds=1, iterations=1)
    expected = {
        "Epyc3451": DType.INT8, "D1577": DType.INT8,
        "GTX1660": DType.INT8, "XavierAGX": DType.INT8,
        "XavierNX": DType.INT8, "JetsonTX2": DType.FP16,
        "ZynqZU15": DType.INT8, "ZynqZU3": DType.INT8,
        "Myriad": DType.FP16,
    }
    for name, dtype in expected.items():
        assert table[name][0].dtype is dtype, name
