"""Txt-C — Twine: database workload inside an SGX enclave via WebAssembly.

Paper Sec. IV-C: "An evaluation shows that SQLite can be fully executed
inside an SGX enclave via WebAssembly and existing system interface, with
small performance overheads [17]."

Substitution (DESIGN.md): the database workload is an open-addressing
key-value store implemented in the Wasm subset; the native baseline is the
same algorithm over a host bytearray.  Three configurations are measured:

  native            host implementation,
  wasm              sandboxed in the Wasm VM,
  wasm + enclave    sandboxed VM inside the enclave (ECALL per operation,
                    modeled SGX transition costs added).

The paper-shape claim: the workload runs *fully inside* the enclave and is
*correct*, with sandboxing costing a small integer factor and the enclave
adding a modest increment on top.
"""

import pytest

from repro.security import Instance, SigningKey, TrustedWasmRuntime, Verifier
from repro.security.workloads import (
    NativeKvStore,
    WasmKvAdapter,
    build_kv_module,
    run_kv_workload,
)

NUM_KEYS = 300
CAPACITY_POW2 = 11


def run_all_backends():
    native = run_kv_workload(NativeKvStore(CAPACITY_POW2), num_keys=NUM_KEYS)

    instance = Instance(build_kv_module(CAPACITY_POW2))
    wasm = run_kv_workload(WasmKvAdapter(instance), num_keys=NUM_KEYS)

    runtime = TrustedWasmRuntime(build_kv_module(CAPACITY_POW2),
                                 SigningKey(b"twine-node"))
    tee = run_kv_workload(WasmKvAdapter(runtime), num_keys=NUM_KEYS)
    # Charge the modeled SGX transition time on top of the measured wall
    # time (our host has no enclave hardware; DESIGN.md substitution).
    tee_total = tee.wall_seconds + runtime.modeled_overhead_seconds()
    return native, wasm, tee, tee_total, runtime


def render(native, wasm, tee, tee_total, runtime):
    lines = [f"workload: {native.operations} KV operations "
             f"({NUM_KEYS} keys, put/get/delete mix)",
             f"{'configuration':<18}{'seconds':>10}{'factor':>9}"]
    rows = [
        ("native", native.wall_seconds),
        ("wasm", wasm.wall_seconds),
        ("wasm + enclave", tee_total),
    ]
    for name, seconds in rows:
        lines.append(f"{name:<18}{seconds:>10.4f}"
                     f"{seconds / native.wall_seconds:>9.2f}x")
    lines.append("")
    lines.append(f"enclave transitions: {runtime.stats.ecalls} ECALLs, "
                 f"{runtime.stats.ocalls} OCALLs, "
                 f"{runtime.stats.page_faults} EPC page faults")
    lines.append(f"modeled transition overhead: "
                 f"{runtime.modeled_overhead_seconds() * 1e3:.2f} ms")
    return "\n".join(lines)


def test_txt_twine_overhead(benchmark, report):
    native, wasm, tee, tee_total, runtime = benchmark.pedantic(
        run_all_backends, rounds=1, iterations=1)
    report("txt_twine_overhead",
           render(native, wasm, tee, tee_total, runtime))

    # 1. Full correctness inside the enclave ("fully executed inside").
    assert native.checksum == wasm.checksum == tee.checksum
    # 2. Sandboxing costs a small integer factor (interpreter overhead).
    wasm_factor = wasm.wall_seconds / native.wall_seconds
    assert wasm_factor < 100
    # 3. The *enclave* increment over plain wasm is small — the Twine
    #    finding: the runtime dominates, transitions add a modest slice.
    enclave_increment = (tee_total - wasm.wall_seconds) / wasm.wall_seconds
    assert enclave_increment < 1.0   # < 2x of the wasm runtime
    # 4. Every guest call crossed the boundary and was accounted.
    assert runtime.stats.ecalls == native.operations


def test_txt_twine_attested_session(benchmark, report):
    """End-to-end trust: the verifier attests the exact KV module before
    using it — a different module fails attestation."""

    def session():
        device_key = SigningKey(b"twine-node")
        runtime = TrustedWasmRuntime(build_kv_module(CAPACITY_POW2),
                                     device_key)
        verifier = Verifier()
        verifier.trust_device(device_key.verifying_key())
        verifier.trust_measurement(runtime.measurement())
        verifier.attest(runtime.enclave)
        runtime.invoke("put", 7, 70)
        value = runtime.invoke("get", 7)

        rogue = TrustedWasmRuntime(build_kv_module(CAPACITY_POW2 - 1),
                                   device_key)
        rogue_ok = True
        try:
            verifier.attest(rogue.enclave)
        except Exception:
            rogue_ok = False
        return value, rogue_ok

    value, rogue_ok = benchmark.pedantic(session, rounds=1, iterations=1)
    report("txt_twine_attestation",
           f"attested KV session: get(7) = {value}\n"
           f"rogue module passes attestation: {rogue_ok}")
    assert value == 70
    assert not rogue_ok
