"""Txt-Q — SLO-aware adaptive batching vs the fixed-knob engine.

Open-loop trace replay (arrivals come from the trace, not from client
back-pressure) against the ``mlp`` workload at an offered rate well
above single-worker capacity.  The fixed-knob engine queues everything
and completes it late — throughput without goodput.  The adaptive
engine predicts per-batch completion from its fitted latency model,
admits only what can still meet the deadline, and sheds the rest with
a typed error, so the *admitted* tail stays inside the SLO and every
dropped request is reported rather than silently stalled.

Two traces: ``bursty`` (4x on/off cycles; transient overload even at a
sustainable mean) and ``diurnal`` (sinusoidal swing).  The guard arms
on the bursty trace: adaptive goodput must strictly beat fixed at the
same offered load, the admitted p99 must sit within the SLO, and the
shed count must be non-zero (shedding is load, reported honestly).

``REPRO_BENCH_SMOKE=1`` shortens the trace for CI smoke jobs; the
offered *rate* stays overload-level so the guard still means something.
Results go to ``BENCH_pr8.json`` at the repo root.
"""

import json
import os
from pathlib import Path

from repro.ir import build_model
from repro.serving import make_trace, render_trace_replay, run_trace_replay

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
RATE_RPS = 20_000.0
DURATION_S = 0.5 if SMOKE else 2.0
WARMUP = 32 if SMOKE else 64
SLO_MS = 25.0
MAX_BATCH = 8
SEED = 7
TRACES = ("bursty", "diurnal")
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr8.json"


def as_row(result):
    return {
        "mode": result.mode,
        "trace": result.trace,
        "slo_ms": result.slo_ms,
        "offered": result.offered,
        "offered_rps": result.offered_rps,
        "completed": result.completed,
        "slo_met": result.slo_met,
        "shed": result.shed,
        "failed": result.failed,
        "throughput_rps": result.throughput_rps,
        "goodput_rps": result.goodput_rps,
        "mean_batch": result.mean_batch,
        "p50_ms": result.p50_ms,
        "p95_ms": result.p95_ms,
        "p99_ms": result.p99_ms,
    }


def trace_sweep(graph):
    rows = []
    for trace in TRACES:
        arrivals = make_trace(trace, rate_rps=RATE_RPS,
                              duration_s=DURATION_S, seed=SEED)
        for adaptive in (False, True):
            rows.append(run_trace_replay(
                graph, arrivals, slo_ms=SLO_MS, trace_name=trace,
                adaptive=adaptive, max_batch=MAX_BATCH,
                warmup=WARMUP))
    return rows


def test_txt_slo_batching(benchmark, report):
    graph = build_model("mlp")

    def study():
        return trace_sweep(graph)

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    report("txt_slo_batching", render_trace_replay(rows, name="mlp"))
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "txt_slo_batching",
        "smoke": SMOKE,
        "cpus": os.cpu_count(),
        "workload": "mlp",
        "rate_rps": RATE_RPS,
        "duration_s": DURATION_S,
        "seed": SEED,
        "rows": [as_row(row) for row in rows],
    }, indent=2) + "\n")

    by_key = {(row.trace, row.mode): row for row in rows}
    for trace in TRACES:
        fixed = by_key[(trace, "fixed")]
        adaptive = by_key[(trace, "adaptive")]
        # Same trace object feeds both modes — equal offered load.
        assert fixed.offered == adaptive.offered
        assert fixed.failed == 0 and adaptive.failed == 0

    fixed = by_key[("bursty", "fixed")]
    adaptive = by_key[("bursty", "adaptive")]
    # The overload guard: at 20k req/s mean (80k in bursts) a single
    # worker is saturated on any host, so the adaptive engine must be
    # shedding — and what it admits must be worth admitting.
    assert adaptive.shed > 0, "no shedding under bursty overload"
    assert adaptive.goodput_rps > fixed.goodput_rps, (
        f"adaptive goodput {adaptive.goodput_rps:.1f}/s did not beat "
        f"fixed {fixed.goodput_rps:.1f}/s on the bursty trace")
    assert adaptive.p99_ms <= SLO_MS, (
        f"admitted p99 {adaptive.p99_ms:.2f} ms exceeds the "
        f"{SLO_MS:.0f} ms SLO")
