"""Txt-G — Motor condition monitoring: a battery-powered ultra-low-energy box.

Paper Sec. V-B: "a battery-powered ultra-low energy deep learning-driven
small box that can be attached to large electric asynchronous motors and
continuously monitors the motor … upon specified events, e.g. a ball
bearing failure, a message is sent to an operator."

This benchmark runs a month-long (simulated) monitoring scenario with
injected fault episodes, measures alert correctness, and regenerates the
battery-life table across sampling cadences and MCU platforms.
"""

import pytest

from repro.apps.industrial import (
    MotorConditionMonitor,
    synthetic_motor_stream,
)
from repro.core import train_readout
from repro.datasets import make_motor_dataset
from repro.hw import get_accelerator
from repro.ir import build_model

SCHEDULE = [
    ("healthy", 40), ("imbalance", 12), ("healthy", 30),
    ("bearing_fault", 15), ("healthy", 20), ("overheat", 10),
    ("healthy", 15),
]
EXPECTED_EPISODES = ["imbalance", "healthy", "bearing_fault", "healthy",
                     "overheat", "healthy"]


@pytest.fixture(scope="module")
def motor_model():
    dataset = make_motor_dataset(100, window=256, seed=0)
    graph = build_model("motor_net", batch=8, window=256)
    return train_readout(graph, dataset).graph.with_batch(1)


def run_scenario(motor_model):
    monitor = MotorConditionMonitor(motor_model,
                                    platform=get_accelerator("GAP8"),
                                    debounce=3)
    stream = synthetic_motor_stream(SCHEDULE, seed=7)
    result = monitor.monitor_stream(stream)

    battery_rows = []
    for platform in ("GAP8", "MAX78000", "K210"):
        mon = MotorConditionMonitor(motor_model,
                                    platform=get_accelerator(platform))
        battery_rows.append((
            platform,
            mon.energy_per_inference_j,
            mon.battery_life_days(windows_per_hour=60),
            mon.battery_life_days(windows_per_hour=3600),
        ))
    return monitor, result, battery_rows


def render(result, battery_rows):
    lines = [f"monitoring stream: {result.windows} windows, "
             f"{len(result.alerts)} alerts"]
    for alert in result.alerts:
        lines.append(f"  window {alert.at_window:>4}: {alert.state} "
                     f"(confidence {alert.confidence:.2f})")
    lines.append("")
    lines.append(f"{'platform':<12}{'energy/inf uJ':>15}"
                 f"{'days @60/h':>12}{'days @3600/h':>14}")
    for platform, energy, slow, fast in battery_rows:
        lines.append(f"{platform:<12}{energy * 1e6:>15.2f}{slow:>12.0f}"
                     f"{fast:>14.1f}")
    return "\n".join(lines)


def test_txt_motor_monitor(benchmark, report, motor_model):
    monitor, result, battery_rows = benchmark.pedantic(
        run_scenario, args=(motor_model,), rounds=1, iterations=1)
    report("txt_motor_monitor", render(result, battery_rows))

    # 1. Every fault episode produced exactly one alert, in order — the
    #    "message is sent to an operator upon specified events" behaviour.
    assert result.detected_states == EXPECTED_EPISODES
    # 2. Alerts fire within the debounce window of the episode start.
    boundaries = []
    offset = 0
    for state, count in SCHEDULE[1:]:
        offset += count
    starts = []
    cursor = 0
    for state, count in SCHEDULE:
        starts.append((state, cursor))
        cursor += count
    fault_starts = [s for s in starts[1:]]
    for alert, (state, start) in zip(result.alerts, fault_starts):
        assert alert.state == state
        assert start <= alert.at_window <= start + 8
    # 3. Ultra-low energy: sub-10 uJ inferences on MCU-class silicon and
    #    months of battery life at the monitoring cadence.
    by_platform = {row[0]: row for row in battery_rows}
    assert by_platform["GAP8"][1] < 10e-6
    assert by_platform["GAP8"][2] > 180      # > 6 months at 1 window/min
    # 4. Battery life falls with cadence but stays over a month even at
    #    one window per second.
    for platform, energy, slow, fast in battery_rows:
        assert slow > fast
        assert fast > 30
