"""Fig. 3 — Peak Performance of DL Accelerators.

The paper plots vendor peak performance (GOPS) against power (W) for the
surveyed accelerators and observes that "most architectures cluster around
an energy efficiency of about 1 TOPS/W, independent of their individual
performance (or power demand)".

This benchmark regenerates the survey table and the efficiency histogram
and checks the clustering claim quantitatively.
"""

import numpy as np
import pytest

from repro.hw import DeviceFamily, catalog


def build_fig3_table():
    rows = []
    for spec in sorted(catalog(), key=lambda s: s.tdp_w):
        rows.append((spec.name, spec.family.value, spec.peak_gops_best,
                     spec.best_precision.value, spec.tdp_w,
                     spec.efficiency_tops_per_w))
    return rows


def efficiency_histogram(rows, bins=np.arange(-2.0, 1.5, 0.5)):
    logs = np.log10([r[5] for r in rows])
    counts, edges = np.histogram(logs, bins=bins)
    return counts, edges, logs


def render(rows, counts, edges, logs):
    lines = [f"{'accelerator':<16}{'class':<7}{'peak GOPS':>11}"
             f"{'prec':>6}{'power W':>9}{'TOPS/W':>8}"]
    for name, family, gops, precision, power, eff in rows:
        lines.append(f"{name:<16}{family:<7}{gops:>11,.0f}{precision:>6}"
                     f"{power:>9.2f}{eff:>8.2f}")
    lines.append("")
    lines.append("efficiency histogram (log10 TOPS/W):")
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * count
        lines.append(f"  [{lo:+.1f}, {hi:+.1f})  {bar} {count}")
    lines.append("")
    lines.append(f"median efficiency: {10 ** np.median(logs):.2f} TOPS/W")
    lines.append(f"devices within one decade of 1 TOPS/W: "
                 f"{np.mean(np.abs(logs) < 1.0):.0%}")
    return "\n".join(lines)


def test_fig3_peak_performance(benchmark, report):
    rows = benchmark(build_fig3_table)
    counts, edges, logs = efficiency_histogram(rows)
    report("fig3_peak_performance", render(rows, counts, edges, logs))

    # Shape assertions (the paper's qualitative observations):
    # 1. The survey spans > 4 decades of power.
    powers = [r[4] for r in rows]
    assert max(powers) / min(powers) > 1e4
    # 2. Efficiencies cluster near 1 TOPS/W: the modal histogram bin lies
    #    within [0.1, 3.2) TOPS/W and the median within a factor ~5.
    modal_bin = int(np.argmax(counts))
    assert -1.0 <= edges[modal_bin] <= 0.5
    assert 0.2 <= 10 ** np.median(logs) <= 5.0
    # 3. Clustering is independent of power: efficiency/power correlation
    #    is weak compared to performance/power correlation.
    eff_corr = np.corrcoef(np.log10(powers), logs)[0, 1]
    perf_corr = np.corrcoef(np.log10(powers),
                            np.log10([r[2] for r in rows]))[0, 1]
    assert perf_corr > 0.7          # more power -> more peak GOPS
    assert abs(eff_corr) < 0.6      # ...but efficiency stays in the band
