"""Ablation — the paper's accelerator taxonomy on one workload.

Sec. II-B: "four different types of DL accelerators are explored:
(1) existing off-the-shelf; (2) statically configured; (3) dynamically
reconfigurable; and (4) fully simultaneous co-design … preliminary results
have shown that no single accelerator can provide a better match to
different models."

This ablation runs the same int8 matrix-vector workload (a dense-layer
inner loop) on the simulated SoC three ways — pure software, through the
tightly-coupled CFU (type 4), and through the memory-mapped static engine
(type 2) — at two problem sizes, showing the crossover: the CFU wins on
small tensors (no offload overhead), the static engine wins on large ones
(wide MAC array), i.e. "no single accelerator is the better match".
"""

import numpy as np
import pytest

from repro.simulator import (
    ACCEL_BASE,
    Machine,
    RAM_BASE,
    SimdMacCfu,
    attach_accelerator,
    halt_with,
)

WEIGHTS = RAM_BASE + 0x10000
VECTOR = RAM_BASE + 0x20000
RESULT = RAM_BASE + 0x30000


def software_program(rows, cols):
    return f"""
        li   s0, {WEIGHTS}
        li   s1, {RESULT}
        li   s2, {rows}
    row_loop:
        li   t1, {VECTOR}
        li   t2, {cols}
        li   a0, 0
    col_loop:
        lb   a1, 0(s0)
        lb   a2, 0(t1)
        mul  a3, a1, a2
        add  a0, a0, a3
        addi s0, s0, 1
        addi t1, t1, 1
        addi t2, t2, -1
        bnez t2, col_loop
        sw   a0, 0(s1)
        addi s1, s1, 4
        addi s2, s2, -1
        bnez s2, row_loop
    """ + halt_with(0)


def cfu_program(rows, cols):
    assert cols % 4 == 0
    return f"""
        li   s0, {WEIGHTS}
        li   s1, {RESULT}
        li   s2, {rows}
    row_loop:
        li   t1, {VECTOR}
        li   t2, {cols // 4}
        cfu  zero, zero, zero, 2, 0
    col_loop:
        lw   a1, 0(s0)
        lw   a2, 0(t1)
        cfu  a0, a1, a2, 0, 0
        addi s0, s0, 4
        addi t1, t1, 4
        addi t2, t2, -1
        bnez t2, col_loop
        cfu  a0, zero, zero, 1, 0
        sw   a0, 0(s1)
        addi s1, s1, 4
        addi s2, s2, -1
        bnez s2, row_loop
    """ + halt_with(0)


def engine_program(rows, cols):
    return f"""
        li   t0, {ACCEL_BASE}
        li   t1, {WEIGHTS}
        sw   t1, 8(t0)
        li   t1, {VECTOR}
        sw   t1, 12(t0)
        li   t1, {RESULT}
        sw   t1, 16(t0)
        li   t1, {rows}
        sw   t1, 20(t0)
        li   t1, {cols}
        sw   t1, 24(t0)
        li   t1, 1
        sw   t1, 0(t0)
        lw   a0, 4(t0)
    """ + halt_with(0)


def run_backend(kind, rows, cols, matrix, vector):
    if kind == "software":
        machine = Machine()
        program = software_program(rows, cols)
    elif kind == "cfu":
        machine = Machine(cfu=SimdMacCfu())
        program = cfu_program(rows, cols)
    else:
        machine = Machine()
        # Loosely-coupled engines pay a real offload cost per job: DMA
        # descriptor setup, cache maintenance, completion signalling.
        attach_accelerator(machine, macs_per_cycle=64, setup_cycles=400)
        program = engine_program(rows, cols)
    machine.load_binary(matrix.tobytes(), WEIGHTS)
    machine.load_binary(vector.tobytes(), VECTOR)
    machine.load_assembly(program)
    result = machine.run(max_steps=2_000_000)
    assert result.halted
    got = np.array([machine.read_word(RESULT + 4 * i) for i in range(rows)],
                   dtype=np.uint32).astype(np.int32)
    return got, result.cycles


def evaluate(sizes=((4, 16), (32, 128))):
    table = {}
    for rows, cols in sizes:
        rng = np.random.default_rng(rows)
        matrix = rng.integers(-128, 128, size=(rows, cols), dtype=np.int8)
        vector = rng.integers(-128, 128, size=cols, dtype=np.int8)
        want = matrix.astype(np.int32) @ vector.astype(np.int32)
        entry = {}
        for kind in ("software", "cfu", "engine"):
            got, cycles = run_backend(kind, rows, cols, matrix, vector)
            np.testing.assert_array_equal(got, want)
            entry[kind] = cycles
        table[(rows, cols)] = entry
    return table


def render(table):
    lines = [f"{'size':<10}{'software':>10}{'CFU (t4)':>10}"
             f"{'engine (t2)':>12}{'best':>10}"]
    for (rows, cols), cycles in table.items():
        best = min(cycles, key=cycles.get)
        lines.append(f"{f'{rows}x{cols}':<10}{cycles['software']:>10}"
                     f"{cycles['cfu']:>10}{cycles['engine']:>12}"
                     f"{best:>10}")
    return "\n".join(lines)


def test_abl_accelerator_types(benchmark, report):
    table = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    report("abl_accelerator_types", render(table))

    small = table[(4, 16)]
    large = table[(32, 128)]
    # Both accelerators beat software at both sizes.
    for entry in (small, large):
        assert entry["cfu"] < entry["software"]
        assert entry["engine"] < entry["software"]
    # The crossover: the tightly-coupled CFU wins the small problem (the
    # engine's setup overhead dominates), the wide static engine wins the
    # large one — "no single accelerator can provide a better match".
    assert small["cfu"] < small["engine"]
    assert large["engine"] < large["cfu"]
