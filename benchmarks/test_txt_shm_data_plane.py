"""Txt-R — data plane: shared-memory rings vs the pipe codec.

BENCH_pr6 bought multi-core scale with replica processes but paid for
it in serialization: every request tensor crossed the parent→child pipe
as framed bytes (encode, kernel transit, decode), both directions.  The
shm data plane removes the payload from the pipe — tensors are written
once into a 64-byte-aligned slot of a per-replica shared-memory ring
and only a fixed-size control frame crosses — so the marginal cost per
request should stop scaling with activation bytes.

Measured here, per batch size (1, 8, 32), on a one-replica tier so both
modes run the identical execution schedule:

1. closed-loop throughput and latency of pipe vs shm on an
   activation-heavy convnet (``tiny_convnet`` at 64x64 input — ~49 KiB
   of request payload per sample) and the compute-light ``mlp``;
2. a frame-packing microbench: the legacy two-stage
   ``encode_tensors`` + frame concatenation vs the single-allocation
   ``pack_tensor_frame`` the pipe path now uses.

Every row must complete all requests with zero fallbacks in shm mode —
a "win" that silently degraded to the pipe codec doesn't count.

``REPRO_BENCH_SMOKE=1`` shrinks request counts for CI smoke jobs.
Results are written to ``BENCH_pr9.json`` at the repo root.  The CI
guard (shm >= pipe throughput at batch 8 on the convnet) only arms on
hosts with at least 4 CPUs: on 1-CPU runners parent-side copy work and
child execution contend for the same core, so the numbers are recorded
but the transport difference is buried in scheduler noise.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.ir import build_model
from repro.serving import run_shm_bench, sample_feeds
from repro.serving.replicas import (
    _KIND_REQUEST,
    _ZERO_STATS,
    _pack_frame,
    encode_tensors,
    pack_tensor_frame,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 24 if SMOKE else 192
WARMUP = 8 if SMOKE else 24

BATCH_SIZES = (1, 8) if SMOKE else (1, 8, 32)
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr9.json"


def data_plane_sweep(graph):
    with tempfile.TemporaryDirectory(prefix="repro-shm-bench-") \
            as cache_dir:
        rows = run_shm_bench(graph, batch_sizes=BATCH_SIZES,
                             requests=REQUESTS, warmup=WARMUP,
                             cache_dir=cache_dir)
    for row in rows:
        if row.data_plane == "shm":
            assert row.shm_requests > 0, f"batch {row.batch}: no slots used"
            assert row.shm_fallbacks == 0, \
                f"batch {row.batch}: shm degraded to the pipe codec"
    pipe_rps = {row.batch: row.throughput_rps for row in rows
                if row.data_plane == "pipe"}
    return {
        "rows": [
            {
                "data_plane": row.data_plane,
                "batch": row.batch,
                "clients": row.clients,
                "requests": row.requests,
                "request_kb": row.request_kb,
                "throughput_rps": row.throughput_rps,
                "mean_batch": row.mean_batch,
                "p50_ms": row.p50_ms,
                "p95_ms": row.p95_ms,
                "p99_ms": row.p99_ms,
                "shm_requests": row.shm_requests,
                "shm_fallbacks": row.shm_fallbacks,
                "speedup_vs_pipe": (
                    row.throughput_rps / pipe_rps[row.batch]
                    if row.data_plane == "shm" and pipe_rps[row.batch]
                    else 1.0),
            }
            for row in rows
        ],
    }


def frame_pack_microbench(graph, batch=32, repeats=50):
    """ns/frame for the legacy two-stage pipe framing vs the
    single-allocation packer (identical output bytes)."""
    template = graph.with_batch(batch)
    feeds = {
        spec.name: sample_feeds(graph, seed=1)[spec.name].repeat(batch,
                                                                 axis=0)
        for spec in template.inputs
    }
    legacy_frame = _pack_frame(_KIND_REQUEST, 1, _ZERO_STATS,
                               encode_tensors(feeds))
    single_frame = pack_tensor_frame(_KIND_REQUEST, 1, _ZERO_STATS, feeds)
    assert bytes(single_frame) == bytes(legacy_frame)

    def clock(fn):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    legacy_s = clock(lambda: _pack_frame(_KIND_REQUEST, 1, _ZERO_STATS,
                                         encode_tensors(feeds)))
    single_s = clock(lambda: pack_tensor_frame(_KIND_REQUEST, 1,
                                               _ZERO_STATS, feeds))
    return {
        "batch": batch,
        "frame_bytes": len(legacy_frame),
        "legacy_us": legacy_s * 1e6,
        "single_alloc_us": single_s * 1e6,
        "speedup": legacy_s / single_s if single_s > 0 else 0.0,
    }


def render(results, packing):
    lines = []
    for name, sweep in results.items():
        lines.append(name)
        for entry in sweep["rows"]:
            tag = (f" ({entry['speedup_vs_pipe']:.2f}x vs pipe)"
                   if entry["data_plane"] == "shm" else "")
            lines.append(
                f"  {entry['data_plane']:<5} batch {entry['batch']:>2} "
                f"{entry['throughput_rps']:>9.1f} req/s "
                f"p95 {entry['p95_ms']:>8.2f} ms "
                f"slots {entry['shm_requests']:>4} "
                f"fallbk {entry['shm_fallbacks']}{tag}")
    lines.append(
        f"frame packing (batch {packing['batch']}, "
        f"{packing['frame_bytes'] / 1024:.0f} KiB): "
        f"legacy {packing['legacy_us']:.0f} us vs "
        f"single-alloc {packing['single_alloc_us']:.0f} us "
        f"({packing['speedup']:.2f}x)")
    lines.append(f"host cpus: {os.cpu_count()}")
    return "\n".join(lines)


def test_txt_shm_data_plane(benchmark, report):
    workloads = {
        "tiny_convnet_64": build_model("tiny_convnet", image_size=64),
        "mlp": build_model("mlp"),
    }

    def study():
        sweeps = {name: data_plane_sweep(graph)
                  for name, graph in workloads.items()}
        packing = frame_pack_microbench(workloads["tiny_convnet_64"])
        return sweeps, packing

    results, packing = benchmark.pedantic(study, rounds=1, iterations=1)
    report("txt_shm_data_plane", render(results, packing))
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "txt_shm_data_plane",
        "smoke": SMOKE,
        "cpus": os.cpu_count(),
        "workloads": results,
        "frame_packing": packing,
    }, indent=2) + "\n")

    # The packer's single allocation must never lose to the two-stage
    # path it replaces — this holds even on a 1-CPU host.
    assert packing["speedup"] >= 0.9, (
        f"single-allocation framing regressed: {packing['speedup']:.2f}x")
    # The transport guard needs a core for the parent's copy loop: on
    # >= 4-CPU hosts shm must at least match the pipe codec at batch 8
    # on the activation-heavy workload.
    if (os.cpu_count() or 1) >= 4:
        rows = results["tiny_convnet_64"]["rows"]
        at8 = next(entry for entry in rows
                   if entry["data_plane"] == "shm" and entry["batch"] == 8)
        assert at8["speedup_vs_pipe"] >= 1.0, (
            f"shm {at8['speedup_vs_pipe']:.2f}x < 1.0x vs pipe at batch 8 "
            f"on {os.cpu_count()}-cpu host")
