"""Txt-H — CFU co-design: a tightly-coupled ML accelerator in simulation.

Paper Sec. II-B: "Renode is enhanced with capabilities of simulating Custom
Function Units, or CFUs.  A CFU is an accelerator tightly coupled with the
CPU, providing functionality explicitly designed for the planned ML
workflow … CFUs are used as an input for Renode to extend simulated cores."

This benchmark runs the quantized-inference inner loop (int8 dot product)
on the simulated RV32IM core twice — as pure software (byte loads +
multiply-accumulate) and through the SIMD MAC CFU — and compares cycle
counts, the co-design feedback signal the paper describes.
"""

import numpy as np
import pytest

from repro.simulator import Machine, RAM_BASE, SimdMacCfu, halt_with

VECTOR_LEN = 64  # int8 lanes
DATA_A = RAM_BASE + 0x8000
DATA_B = RAM_BASE + 0x9000


def make_vectors(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-128, 128, size=VECTOR_LEN, dtype=np.int8)
    b = rng.integers(-128, 128, size=VECTOR_LEN, dtype=np.int8)
    return a, b


SOFTWARE_DOT = f"""
    li   t0, {DATA_A}
    li   t1, {DATA_B}
    li   t2, {VECTOR_LEN}
    li   a0, 0              # accumulator
loop:
    lb   a1, 0(t0)
    lb   a2, 0(t1)
    mul  a3, a1, a2
    add  a0, a0, a3
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, -1
    bnez t2, loop
""" + halt_with(0)

CFU_DOT = f"""
    li   t0, {DATA_A}
    li   t1, {DATA_B}
    li   t2, {VECTOR_LEN // 4}
    cfu  zero, zero, zero, 2, 0    # reset accumulator
loop:
    lw   a1, 0(t0)
    lw   a2, 0(t1)
    cfu  a0, a1, a2, 0, 0          # acc += dot4(a1, a2)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    cfu  a0, zero, zero, 1, 0      # read accumulator
""" + halt_with(0)


def run_both():
    a, b = make_vectors()
    want = int(a.astype(np.int32) @ b.astype(np.int32)) & 0xFFFFFFFF

    software = Machine()
    software.load_binary(a.tobytes(), DATA_A)
    software.load_binary(b.tobytes(), DATA_B)
    software.load_assembly(SOFTWARE_DOT)
    sw_result = software.run(max_steps=20_000)

    accelerated = Machine(cfu=SimdMacCfu())
    accelerated.load_binary(a.tobytes(), DATA_A)
    accelerated.load_binary(b.tobytes(), DATA_B)
    accelerated.load_assembly(CFU_DOT)
    cfu_result = accelerated.run(max_steps=20_000)

    return (want, software.cpu.read_reg(10), sw_result.cycles,
            accelerated.cpu.read_reg(10), cfu_result.cycles)


def test_txt_cfu_speedup(benchmark, report):
    want, sw_value, sw_cycles, cfu_value, cfu_cycles = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    speedup = sw_cycles / cfu_cycles
    report("txt_cfu_speedup",
           f"int8 dot product, {VECTOR_LEN} lanes on simulated RV32IM\n"
           f"software MAC loop: {sw_cycles} cycles\n"
           f"SIMD MAC CFU:      {cfu_cycles} cycles\n"
           f"speedup:           {speedup:.2f}x\n"
           f"results agree: {sw_value == cfu_value == want}")

    # 1. Both paths compute the exact dot product.
    assert sw_value == want
    assert cfu_value == want
    # 2. The CFU delivers a solid cycle-count speedup (4 MACs/instruction
    #    plus fewer loads): at least 2.5x on this loop.
    assert speedup > 2.5


def test_txt_cfu_ci_suite(benchmark, report):
    """The Renode-style CI flow: CFU regression tests run as a suite
    ('within a Continuous Integration environment', Sec. II-B)."""
    from repro.simulator import Expectation, SimTest, run_suite

    def machine_with_cfu():
        return Machine(cfu=SimdMacCfu())

    tests = [
        SimTest("dot4-basic",
                "li a0, 0x01010101\nli a1, 0x02020202\n"
                "cfu a2, a0, a1, 3, 0" + halt_with(0),
                Expectation(registers={12: 8}),
                machine_factory=machine_with_cfu),
        SimTest("acc-reset",
                "cfu a0, zero, zero, 2, 0\ncfu a1, zero, zero, 1, 0"
                + halt_with(0),
                Expectation(registers={11: 0}),
                machine_factory=machine_with_cfu),
        SimTest("signed-lanes",
                "li a0, 0xFF000000\nli a1, 0x01000000\n"  # -1 * 1 in lane 3
                "cfu a2, a0, a1, 3, 0" + halt_with(0),
                Expectation(registers={12: 0xFFFFFFFF}),
                machine_factory=machine_with_cfu),
        SimTest("cycle-budget",
                CFU_DOT, Expectation(max_cycles=200),
                machine_factory=machine_with_cfu),
    ]

    def run():
        return run_suite(tests)

    suite_report = benchmark.pedantic(run, rounds=1, iterations=1)
    report("txt_cfu_ci_suite", suite_report.summary())
    assert suite_report.ok, suite_report.summary()
