"""Txt-B — Hardware-aware optimization beats theoretical ops-counting.

Paper Sec. III: "most of the results are theoretical speed-ups based on
metrics, e.g. number of operations and reduction of parameters.  The
theoretical speed-ups do not always translate to more efficient execution
in hardware … Utilizing the knowledge of the target hardware leads to
optimizations that translate to improved execution metrics when deployed."

We run the same optimization search twice — once scored by operation count
(theoretical) and once by the target's roofline latency (hardware-aware) —
on two very different targets, then deploy both winners on the target and
compare predicted latency.  Also ablates the naive peak-GOPS latency model
against the roofline.
"""

import pytest

from repro.core import accuracy_quality_fn, train_readout
from repro.datasets import make_shapes_dataset
from repro.hw import NaivePeakModel, RooflineModel, get_accelerator
from repro.ir import build_model
from repro.optim import compare_objectives

TARGETS = ("ZynqZU3", "GTX1660")


@pytest.fixture(scope="module")
def trained_setup():
    dataset = make_shapes_dataset(200, image_size=32, seed=0)
    train, test = dataset.split(0.8, seed=0)
    graph = build_model("tiny_convnet", batch=8, num_classes=4)
    trained = train_readout(graph, train).graph
    feeds = [{"input": train.features[:8]}]
    return trained, test, feeds


def run_comparison(trained, test, feeds):
    rows = []
    for target_name in TARGETS:
        target = get_accelerator(target_name)
        roofline = RooflineModel(target)
        plans = compare_objectives(
            trained, roofline.latency_seconds,
            accuracy_quality_fn(test),
            calibration_feeds=feeds, max_quality_drop=0.05)
        rows.append((target_name, plans))
    return rows


def render(rows, trained):
    lines = []
    for target_name, plans in rows:
        lines.append(f"target {target_name}:")
        for kind in ("theoretical", "hardware_aware"):
            plan = plans[kind]
            steps = " -> ".join(s.describe() for s in plan.steps) \
                or "(baseline)"
            lines.append(f"  {kind:<15} latency "
                         f"{plan.objective_value * 1e3:8.3f} ms  "
                         f"accuracy {plan.quality:.3f}  plan: {steps}")
        gain = plans["theoretical"].objective_value / \
            plans["hardware_aware"].objective_value
        lines.append(f"  hardware-aware speedup over ops-guided: {gain:.2f}x")
        lines.append("")
    return "\n".join(lines)


def test_txt_hardware_aware(benchmark, report, trained_setup):
    trained, test, feeds = trained_setup
    rows = benchmark.pedantic(run_comparison, args=(trained, test, feeds),
                              rounds=1, iterations=1)
    report("txt_hardware_aware", render(rows, trained))

    for target_name, plans in rows:
        theoretical = plans["theoretical"]
        hardware = plans["hardware_aware"]
        # Both deployed latencies are on the same (hardware) scale; the
        # hardware-aware plan never loses, and both respect quality.
        assert hardware.objective_value <= theoretical.objective_value * 1.001
        assert hardware.quality >= theoretical.quality - 0.05 - 1e-9
        # Both plans actually optimize something.
        assert hardware.steps


def test_txt_naive_vs_roofline_ranking(benchmark, report, yolov4):
    """The strawman ops/peak model mispredicts both magnitude and ranking:
    it ignores memory and dispatch, the exact failure mode the paper warns
    about."""

    def compute():
        rows = []
        for name in ("GTX1660", "ZynqZU3", "Epyc3451"):
            spec = get_accelerator(name)
            naive = NaivePeakModel(spec).latency_seconds(yolov4)
            roofline = RooflineModel(spec).latency_seconds(yolov4)
            rows.append((name, naive, roofline, roofline / naive))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [f"{'platform':<12}{'naive ms':>10}{'roofline ms':>13}"
             f"{'underestimate':>15}"]
    for name, naive, roofline, factor in rows:
        lines.append(f"{name:<12}{naive * 1e3:>10.1f}{roofline * 1e3:>13.1f}"
                     f"{factor:>14.1f}x")
    report("txt_naive_vs_roofline", "\n".join(lines))

    # The naive model always underestimates, and by target-dependent
    # factors — so a deployment decision made on ops counts alone picks
    # wrong trade-offs.
    factors = [row[3] for row in rows]
    assert all(f > 1.0 for f in factors)
    assert max(factors) / min(factors) > 1.3
