"""Txt-A — Deep compression: "models have been compressed down to 49x of
their original size, with negligible accuracy loss" (Sec. III, citing Han
et al.'s deep compression).

We run the full prune + cluster-quantize + Huffman pipeline on a trained
dense-heavy network (the regime where Han et al. report 49x on LeNet-class
models) and sweep pruning aggressiveness, measuring the real encoded size
and the real accuracy after compression.
"""

import numpy as np
import pytest

from repro.core import evaluate_accuracy, train_readout
from repro.datasets import make_arc_dataset
from repro.ir import build_model
from repro.optim import compress_graph, decompress_into, sparsity_of
from repro.optim.pruning import ConnectionPrune


@pytest.fixture(scope="module")
def trained_setup():
    # A dense-heavy net (LeNet-300-100 style) on a learnable task.
    dataset = make_arc_dataset(300, window=256, seed=0)
    train, test = dataset.split(0.8, seed=0)
    graph = build_model("mlp", batch=16, in_features=128,
                        hidden=(512, 256), num_classes=2, seed=0)
    trained = train_readout(graph, train).graph
    baseline = evaluate_accuracy(trained, test)
    return trained, train, test, baseline


def compress_with_retraining(trained, train, fraction):
    """Han et al.'s flow: prune, *retrain*, cluster-quantize, entropy-code.

    Pruning removes small hidden-layer weights; the retraining step
    (closed-form readout re-fit on the pruned features) recovers the
    accuracy lost to pruning.  The readout itself stays dense — it is tiny
    and charged at its raw size by the encoder.
    """
    readout = [n.name for n in trained.nodes
               if n.op_type in ("dense", "fused_dense")][-1]
    pruned = ConnectionPrune(fraction, skip_layers=[readout]).run(trained)
    retrained = train_readout(pruned, train).graph
    encoded = compress_graph(retrained, num_clusters=16)
    deployed = decompress_into(retrained, encoded)
    return deployed, encoded, sparsity_of(retrained).global_sparsity


def sweep(trained, train, test, baseline):
    rows = []
    for fraction in (0.5, 0.8, 0.9, 0.95):
        deployed, encoded, sparsity = compress_with_retraining(
            trained, train, fraction)
        accuracy = evaluate_accuracy(deployed, test)
        rows.append((fraction, sparsity, encoded.compression_ratio,
                     accuracy, baseline - accuracy))
    return rows


def render(rows, baseline, raw_bytes):
    lines = [f"baseline accuracy {baseline:.4f}, "
             f"uncompressed model {raw_bytes / 1024:.1f} KiB",
             f"{'prune':>7}{'sparsity':>10}{'ratio':>8}{'accuracy':>10}"
             f"{'drop':>8}"]
    for fraction, sparsity, ratio, accuracy, drop in rows:
        lines.append(f"{fraction:>7.2f}{sparsity:>10.2f}{ratio:>8.1f}"
                     f"{accuracy:>10.4f}{drop:>8.4f}")
    return "\n".join(lines)


def test_txt_compression_49x(benchmark, report, trained_setup):
    trained, train, test, baseline = trained_setup
    rows = benchmark.pedantic(sweep, args=(trained, train, test, baseline),
                              rounds=1, iterations=1)
    report("txt_compression_49x",
           render(rows, baseline, trained.parameter_bytes()))

    assert baseline > 0.9  # the task is genuinely learned

    by_fraction = {row[0]: row for row in rows}
    # The paper-shape claim: around 40-50x compression at negligible
    # accuracy loss on a dense-heavy model at ~95% sparsity.
    _, _, ratio95, acc95, drop95 = by_fraction[0.95]
    assert ratio95 >= 40.0
    assert drop95 <= 0.02  # "negligible accuracy loss"
    # Compression ratio grows monotonically with sparsity.
    ratios = [row[2] for row in rows]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    # Even moderate pruning beats 4x (plain INT8-style size reduction).
    assert by_fraction[0.5][2] > 4.0


def test_txt_compression_bit_exact_decode(benchmark, trained_setup):
    """The Huffman/runlength codec is lossless over the clustered weights:
    decoding the encoded model reproduces the deployed weights exactly."""
    trained, _, _, _ = trained_setup
    pruned = ConnectionPrune(0.9).run(trained)

    def roundtrip():
        encoded = compress_graph(pruned, num_clusters=32)
        restored = decompress_into(pruned, encoded)
        return encoded, restored

    encoded, restored = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    again = decompress_into(pruned, encoded)
    for name in encoded.layers:
        np.testing.assert_array_equal(restored.initializers[name],
                                      again.initializers[name])
