"""Txt-I — Run-time partial reconfiguration with power/performance variants.

Paper Sec. II-A: "partial reconfiguration is used to adapt to changing
application requirements at run-time, e.g., using implementations with
different power/performance footprints."

This benchmark drives a day-cycle workload (long idle phases with load
bursts) through the reconfigurable region twice: adaptively (switching DPU
variants per phase) and statically (fastest variant always loaded), and
reports the energy saving and the amortization of reconfiguration costs.
"""

import pytest

from repro.hw import VariantScheduler, WorkloadPhase, default_dl_region

DAY_CYCLE = [
    WorkloadPhase("night-idle", 40, 120.0),
    WorkloadPhase("morning-burst", 1100, 20.0),
    WorkloadPhase("daytime", 300, 90.0),
    WorkloadPhase("evening-burst", 1300, 15.0),
    WorkloadPhase("late-idle", 60, 90.0),
]


def run_policies():
    adaptive_region = default_dl_region()
    adaptive = VariantScheduler(adaptive_region).run_phases(DAY_CYCLE,
                                                            adaptive=True)
    static_region = default_dl_region()
    static = VariantScheduler(static_region).run_phases(DAY_CYCLE,
                                                        adaptive=False)
    return adaptive, static, adaptive_region, static_region


def render(adaptive, static, adaptive_region):
    lines = [f"{'phase':<16}{'demand GOPS/s':>14}"
             f"{'adaptive variant':>18}{'E_adapt J':>11}"
             f"{'static variant':>16}{'E_static J':>12}"]
    for phase, a, s in zip(DAY_CYCLE, adaptive, static):
        lines.append(f"{phase.name:<16}{phase.required_gops_per_s:>14.0f}"
                     f"{a.variant:>18}{a.energy_j:>11.1f}"
                     f"{s.variant:>16}{s.energy_j:>12.1f}")
    total_a = sum(o.energy_j for o in adaptive)
    total_s = sum(o.energy_j for o in static)
    lines.append("")
    lines.append(f"adaptive total: {total_a:.1f} J "
                 f"({adaptive_region.reconfig_count} reconfigurations, "
                 f"{adaptive_region.reconfig_seconds:.2f} s, "
                 f"{adaptive_region.reconfig_energy_j:.2f} J spent "
                 "reconfiguring)")
    lines.append(f"static total:   {total_s:.1f} J")
    lines.append(f"energy saving:  {1 - total_a / total_s:.1%}")
    return "\n".join(lines)


def test_txt_reconfiguration(benchmark, report):
    adaptive, static, adaptive_region, _ = benchmark.pedantic(
        run_policies, rounds=1, iterations=1)
    report("txt_reconfiguration", render(adaptive, static, adaptive_region))

    # 1. Both policies meet every phase's demand.
    assert all(o.met_demand for o in adaptive)
    assert all(o.met_demand for o in static)
    # 2. The adaptive policy uses the small variant in idle phases and the
    #    large one in bursts — the "different power/performance footprints".
    variants = [o.variant for o in adaptive]
    assert variants[0] == "dpu-small"
    assert variants[1] == "dpu-large"
    # 3. Adaptation saves substantial energy over the static-fastest
    #    baseline, net of reconfiguration costs.
    total_adaptive = sum(o.energy_j for o in adaptive)
    total_static = sum(o.energy_j for o in static)
    assert total_adaptive < 0.8 * total_static
    # 4. Reconfiguration overhead is amortized: time spent reconfiguring
    #    is a tiny fraction of the cycle.
    cycle_seconds = sum(p.duration_s for p in DAY_CYCLE)
    assert adaptive_region.reconfig_seconds < 0.01 * cycle_seconds


def test_txt_reconfiguration_break_even(benchmark, report):
    """Rapidly alternating phases: the scheduler declines to switch when a
    phase is too short to amortize the bitstream load."""

    def run():
        flip_flop = []
        for index in range(8):
            demand = 1100 if index % 2 else 50
            # Phases shorter than the window over which dropping to the
            # small variant would amortize its bitstream load.
            flip_flop.append(WorkloadPhase(f"p{index}", demand, 0.1))
        region = default_dl_region()
        outcomes = VariantScheduler(region).run_phases(flip_flop)
        return region, outcomes

    region, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    report("txt_reconfiguration_break_even",
           f"{len(outcomes)} x 0.1 s alternating phases: "
           f"{region.reconfig_count} reconfigurations, "
           f"variants: {[o.variant for o in outcomes]}")
    # Far fewer reconfigurations than phase changes.
    assert region.reconfig_count < len(outcomes)
