"""Ablation — the precision ladder: FP32 -> FP16 -> INT8 -> binary.

Fig. 3's survey spans precisions "ranging from FP32 to INT8 and even
binary weights".  This ablation walks one trained model down that ladder
and reports the three quantities the toolchain trades: model size,
accuracy, and predicted latency/energy on an embedded GPU target.
"""

import pytest

from repro.core import evaluate_accuracy, train_readout
from repro.datasets import make_shapes_dataset
from repro.hw import RooflineModel, get_accelerator
from repro.ir import build_model
from repro.ir.tensor import DType
from repro.optim import binarize, convert_fp16, fuse_graph, quantize_int8


@pytest.fixture(scope="module")
def setup():
    dataset = make_shapes_dataset(240, image_size=32, seed=0)
    train, test = dataset.split(0.8, seed=0)
    graph = train_readout(
        build_model("tiny_convnet", batch=8, num_classes=4), train).graph
    return fuse_graph(graph), train, test


def build_ladder(fused, train, test):
    feeds = [{"input": train.features[:8]}]
    variants = {
        "fp32": (fused, DType.FP32),
        "fp16": (convert_fp16(fused), DType.FP16),
        "int8": (quantize_int8(fused, feeds), DType.INT8),
        "binary": (train_readout(binarize(fused), train).graph, DType.INT8),
    }
    target = RooflineModel(get_accelerator("XavierAGX"))
    rows = []
    for name, (graph, run_dtype) in variants.items():
        accuracy = evaluate_accuracy(graph, test)
        # Binary backbones execute on INT8-capable fabric; the roofline
        # sees their 1-bit weight traffic through the graph costs.
        prediction = target.predict(graph, batch=1, dtype=run_dtype)
        rows.append((name, graph.parameter_bytes(), accuracy,
                     prediction.latency_s, prediction.energy_per_inference_j))
    return rows


def render(rows):
    base_bytes = rows[0][1]
    lines = [f"{'precision':<10}{'size KiB':>10}{'vs fp32':>9}"
             f"{'accuracy':>10}{'lat ms':>8}{'mJ/inf':>8}"]
    for name, size, accuracy, latency, energy in rows:
        lines.append(f"{name:<10}{size / 1024:>10.1f}"
                     f"{base_bytes / size:>8.1f}x{accuracy:>10.3f}"
                     f"{latency * 1e3:>8.3f}{energy * 1e3:>8.3f}")
    return "\n".join(lines)


def test_abl_precision_ladder(benchmark, report, setup):
    fused, train, test = setup
    rows = benchmark.pedantic(build_ladder, args=(fused, train, test),
                              rounds=1, iterations=1)
    report("abl_precision_ladder", render(rows))

    by_name = {row[0]: row for row in rows}
    # 1. Size strictly shrinks down the ladder.
    sizes = [by_name[n][1] for n in ("fp32", "fp16", "int8", "binary")]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))
    # 2. FP16 and INT8 are near-lossless; binary costs some accuracy but
    #    stays far above chance (0.25).
    fp32_acc = by_name["fp32"][2]
    assert abs(by_name["fp16"][2] - fp32_acc) < 0.03
    assert abs(by_name["int8"][2] - fp32_acc) < 0.10
    assert by_name["binary"][2] > 0.55
    # 3. Size ratios land near the storage arithmetic: 2x for fp16,
    #    ~4x for int8, and binary beyond int8.
    assert by_name["fp16"][1] == pytest.approx(by_name["fp32"][1] / 2,
                                               rel=0.01)
    assert by_name["binary"][1] < by_name["int8"][1]
