"""Txt-O — replica scaling: the multi-process serving tier vs one process.

``BENCH_pr4.json`` documented the GIL ceiling: intra-process threading
*lost* serving throughput (0.87-0.93x).  The replica tier answers with
processes — N executors, each a full interpreter, weights shared as one
resident mmap of the plan cache's blob.  This benchmark measures the
closed-loop serving throughput of:

1. the in-process engine (one worker, micro-batching) — the baseline,
2. the replica tier at 1, 2, and 4 processes with identical batching
   knobs,

for a compute-light workload (``mlp``, IPC-overhead dominated) and a
compute-heavier one (``tiny_convnet``, where multi-core scale should
pay).  Every row must finish with zero failures, zero restarts, and
zero shed requests — throughput bought with dropped work doesn't count.

``REPRO_BENCH_SMOKE=1`` shrinks request counts for CI smoke jobs.
Results are written to ``BENCH_pr6.json`` at the repo root.  The CI
speedup guard (>= 1.5x at 4 replicas over the in-process baseline, on
the convnet workload) only arms on hosts with at least 4 CPUs — on
smaller runners the numbers are recorded but cannot show scaling.
"""

import json
import os
import tempfile
from pathlib import Path

from repro.ir import build_model
from repro.serving import run_replica_bench

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REQUESTS = 32 if SMOKE else 256
WARMUP = 8 if SMOKE else 32

REPLICAS = (1, 2, 4)
MAX_BATCH = 4
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"


def replica_sweep(graph):
    with tempfile.TemporaryDirectory(prefix="repro-replica-bench-") \
            as cache_dir:
        rows = run_replica_bench(
            graph, replica_counts=REPLICAS, requests=REQUESTS,
            warmup=WARMUP, max_batch=MAX_BATCH, cache_dir=cache_dir)
    base = rows[0].throughput_rps
    for row in rows:
        assert row.failures == 0, f"{row.mode}-{row.replicas} dropped work"
        assert row.restarts == 0, f"{row.mode}-{row.replicas} restarted"
    return {
        "rows": [
            {
                "mode": row.mode,
                "replicas": row.replicas,
                "clients": row.clients,
                "requests": row.requests,
                "throughput_rps": row.throughput_rps,
                "mean_batch": row.mean_batch,
                "p50_ms": row.p50_ms,
                "p95_ms": row.p95_ms,
                "speedup": row.throughput_rps / base if base else 0.0,
            }
            for row in rows
        ],
    }


def render(results):
    lines = []
    for name, row in results.items():
        lines.append(name)
        for entry in row["rows"]:
            label = entry["mode"] if entry["replicas"] == 0 \
                else f"{entry['mode']}-{entry['replicas']}"
            lines.append(
                f"  {label:<12} {entry['throughput_rps']:>9.1f} req/s "
                f"mean_b {entry['mean_batch']:.2f} "
                f"p95 {entry['p95_ms']:.2f} ms "
                f"({entry['speedup']:.2f}x)")
    lines.append(f"host cpus: {os.cpu_count()}")
    return "\n".join(lines)


def test_txt_replica_scaling(benchmark, report):
    workloads = {
        "mlp": build_model("mlp"),
        "tiny_convnet": build_model("tiny_convnet"),
    }

    def study():
        return {name: replica_sweep(graph)
                for name, graph in workloads.items()}

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    report("txt_replica_scaling", render(results))
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "txt_replica_scaling",
        "smoke": SMOKE,
        "cpus": os.cpu_count(),
        "workloads": results,
    }, indent=2) + "\n")

    # Functional floor everywhere: every sweep completed all requests
    # (asserted in replica_sweep).  The scaling guard needs real cores
    # to mean anything: on >= 4-CPU hosts (the CI runner class), 4
    # replica processes must beat the in-process engine by >= 1.5x on
    # the compute-heavier workload.
    if (os.cpu_count() or 1) >= 4:
        convnet = results["tiny_convnet"]["rows"]
        at4 = next(entry for entry in convnet if entry["replicas"] == 4)
        assert at4["speedup"] >= 1.5, (
            f"4-replica speedup {at4['speedup']:.2f}x < 1.5x on "
            f"{os.cpu_count()}-cpu host")
