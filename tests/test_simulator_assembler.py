"""Tests for the RV32 assembler: golden encodings, labels, pseudo-ops."""

import pytest

from repro.simulator import Assembler, AssemblyError, assemble


def words(source, origin=0x80000000):
    blob = assemble(source, origin=origin)
    return [int.from_bytes(blob[i:i + 4], "little")
            for i in range(0, len(blob), 4)]


class TestGoldenEncodings:
    """Encodings checked against the RISC-V spec / gnu as output."""

    def test_addi(self):
        assert words("addi x1, x0, 5") == [0x00500093]

    def test_add(self):
        assert words("add x3, x1, x2") == [0x002081B3]

    def test_sub(self):
        assert words("sub x3, x1, x2") == [0x402081B3]

    def test_lui(self):
        assert words("lui x5, 0x12345") == [0x123452B7]

    def test_lw(self):
        assert words("lw x6, 8(x2)") == [0x00812303]

    def test_sw(self):
        assert words("sw x6, 12(x2)") == [0x00612623]

    def test_mul(self):
        assert words("mul x10, x11, x12") == [0x02C58533]

    def test_ecall_ebreak_mret(self):
        assert words("ecall") == [0x00000073]
        assert words("ebreak") == [0x00100073]
        assert words("mret") == [0x30200073]

    def test_csrrw(self):
        # csrrw x5, mscratch(0x340), x6
        assert words("csrrw x5, mscratch, x6") == [0x340312F3]

    def test_jal_forward(self):
        # jal x0, +8
        assert words("j skip\nnop\nskip:") == [0x0080006F, 0x00000013]

    def test_beq_backward(self):
        source = "loop:\nnop\nbeq x0, x0, loop"
        got = words(source)
        # branch offset -4
        assert got[1] == 0xFE000EE3

    def test_srai(self):
        assert words("srai x1, x2, 3") == [0x40315093]


class TestPseudoInstructions:
    def test_nop(self):
        assert words("nop") == [0x00000013]

    def test_mv(self):
        assert words("mv x1, x2") == [0x00010093]

    def test_li_small(self):
        got = words("li a0, 5")
        assert len(got) == 2  # lui + addi pair (lui of 0)

    def test_li_large_roundtrip(self):
        from repro.simulator import Machine, halt_with

        for value in (0, 1, -1, 0x7FFFFFFF, 0x80000000, 0xDEADBEEF, 2048,
                      -2048, 0xFFF, 0x1000):
            machine = Machine()
            machine.load_assembly(f"li a0, {value}" + halt_with(0))
            machine.run()
            assert machine.cpu.read_reg(10) == value & 0xFFFFFFFF, hex(value)

    def test_ret(self):
        assert words("ret") == [0x00008067]

    def test_not_neg_seqz_snez(self):
        from repro.simulator import Machine, halt_with

        machine = Machine()
        machine.load_assembly("""
            li   a0, 5
            not  a1, a0
            neg  a2, a0
            seqz a3, a0
            snez a4, a0
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(11) == 0xFFFFFFFA
        assert machine.cpu.read_reg(12) == (-5) & 0xFFFFFFFF
        assert machine.cpu.read_reg(13) == 0
        assert machine.cpu.read_reg(14) == 1

    def test_cfu_encoding_uses_custom0(self):
        got = words("cfu x1, x2, x3, 2, 5")[0]
        assert got & 0x7F == 0x0B            # custom-0 opcode
        assert (got >> 12) & 0x7 == 2        # funct3
        assert (got >> 25) & 0x7F == 5       # funct7


class TestLabels:
    def test_label_on_same_line(self):
        got = words("start: nop\nj start")
        assert len(got) == 2

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\nnop\na:\nnop")

    def test_unknown_label(self):
        with pytest.raises(AssemblyError, match="bad immediate/label"):
            assemble("j nowhere")

    def test_comments_stripped(self):
        assert words("nop # this is a comment\n# full line comment") == \
            [0x00000013]


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate x1, x2")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble("add x1, x2, x99")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError, match="out of range"):
            assemble("addi x1, x0, 5000")

    def test_branch_out_of_range(self):
        source = "beq x0, x0, far\n" + "nop\n" * 2000 + "far:"
        with pytest.raises(AssemblyError, match="out of range"):
            assemble(source)

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="bad memory operand"):
            assemble("lw x1, x2")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus x1")


class TestRegisters:
    def test_abi_aliases(self):
        # a0 == x10: both encodings identical
        assert words("addi a0, zero, 1") == words("addi x10, x0, 1")

    def test_fp_is_s0(self):
        assert words("mv fp, sp") == words("mv s0, x2")
