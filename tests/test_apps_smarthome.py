"""Tests for the smart-mirror use case."""

import numpy as np
import pytest

from repro.apps.smarthome import (
    PipelineSpec,
    PrivacyBoundary,
    PrivacyViolation,
    build_default_mirror,
)
from repro.core import train_readout
from repro.datasets import make_shapes_dataset
from repro.datasets.audio import keyword_waveform, make_keyword_dataset
from repro.hw import get_accelerator
from repro.ir import build_model


@pytest.fixture(scope="module")
def trained_models():
    def conv(seed):
        g = build_model("tiny_convnet", batch=8, image_size=32,
                        num_classes=4, seed=seed)
        ds = make_shapes_dataset(160, image_size=32, seed=seed)
        return train_readout(g, ds).graph.with_batch(1)

    speech_graph = build_model("mlp", batch=8, in_features=64,
                               hidden=(128,), num_classes=5, seed=4)
    speech = train_readout(speech_graph,
                           make_keyword_dataset(40, seed=4)).graph \
        .with_batch(1)
    return {"gesture": conv(1), "face": conv(2), "object": conv(3),
            "speech": speech}


@pytest.fixture(scope="module")
def mirror(trained_models):
    return build_default_mirror(trained_models)


class TestPrivacyBoundary:
    def test_local_transfer_logged(self):
        boundary = PrivacyBoundary()
        boundary.transfer("frame", "display")
        assert boundary.transfers == [("frame", "display")]
        assert boundary.offsite_transfers == 0

    def test_cloud_transfer_raises(self):
        boundary = PrivacyBoundary()
        with pytest.raises(PrivacyViolation, match="off-site"):
            boundary.transfer("camera-frame", "cloud-analytics")


class TestMirror:
    def test_four_pipelines(self, mirror):
        names = [p.name for p in mirror.pipelines]
        assert names == ["gesture", "face", "object", "speech"]

    def test_tick_produces_all_outputs(self, mirror):
        frame = make_shapes_dataset(1, image_size=32, seed=9).features[0]
        audio = keyword_waveform("lights", seed=None) \
            if False else keyword_waveform("lights")
        result = mirror.tick(frame, audio)
        assert set(result.outputs) == {"gesture", "face", "object", "speech"}
        assert result.latency_s > 0
        assert result.energy_j > 0

    def test_speech_pipeline_recognizes_keywords(self, mirror):
        frame = np.zeros((3, 32, 32), dtype=np.float32)
        rng = np.random.default_rng(0)
        hits = 0
        for keyword in ("mirror", "lights", "weather", "music"):
            audio = keyword_waveform(keyword, rng=rng)
            result = mirror.tick(frame, audio)
            hits += int(result.outputs["speech"] == keyword)
        assert hits >= 3

    def test_real_time_budget_met_on_embedded_platform(self, mirror):
        """Fig. 5 claim: all four networks fit the embedded budget."""
        frame = np.zeros((3, 32, 32), dtype=np.float32)
        result = mirror.tick(frame, keyword_waveform("silence"))
        assert result.within_budget
        total = sum(p.latency_s for p in mirror.predictions.values())
        assert total <= mirror.frame_budget_s

    def test_no_offsite_transfers_after_session(self, mirror):
        frame = np.zeros((3, 32, 32), dtype=np.float32)
        for _ in range(5):
            mirror.tick(frame, keyword_waveform("silence"))
        assert mirror.boundary.offsite_transfers == 0
        assert all(endpoint in PrivacyBoundary.LOCAL_ENDPOINTS
                   for _, endpoint in mirror.boundary.transfers)

    def test_low_power_operation(self, mirror):
        # "low power and energy efficiency computations a prime concern":
        # sustained draw below the uRECS-class budget.
        assert mirror.sustained_power_w < 15.0

    def test_budget_report_renders(self, mirror):
        text = mirror.budget_report()
        for name in ("gesture", "face", "object", "speech", "total"):
            assert name in text

    def test_class_count_validation(self, trained_models):
        with pytest.raises(ValueError, match="scores"):
            PipelineSpec("bad", trained_models["gesture"],
                         ("only", "two"), "video", lambda x: x)

    def test_platform_override(self, trained_models):
        cpu = build_default_mirror(trained_models,
                                   platform=get_accelerator("RPi-CM4"))
        default = build_default_mirror(trained_models)
        cpu_latency = sum(p.latency_s for p in cpu.predictions.values())
        npu_latency = sum(p.latency_s for p in default.predictions.values())
        # The ZU3 DPU default clearly outruns a Raspberry Pi CPU.
        assert npu_latency < cpu_latency
