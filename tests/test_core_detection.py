"""Tests for YOLO head decoding, NMS, and the detection report path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Detection,
    decode_yolo_head,
    detection_report,
    encode_yolo_target,
    non_max_suppression,
)
from repro.datasets.images import Box


def roundtrip(boxes, grid=3, stride=32, num_classes=4, image_size=96):
    head = encode_yolo_target(boxes, grid=grid, stride=stride,
                              num_classes=num_classes)
    detections = decode_yolo_head(head, stride=stride,
                                  num_classes=num_classes,
                                  image_size=image_size)
    return non_max_suppression(detections)


class TestDecodeEncode:
    def test_single_box_roundtrip(self):
        boxes = [Box(10, 10, 40, 42, 0)]
        detections = roundtrip(boxes)
        assert len(detections) == 1
        assert detections[0].box.iou(boxes[0]) > 0.9
        assert detections[0].box.label == 0
        assert detections[0].score > 0.9

    def test_multiple_boxes_different_cells(self):
        boxes = [Box(5, 5, 30, 30, 1), Box(60, 60, 90, 90, 3)]
        detections = roundtrip(boxes)
        assert len(detections) == 2
        labels = sorted(d.box.label for d in detections)
        assert labels == [1, 3]

    def test_empty_scene(self):
        assert roundtrip([]) == []

    def test_channel_count_checked(self):
        with pytest.raises(ValueError, match="channels"):
            decode_yolo_head(np.zeros((10, 3, 3), dtype=np.float32),
                             num_classes=4)

    def test_confidence_threshold_filters(self):
        boxes = [Box(10, 10, 40, 40, 0)]
        head = encode_yolo_target(boxes, grid=3, logit_scale=0.1)
        # Weak logits: objectness*class ~ 0.25; a high threshold drops it.
        assert decode_yolo_head(head, num_classes=4,
                                conf_threshold=0.9) == []

    def test_boxes_clipped_to_image(self):
        boxes = [Box(0, 0, 95, 95, 2)]
        detections = roundtrip(boxes, image_size=96)
        for d in detections:
            assert 0 <= d.box.x0 <= d.box.x1 <= 96
            assert 0 <= d.box.y0 <= d.box.y1 <= 96

    @given(st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 3)),
        min_size=1, max_size=4, unique_by=lambda t: (t[0], t[1])))
    @settings(max_examples=25, deadline=None)
    def test_property_one_box_per_cell_roundtrips(self, cells):
        boxes = []
        for cell_x, cell_y, label in cells:
            x0 = cell_x * 32 + 6
            y0 = cell_y * 32 + 6
            boxes.append(Box(x0, y0, x0 + 20, y0 + 20, label))
        detections = roundtrip(boxes)
        assert len(detections) == len(boxes)
        for box in boxes:
            best = max(detections, key=lambda d: d.box.iou(box))
            assert best.box.iou(box) > 0.8
            assert best.box.label == box.label


class TestNms:
    def test_suppresses_overlaps(self):
        detections = [
            Detection(Box(10, 10, 50, 50, 0), 0.9),
            Detection(Box(12, 12, 52, 52, 0), 0.8),   # duplicate
            Detection(Box(60, 60, 90, 90, 0), 0.7),
        ]
        kept = non_max_suppression(detections, iou_threshold=0.5)
        assert len(kept) == 2
        assert kept[0].score == 0.9

    def test_keeps_highest_score(self):
        detections = [
            Detection(Box(10, 10, 50, 50, 0), 0.6),
            Detection(Box(10, 10, 50, 50, 0), 0.95),
        ]
        kept = non_max_suppression(detections)
        assert len(kept) == 1
        assert kept[0].score == 0.95

    def test_different_labels_not_suppressed(self):
        detections = [
            Detection(Box(10, 10, 50, 50, 0), 0.9),
            Detection(Box(10, 10, 50, 50, 1), 0.8),
        ]
        assert len(non_max_suppression(detections)) == 2

    def test_empty(self):
        assert non_max_suppression([]) == []


class TestEndToEndReport:
    def test_oracle_detector_scores_perfect_ap(self):
        """encode -> decode -> NMS -> report: the full Kenning detection
        quality path on multi-scene ground truth."""
        rng = np.random.default_rng(0)
        scenes = []
        for _ in range(10):
            boxes = []
            for cell in rng.choice(9, size=rng.integers(1, 3),
                                   replace=False):
                cx, cy = int(cell) % 3, int(cell) // 3
                boxes.append(Box(cx * 32 + 4, cy * 32 + 4,
                                 cx * 32 + 28, cy * 32 + 28,
                                 int(rng.integers(4))))
            scenes.append(boxes)
        predictions = [roundtrip(boxes) for boxes in scenes]
        report = detection_report(predictions, scenes)
        assert report.average_precision > 0.95

    def test_noisy_detector_degrades_ap(self):
        scenes = [[Box(10, 10, 40, 40, 0)] for _ in range(5)]
        noisy = []
        for boxes in scenes:
            detections = roundtrip(boxes)
            # Add a confident false positive per scene.
            detections.append(Detection(Box(60, 60, 90, 90, 0), 0.99))
            noisy.append(detections)
        report = detection_report(noisy, scenes)
        clean = detection_report([roundtrip(b) for b in scenes], scenes)
        assert report.average_precision < clean.average_precision
