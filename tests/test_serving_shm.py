"""Tests for the replica tier's zero-copy shared-memory data plane.

Covers the slot codec (layout, descriptor table, single-copy frame
packing), ring/channel lifecycle (backpressure, retirement, quarantine,
wraparound), the tier end to end over shm (bitwise identity vs the pipe
codec and the direct executor across float/fp16/quantized graphs, crash
reclaim, fallback), and the deadline-aware tier front end.

Bitwise comparisons always run under *matched batch composition*
(``max_batch=1`` or the dispatch-gate seam): BLAS results legitimately
differ across batch shapes, in-process or not, so only equal-shape runs
are comparable bit for bit.
"""

import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import build_model
from repro.optim import CastFP16, QuantizePass, calibrate, fuse_graph
from repro.runtime import Executor
from repro.serving import ReplicaEngine, RequestShedError, sample_feeds
from repro.serving.replicas import (
    _KIND_REQUEST,
    _ZERO_STATS,
    _pack_frame,
    _unpack_frame,
    decode_tensors,
    encode_tensors,
    pack_tensor_frame,
)
from repro.serving.shm import (
    SLOT_ALIGN,
    ShmAttachment,
    ShmChannel,
    align_up,
    layout_tensors,
    pack_descriptors,
    read_tensors,
    required_slot_bytes,
    shm_available,
    unpack_descriptors,
    write_tensors,
)

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="POSIX shared memory unavailable")


def mixed_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "fp32": rng.standard_normal((2, 3, 4)).astype(np.float32),
        "fp16": rng.standard_normal((5,)).astype(np.float16),
        "int8": rng.integers(-128, 127, (3, 3), dtype=np.int8),
        "strided": np.arange(24, dtype=np.float32).reshape(4, 6).T,
        "scalarish": np.ones((1,), dtype=np.float64),
    }


def segment_files(names):
    return [name for name in names
            if os.path.exists(os.path.join("/dev/shm", name))]


class TestSlotLayout:
    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == SLOT_ALIGN
        assert align_up(SLOT_ALIGN) == SLOT_ALIGN
        assert align_up(SLOT_ALIGN + 1) == 2 * SLOT_ALIGN

    def test_layout_is_aligned_sorted_and_sized(self):
        arrays = mixed_arrays()
        descs, total = layout_tensors(arrays)
        assert [desc.name for desc in descs] == sorted(arrays)
        for desc in descs:
            assert desc.offset % SLOT_ALIGN == 0
            assert desc.nbytes == arrays[desc.name].nbytes
        assert total == sum(align_up(a.nbytes) for a in arrays.values())

    def test_write_read_roundtrip_bitwise(self):
        arrays = mixed_arrays(1)
        descs, total = layout_tensors(arrays)
        slot = memoryview(bytearray(total))
        write_tensors(slot, arrays, descs)
        back = read_tensors(slot, descs)
        for name, array in arrays.items():
            assert back[name].dtype == array.dtype
            assert back[name].shape == array.shape
            # Bitwise, not allclose: the identity guarantee rests here.
            assert back[name].tobytes() == \
                np.ascontiguousarray(array).tobytes()
            assert not back[name].flags.writeable

    def test_descriptor_table_roundtrip(self):
        descs, _ = layout_tensors(mixed_arrays(2))
        payload = pack_descriptors(descs)
        back, consumed = unpack_descriptors(payload)
        assert consumed == len(payload)
        assert back == descs

    def test_required_slot_bytes_matches_actual_layout(self):
        graph = build_model("mlp", batch=1)
        for batch in (1, 4):
            feeds = {
                spec.name: np.zeros((batch,) + tuple(spec.shape[1:]),
                                    dtype=spec.dtype.to_numpy())
                for spec in graph.inputs
            }
            _, total = layout_tensors(feeds)
            assert total == required_slot_bytes(graph.inputs, batch)


class TestPackTensorFrame:
    def test_wire_compatible_with_legacy_codec(self):
        # Byte-for-byte equal to the two-stage encode + frame pack the
        # pipe path used before: replicas on either codec interoperate.
        arrays = mixed_arrays(3)
        stats = (1, 2, 3, 4, 5)
        fast = pack_tensor_frame(_KIND_REQUEST, 42, stats, arrays)
        legacy = _pack_frame(_KIND_REQUEST, 42, stats,
                             encode_tensors(arrays))
        assert bytes(fast) == bytes(legacy)

    def test_roundtrip_through_frame_codec(self):
        arrays = mixed_arrays(4)
        frame = pack_tensor_frame(_KIND_REQUEST, 7, _ZERO_STATS, arrays)
        kind, request_id, stats, payload = _unpack_frame(bytes(frame))
        assert (kind, request_id) == (_KIND_REQUEST, 7)
        decoded = decode_tensors(payload)
        for name, array in arrays.items():
            assert decoded[name].tobytes() == \
                np.ascontiguousarray(array).tobytes()


class TestChannelLifecycle:
    def test_slot_backpressure_and_lifo_reuse(self):
        channel = ShmChannel(slots=2, request_slot_bytes=256,
                             response_slot_bytes=256, generation=0)
        try:
            first, second = channel.acquire_slot(), channel.acquire_slot()
            assert {first, second} == {0, 1}
            assert channel.acquire_slot() is None     # backpressure
            channel.release_slot(second)
            assert channel.acquire_slot() == second   # LIFO: warm slot
        finally:
            channel.retire()

    def test_retire_unlinks_segments_and_is_idempotent(self):
        channel = ShmChannel(slots=1, request_slot_bytes=64,
                             response_slot_bytes=64, generation=0)
        names = list(channel.segment_names())
        assert segment_files(names) == names
        channel.retire()
        assert segment_files(names) == []
        assert channel.acquire_slot() is None
        channel.retire()                              # idempotent

    def test_retire_with_live_views_quarantines_without_leak(self):
        # A crash can race a slot read: retirement must drop the /dev/shm
        # names immediately even while an exported numpy view pins the
        # mapping, and the draining view must stay readable.
        channel = ShmChannel(slots=1, request_slot_bytes=256,
                             response_slot_bytes=256, generation=0)
        arrays = {"x": np.arange(16, dtype=np.float32)}
        descs, _ = layout_tensors(arrays)
        write_tensors(channel.request_ring.slot_view(0), arrays, descs)
        view = read_tensors(channel.request_ring.slot_view(0), descs)["x"]
        names = list(channel.segment_names())
        channel.retire()
        assert segment_files(names) == []             # names gone now
        assert view.tobytes() == arrays["x"].tobytes()  # mapping drains
        del view
        channel.retire()                              # collects mapping

    def test_attachment_roundtrip_and_oversize_response(self):
        channel = ShmChannel(slots=2, request_slot_bytes=4096,
                             response_slot_bytes=256, generation=3)
        try:
            attachment = ShmAttachment(channel.spec())
            try:
                assert attachment.generation == 3
                feeds = {"a": np.arange(12, dtype=np.float32),
                         "b": np.full((2, 2), 7, dtype=np.int8)}
                descs, _ = layout_tensors(feeds)
                slot = channel.acquire_slot()
                write_tensors(channel.request_ring.slot_view(slot),
                              feeds, descs)
                views = attachment.request_views(slot, descs)
                for name in feeds:
                    assert views[name].tobytes() == feeds[name].tobytes()
                    assert not views[name].flags.writeable
                outputs = {"y": np.linspace(0, 1, 8).astype(np.float32)}
                out_descs = attachment.write_response(slot, outputs)
                assert out_descs is not None
                got = read_tensors(
                    channel.response_ring.slot_view(slot), out_descs)
                assert got["y"].tobytes() == outputs["y"].tobytes()
                # Oversize outputs signal pipe fallback, slot untouched.
                big = {"y": np.zeros(4096, dtype=np.float32)}
                assert attachment.write_response(slot, big) is None
                views = got = None      # release exports before close
            finally:
                attachment.close()
        finally:
            channel.retire()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=48),
                    min_size=8, max_size=32),
           st.integers(min_value=0, max_value=2**31))
    def test_ring_wraparound_property(self, sizes, seed):
        # Many more writes than slots: every slot index is reused
        # (wraparound) and each generation of contents must read back
        # bitwise despite whatever the previous occupant left behind.
        rng = np.random.default_rng(seed)
        channel = ShmChannel(slots=2, request_slot_bytes=64 * 48,
                             response_slot_bytes=64, generation=0)
        try:
            for step, size in enumerate(sizes):
                arrays = {"x": rng.standard_normal(size)
                          .astype(np.float32)}
                descs, _ = layout_tensors(arrays)
                slot = channel.acquire_slot()
                assert slot is not None
                view = channel.request_ring.slot_view(slot)
                write_tensors(view, arrays, descs)
                back = read_tensors(view, descs)["x"]
                assert back.tobytes() == arrays["x"].tobytes()
                back = view = None      # release exports before retire
                channel.release_slot(slot)
        finally:
            channel.retire()


@pytest.fixture(scope="module")
def mlp_graph():
    return build_model("mlp")


@pytest.fixture(scope="module")
def mlp_feeds(mlp_graph):
    return sample_feeds(mlp_graph, seed=3)


@pytest.fixture(scope="module")
def shm_tier(mlp_graph, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("shm-tier-cache")
    with ReplicaEngine(mlp_graph, replicas=2, max_batch=4,
                       max_latency_ms=10.0, max_inflight=2,
                       cache_dir=cache_dir, shm=True) as engine:
        yield engine


def quantized_net():
    g = fuse_graph(build_model("tiny_convnet", batch=1))
    rng = np.random.default_rng(7)
    feeds = [{"input": rng.normal(size=(1, 3, 32, 32))
              .astype(np.float32)} for _ in range(3)]
    return QuantizePass(calibrate(g, feeds)).run(g)


ZOO_VARIANTS = {
    "float-mlp": lambda: build_model("mlp", batch=1),
    "fp16-mlp": lambda: CastFP16().run(build_model("mlp", batch=1)),
    "quantized-convnet": quantized_net,
}


class TestShmTier:
    def test_bitwise_identical_to_direct_executor(self, shm_tier,
                                                  mlp_graph):
        # Same gated-batch harness as the pipe-codec test: coalesce
        # deterministic groups of max_batch and demand bit-for-bit
        # equality with an in-process run of the identical batch.
        size = shm_tier.max_batch
        samples = [sample_feeds(mlp_graph, seed=seed)
                   for seed in range(2 * size)]
        shm_tier._dispatch_gate.clear()
        try:
            futures = [shm_tier.infer(sample) for sample in samples]
        finally:
            shm_tier._dispatch_gate.set()
        results = [future.result(timeout=60) for future in futures]
        direct = Executor(mlp_graph.with_batch(size))
        for start in range(0, len(samples), size):
            group = samples[start:start + size]
            batched = {
                name: np.concatenate([s[name] for s in group], axis=0)
                for name in group[0]
            }
            reference = direct.run(batched)
            for row, result in enumerate(results[start:start + size]):
                for name in reference:
                    assert result[name].tobytes() == \
                        reference[name][row:row + 1].tobytes()

    def test_counters_drain_and_segments_live(self, shm_tier, mlp_feeds):
        before = shm_tier.shm_requests
        shm_tier.infer_many([mlp_feeds] * 8, timeout=60)
        assert shm_tier.shm_enabled
        assert shm_tier.shm_requests > before
        assert shm_tier.shm_bytes_inflight == 0       # all drained
        names = shm_tier.shm_segment_names()
        assert len(names) == 4                        # 2 rings x 2 replicas
        assert segment_files(names) == names

    def test_telemetry_exports_shm_series(self, shm_tier, mlp_feeds):
        from repro.telemetry import registry_to_json
        shm_tier.infer_sync(mlp_feeds, timeout=60)
        payload = registry_to_json()
        names = {family["name"] for family in payload["families"]}
        assert "repro_replica_shm_bytes_inflight" in names
        assert "repro_replica_shm_requests_total" in names
        assert "repro_replica_shm_fallbacks_total" in names
        assert "repro_replica_shm_slot_wait_seconds" in names

    def test_oversize_request_falls_back_to_pipe(self, shm_tier,
                                                 mlp_graph):
        # Shrink the advertised slot capacity: every batch now looks
        # oversize, the tier must degrade to the pipe codec per-frame —
        # and still answer bitwise-correctly.
        rings = [replica.channel.request_ring
                 for replica in shm_tier._replicas]
        saved = [ring.slot_bytes for ring in rings]
        fallbacks = shm_tier.shm_fallbacks
        sample = sample_feeds(mlp_graph, seed=11)
        expected = Executor(mlp_graph.with_batch(1)).run(sample)
        with shm_tier._cond:
            for ring in rings:
                ring.slot_bytes = 0
        try:
            result = shm_tier.infer_sync(sample, timeout=60)
        finally:
            with shm_tier._cond:
                for ring, size in zip(rings, saved):
                    ring.slot_bytes = size
        assert shm_tier.shm_fallbacks > fallbacks
        for name in expected:
            assert result[name].tobytes() == expected[name].tobytes()

    def test_env_kill_switch_disables_data_plane(self, mlp_graph,
                                                 tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPLICA_SHM", "0")
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=1,
                           cache_dir=tmp_path) as engine:
            assert not engine.shm_enabled
            assert engine.shm_segment_names() == []
            assert engine.infer_sync(sample_feeds(mlp_graph), timeout=60)
            assert engine.shm_requests == 0


class TestZooBitwiseIdentity:
    @pytest.mark.parametrize("variant", sorted(ZOO_VARIANTS))
    def test_shm_matches_pipe_and_direct(self, variant, tmp_path):
        # max_batch=1 pins the batch composition, so the three paths
        # (direct executor, pipe tier, shm tier) run identical kernels
        # on identical shapes and must agree bit for bit.
        graph = ZOO_VARIANTS[variant]()
        samples = [sample_feeds(graph, seed=seed) for seed in range(6)]
        direct = Executor(graph.with_batch(1))
        expected = [direct.run(sample) for sample in samples]
        outputs = {}
        for shm in (False, True):
            with ReplicaEngine(graph, replicas=1, max_batch=1,
                               queue_limit=64, cache_dir=tmp_path,
                               shm=shm) as engine:
                outputs[shm] = engine.infer_many(samples, timeout=120)
                if shm:
                    assert engine.shm_requests >= len(samples)
                    assert engine.shm_fallbacks == 0
        for reference, pipe_out, shm_out in zip(expected, outputs[False],
                                                outputs[True]):
            for name in reference:
                assert pipe_out[name].dtype == reference[name].dtype
                assert pipe_out[name].tobytes() == \
                    reference[name].tobytes()
                assert shm_out[name].tobytes() == \
                    reference[name].tobytes()


class TestShmLifecycle:
    def test_crash_with_slots_in_flight_reclaims_generation(
            self, mlp_graph, tmp_path):
        # Kill a replica while batches occupy ring slots: the old
        # generation's segments must vanish from /dev/shm, the restart
        # must attach a *fresh* generation, and post-restart answers
        # must still be bitwise-identical to the direct executor.
        sample = sample_feeds(mlp_graph, seed=5)
        expected = Executor(mlp_graph.with_batch(1)).run(sample)
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=1,
                           queue_limit=64, max_inflight=2,
                           restart_limit=2, cache_dir=tmp_path,
                           shm=True) as engine:
            old_names = engine.shm_segment_names()
            old_generation = engine._replicas[0].channel.generation
            assert segment_files(old_names) == old_names
            futures = [engine.infer(sample) for _ in range(8)]
            os.kill(engine.replica_stats()[0].pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = engine.replica_stats()
                if engine.restarts >= 1 and all(s.alive for s in stats):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("replica was not restarted in time")
            for future in futures:          # crashed or completed; no hang
                try:
                    future.result(timeout=60)
                except Exception:
                    pass
            assert engine.shm_bytes_inflight == 0
            new_names = engine.shm_segment_names()
            new_generation = engine._replicas[0].channel.generation
            assert new_generation > old_generation
            assert not set(new_names) & set(old_names)
            assert segment_files(old_names) == []     # reclaimed now
            result = engine.infer_sync(sample, timeout=60)
            for name in expected:
                assert result[name].tobytes() == expected[name].tobytes()
        # (a) nothing outlives close(): neither generation's segments.
        assert engine.shm_segment_names() == []
        assert segment_files(old_names + new_names) == []

    def test_close_unlinks_every_segment(self, mlp_graph, tmp_path):
        engine = ReplicaEngine(mlp_graph, replicas=2, max_batch=2,
                               cache_dir=tmp_path, shm=True)
        names = engine.shm_segment_names()
        assert segment_files(names) == names
        engine.close(timeout=30)
        assert engine.shm_segment_names() == []
        assert segment_files(names) == []


class TestAdaptiveTierFrontEnd:
    def test_doomed_requests_shed_before_the_data_plane(
            self, mlp_graph, mlp_feeds, tmp_path):
        # A request whose deadline already passed while queued must be
        # shed by the front end — never serialized, never sent across
        # the data plane — while fresh traffic keeps flowing.
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                           max_latency_ms=1.0, queue_limit=64,
                           cache_dir=tmp_path, adaptive=True,
                           headroom_ms=0.0) as engine:
            # Warm the latency model past min_samples so the assembly
            # path can cost batches (a cold model never sheds).
            engine.infer_many([mlp_feeds] * 16, timeout=60)
            sent_before = engine.shm_requests
            engine._dispatch_gate.clear()
            doomed = engine.infer(mlp_feeds, slo_ms=0.01)
            time.sleep(0.05)                # deadline passes in queue
            engine._dispatch_gate.set()
            with pytest.raises(RequestShedError):
                doomed.result(timeout=30)
            assert engine.shed_requests >= 1
            assert engine.metrics().shed >= 1
            # The shed request never crossed the data plane.
            assert engine.shm_requests == sent_before
            assert engine.infer_sync(mlp_feeds, timeout=60)

    def test_tier_latency_model_persists_across_tiers(
            self, mlp_graph, mlp_feeds, tmp_path):
        first = ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                              cache_dir=tmp_path, adaptive=True)
        try:
            first.infer_many([mlp_feeds] * 8, timeout=60)
            model_file = first._latency_model_path
            assert first.latency_model.observations > 0
        finally:
            first.close(timeout=30)
        assert model_file is not None and model_file.exists()
        second = ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                               cache_dir=tmp_path, adaptive=True)
        try:
            # Warm start: the persisted tier model seeds the new tier.
            assert second.latency_model.observations > 0
        finally:
            second.close(timeout=30)
