"""Tests for repro.optim.pruning: connection and neuron pruning."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.builder import GraphBuilder
from repro.optim import ConnectionPrune, NeuronPrune, fuse_graph, sparsity_of
from repro.runtime import run_graph


class TestConnectionPrune:
    def test_target_sparsity_reached(self):
        g = build_model("mlp", batch=1, in_features=64, hidden=(128,),
                        num_classes=8)
        pruned = ConnectionPrune(0.5).run(g)
        report = sparsity_of(pruned)
        assert 0.45 <= report.global_sparsity <= 0.55

    def test_zero_fraction_is_noop(self):
        g = build_model("mlp", batch=1)
        pruned = ConnectionPrune(0.0).run(g)
        for name in g.initializers:
            np.testing.assert_array_equal(pruned.initializers[name],
                                          g.initializers[name])

    def test_small_layers_skipped(self):
        g = build_model("mlp", batch=1, in_features=4, hidden=(4,),
                        num_classes=2)
        pruner = ConnectionPrune(0.9, min_weights=1000)
        pruner.run(g)
        assert pruner.details()["layers_pruned"] == 0

    def test_keeps_largest_weights(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8))
        b.graph.add_initializer(
            "w", np.arange(1, 65, dtype=np.float32).reshape(8, 8))
        b.graph.add_node("dense", ["x", "w"], ["y"], name="fc")
        g = b.finish("y") if False else b.graph
        g.set_outputs(["y"])
        g.validate()
        pruned = ConnectionPrune(0.5, min_weights=1).run(g)
        w = pruned.initializers["w"]
        # the 32 largest values (33..64) survive
        assert np.count_nonzero(w) == 32
        assert w.max() == 64 and (w[w > 0].min() >= 33)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ConnectionPrune(1.0)
        with pytest.raises(ValueError):
            ConnectionPrune(-0.1)

    def test_graph_still_executes(self):
        g = build_model("tiny_convnet", batch=1)
        pruned = ConnectionPrune(0.8).run(g)
        x = np.zeros((1, 3, 32, 32), dtype=np.float32)
        run_graph(pruned, {"input": x})


class TestNeuronPrune:
    def test_channels_removed_and_valid(self):
        g = fuse_graph(build_model("tiny_convnet", batch=1))
        pruned = NeuronPrune(0.5).run(g)
        pruned.validate()
        assert pruned.num_parameters() < g.num_parameters()

    def test_executes_after_pruning(self):
        g = fuse_graph(build_model("tiny_convnet", batch=2))
        pruned = NeuronPrune(0.25).run(g)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)) \
            .astype(np.float32)
        out = run_graph(pruned, {"input": x})[pruned.output_names[0]]
        assert out.shape == (2, 10)

    def test_compute_shrinks(self):
        g = fuse_graph(build_model("tiny_convnet", batch=1))
        pruned = NeuronPrune(0.5).run(g)
        assert pruned.total_cost().macs < g.total_cost().macs * 0.8

    def test_min_channels_floor(self):
        g = fuse_graph(build_model("tiny_convnet", batch=1))
        pruned = NeuronPrune(0.99, min_channels=4).run(g)
        pruned.validate()
        for node in pruned.nodes:
            if node.op_type in ("conv2d", "fused_conv2d"):
                assert pruned.initializers[node.inputs[1]].shape[0] >= 4

    def test_readout_layer_never_pruned(self):
        g = fuse_graph(build_model("mlp", batch=1, num_classes=7))
        pruned = NeuronPrune(0.5).run(g)
        final = [n for n in pruned.nodes
                 if n.op_type in ("dense", "fused_dense")][-1]
        assert pruned.initializers[final.inputs[1]].shape[0] == 7

    def test_residual_networks_conservatively_skipped(self):
        # Bottleneck adds create multi-consumer tensors; the pruner must
        # not corrupt them.
        g = fuse_graph(build_model("mobilenet_v3_small", batch=1,
                                   image_size=64, num_classes=5))
        pruned = NeuronPrune(0.3).run(g)
        pruned.validate()
        x = np.zeros((1, 3, 64, 64), dtype=np.float32)
        out = run_graph(pruned, {"input": x})[pruned.output_names[0]]
        assert out.shape == (1, 5)

    def test_keeps_high_saliency_channels(self):
        b = GraphBuilder()
        x = b.input("x", (1, 2, 4, 4))
        # Conv with 8 channels of increasing magnitude, then a consumer.
        w1 = np.zeros((8, 2, 1, 1), dtype=np.float32)
        for i in range(8):
            w1[i] = (i + 1) * 0.1
        c1 = b.constant(w1, name="w1")
        b.graph.add_node("conv2d", ["x", "w1"], ["h"], name="conv1")
        w2 = b.weight((4, 8, 1, 1), name="w2")
        b.graph.add_node("conv2d", ["h", "w2"], ["y"], name="conv2")
        g = b.graph
        g.set_outputs(["y"])
        g.validate()
        pruned = NeuronPrune(0.5, min_channels=1).run(g)
        kept = pruned.initializers["w1"]
        assert kept.shape[0] == 4
        np.testing.assert_allclose(kept[:, 0, 0, 0],
                                   [0.5, 0.6, 0.7, 0.8], rtol=1e-5)
        assert pruned.initializers["w2"].shape == (4, 4, 1, 1)
