"""Tests for the ahead-of-time specialization stage.

Covers constant folding (bitwise by construction), batchnorm folding into
dense layers, the ``specialize_graph`` pipeline, serialization round-trips
of specialized graphs, weight prepacking, and bitwise zoo equivalence of
``load_or_build`` plans for every specialized path: float, binary, and
quantized — including the arena (``out=``) execution variants.
"""

import numpy as np
import pytest

from repro.ir import available_models, build_model
from repro.ir.graph import Graph
from repro.ir.serialization import graph_fingerprint, load_graph, save_graph
from repro.ir.tensor import DType, TensorSpec
from repro.optim import (
    AOTConfig,
    ConstantFold,
    FoldBatchNorm,
    QuantizePass,
    binarize,
    calibrate,
    fuse_graph,
    specialize_graph,
)
from repro.runtime import Executor, PlanCache, compile_plan, load_or_build

ZOO_OVERRIDES = {
    "resnet50": {"image_size": 64},
    "yolov4": {"image_size": 64},
    "mobilenet_v3_large": {"image_size": 64},
    "mobilenet_v3_small": {"image_size": 64},
}


def zoo_graph(name, batch=1):
    return build_model(name, batch=batch, **ZOO_OVERRIDES.get(name, {}))


def reference_feeds(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {
        spec.name: rng.normal(size=spec.shape).astype(spec.dtype.to_numpy())
        for spec in graph.inputs
    }


def quantized_net(batch=2):
    g = fuse_graph(build_model("tiny_convnet", batch=batch))
    rng = np.random.default_rng(7)
    feeds = [{"input": rng.normal(size=(batch, 3, 32, 32))
              .astype(np.float32)} for _ in range(3)]
    return QuantizePass(calibrate(g, feeds)).run(g)


def assert_bitwise(expected, got):
    assert set(expected) == set(got)
    for name, value in expected.items():
        assert got[name].dtype == value.dtype
        np.testing.assert_array_equal(got[name], value)


class TestConstantFold:
    def _weight_chain(self):
        g = Graph("const_chain")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_initializer("a", np.arange(4, dtype=np.float32).reshape(1, 4))
        g.add_initializer("b", np.full((1, 4), 0.5, dtype=np.float32))
        g.add_node("add", ["a", "b"], ["c"], name="fold_me")
        g.add_node("mul", ["c", "c"], ["d"], name="fold_me_too")
        g.add_node("add", ["x", "d"], ["y"], name="keep_me")
        g.set_outputs(["y"])
        return g

    def test_folds_weight_only_chain(self):
        g = self._weight_chain()
        folded = ConstantFold().run(g)
        assert [n.name for n in folded.nodes] == ["keep_me"]
        assert "d" in folded.initializers
        # Dead intermediates of the folded chain are pruned.
        assert "c" not in folded.initializers

    def test_fold_is_bitwise(self):
        g = self._weight_chain()
        feeds = reference_feeds(g)
        assert_bitwise(Executor(g).run(feeds),
                       Executor(ConstantFold().run(g)).run(feeds))

    def test_reports_folded_count(self):
        pass_ = ConstantFold()
        pass_.run(self._weight_chain())
        assert pass_.details()["nodes_folded"] == 2

    def test_output_producing_nodes_not_folded(self):
        g = Graph("const_out")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_initializer("a", np.ones((1, 4), dtype=np.float32))
        g.add_node("add", ["a", "a"], ["y"], name="produces_output")
        g.add_node("identity", ["x"], ["z"], name="passthrough")
        g.set_outputs(["y", "z"])
        folded = ConstantFold().run(g)
        assert {n.name for n in folded.nodes} == \
            {"produces_output", "passthrough"}

    def test_original_graph_untouched(self):
        g = self._weight_chain()
        ConstantFold().run(g)
        assert len(g.nodes) == 3 and "d" not in g.initializers


class TestFoldBatchNorm:
    def test_folds_into_dense(self):
        g = Graph("dense_bn")
        g.add_input(TensorSpec("x", (2, 8)))
        rng = np.random.default_rng(3)
        g.add_initializer("w", rng.normal(size=(5, 8)).astype(np.float32))
        g.add_initializer("gamma", rng.uniform(0.5, 2, 5).astype(np.float32))
        g.add_initializer("beta", rng.normal(size=5).astype(np.float32))
        g.add_initializer("mean", rng.normal(size=5).astype(np.float32))
        g.add_initializer("var", rng.uniform(0.5, 2, 5).astype(np.float32))
        g.add_node("dense", ["x", "w"], ["h"])
        g.add_node("batchnorm", ["h", "gamma", "beta", "mean", "var"], ["y"])
        g.set_outputs(["y"])
        feeds = reference_feeds(g)
        expected = Executor(g).run(feeds)
        folded = FoldBatchNorm().run(g)
        assert [n.op_type for n in folded.nodes] == ["dense"]
        got = Executor(folded).run(feeds)
        # The fold rewires the batchnorm's output onto the dense node.
        np.testing.assert_allclose(got[folded.output_names[0]],
                                   expected["y"], rtol=1e-5, atol=1e-5)


class TestSpecializeGraph:
    def test_default_config_is_bitwise(self):
        g = zoo_graph("tiny_convnet")
        feeds = reference_feeds(g)
        specialized = specialize_graph(g)
        assert_bitwise(Executor(g).run(feeds),
                       Executor(specialized).run(feeds))

    def test_batchnorm_config_folds_and_stays_close(self):
        g = zoo_graph("tiny_convnet")
        feeds = reference_feeds(g)
        expected = Executor(g).run(feeds)
        specialized = specialize_graph(
            g, AOTConfig(fold_batchnorm=True, fuse_activations=True))
        assert not any(n.op_type == "batchnorm" for n in specialized.nodes)
        got = Executor(specialized).run(feeds)
        for name, value in expected.items():
            np.testing.assert_allclose(got[name], value,
                                       rtol=1e-4, atol=1e-4)

    def test_serialization_round_trip_of_specialized_graph(self, tmp_path):
        g = zoo_graph("tiny_convnet")
        feeds = reference_feeds(g)
        specialized = specialize_graph(g)
        path = save_graph(specialized, tmp_path / "specialized.json")
        reloaded = load_graph(path)
        assert graph_fingerprint(reloaded) == graph_fingerprint(specialized)
        assert_bitwise(Executor(g).run(feeds), Executor(reloaded).run(feeds))


class TestPrepacking:
    def test_plans_carry_packs_by_default(self):
        plan = compile_plan(zoo_graph("tiny_convnet"))
        assert plan.packs  # conv weights prepacked into GEMM layout
        assert not compile_plan(zoo_graph("tiny_convnet"),
                                prepack=False).packs

    def test_binary_packs_are_bitplanes(self):
        g = binarize(zoo_graph("tiny_convnet"))
        plan = compile_plan(g)
        bit_packs = [p for p in plan.packs.values() if "bits" in p]
        assert bit_packs
        for pack in bit_packs:
            assert pack["bits"].dtype == np.uint8  # 8 weights per byte

    def test_packed_and_unpacked_quantized_plans_agree_bitwise(self):
        g = quantized_net()
        feeds = reference_feeds(g)
        assert_bitwise(
            Executor(g, plan=compile_plan(g, prepack=False)).run(feeds),
            Executor(g, plan=compile_plan(g, prepack=True)).run(feeds))

    def test_prewarmed_first_run_allocates_nothing(self):
        g = zoo_graph("tiny_convnet")
        executor = Executor(g, reuse_buffers=True, prewarm=True)
        arena = executor.plan.arena
        baseline = arena.stats.snapshot()
        assert baseline.allocations > 0  # the reserve itself
        outputs = executor.run(reference_feeds(g))
        assert arena.stats.allocations == baseline.allocations
        assert arena.stats.large_allocations == baseline.large_allocations
        executor.recycle(outputs)


class TestSpecializedPathsBitwise:
    """Every specialized path agrees bitwise with the plain executor."""

    @pytest.mark.parametrize("name", available_models())
    def test_float_zoo_warm_plan_bitwise(self, name, tmp_path):
        g = zoo_graph(name)
        feeds = reference_feeds(g)
        expected = Executor(g).run(feeds)
        cache = PlanCache(tmp_path)
        load_or_build(g, cache=cache)
        warm = load_or_build(g, cache=cache)
        assert warm.from_cache
        assert_bitwise(expected,
                       Executor(warm.graph, plan=warm.plan).run(feeds))

    @pytest.mark.parametrize("variant", ["binary", "quantized"])
    def test_compressed_paths_warm_plan_bitwise(self, variant, tmp_path):
        g = binarize(zoo_graph("tiny_convnet")) if variant == "binary" \
            else quantized_net()
        feeds = reference_feeds(g)
        expected = Executor(g).run(feeds)
        cache = PlanCache(tmp_path)
        load_or_build(g, cache=cache)
        warm = load_or_build(g, cache=cache)
        assert warm.from_cache
        assert_bitwise(expected,
                       Executor(warm.graph, plan=warm.plan).run(feeds))
        # Arena (out=) execution over the cached plan, twice.
        executor = Executor(warm.graph, plan=warm.plan, reuse_buffers=True)
        for _ in range(2):
            got = executor.run(feeds)
            assert_bitwise(expected, got)
            executor.recycle(got)
