"""Tests for repro.runtime.executor: dispatch, feeds, hooks."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.graph import Graph
from repro.ir.tensor import DType, TensorSpec
from repro.runtime import ExecutionError, Executor, run_graph


def dense_graph():
    g = Graph("d")
    g.add_input(TensorSpec("x", (2, 3)))
    g.add_initializer("w", np.array([[1, 0, 0], [0, 2, 0]], dtype=np.float32))
    g.add_initializer("b", np.array([0.5, -0.5], dtype=np.float32))
    g.add_node("dense", ["x", "w", "b"], ["y"], name="fc")
    g.set_outputs(["y"])
    return g


class TestBasicExecution:
    def test_dense_result(self):
        x = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.float32)
        out = run_graph(dense_graph(), {"x": x})["y"]
        np.testing.assert_allclose(out, [[1.5, 3.5], [4.5, 9.5]])

    def test_model_zoo_graph_runs(self):
        g = build_model("tiny_convnet", batch=2)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)) \
            .astype(np.float32)
        out = run_graph(g, {"input": x})[g.output_names[0]]
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)

    def test_multi_output_graph(self):
        g = build_model("tiny_yolo")
        x = np.zeros((1, 3, 96, 96), dtype=np.float32)
        out = run_graph(g, {"input": x})
        assert len(out) == 1

    def test_keep_intermediates(self):
        executor = Executor(dense_graph(), keep_intermediates=True)
        env = executor.run({"x": np.zeros((2, 3), dtype=np.float32)})
        assert "x" in env and "w" in env and "y" in env


class TestFeedValidation:
    def test_missing_feed(self):
        with pytest.raises(ExecutionError, match="missing feed"):
            run_graph(dense_graph(), {})

    def test_wrong_shape(self):
        with pytest.raises(ExecutionError, match="shape"):
            run_graph(dense_graph(), {"x": np.zeros((3, 3), dtype=np.float32)})

    def test_unknown_feed(self):
        with pytest.raises(ExecutionError, match="unknown feed"):
            run_graph(dense_graph(), {
                "x": np.zeros((2, 3), dtype=np.float32),
                "extra": np.zeros(1),
            })

    def test_feed_cast_to_spec_dtype(self):
        out = run_graph(dense_graph(), {"x": np.ones((2, 3), dtype=np.float64)})
        assert out["y"].dtype == np.float32


class TestHooks:
    def test_observation_hook(self):
        executor = Executor(dense_graph())
        seen = []
        executor.add_hook(lambda node, outs: seen.append(node.name) or None)
        executor.run({"x": np.zeros((2, 3), dtype=np.float32)})
        assert seen == ["fc"]

    def test_replacement_hook(self):
        executor = Executor(dense_graph())

        def zero_out(node, outputs):
            return [np.zeros_like(o) for o in outputs]

        executor.add_hook(zero_out)
        out = executor.run({"x": np.ones((2, 3), dtype=np.float32)})["y"]
        assert not out.any()

    def test_clear_hooks(self):
        executor = Executor(dense_graph())
        executor.add_hook(lambda n, o: [np.zeros_like(v) for v in o])
        executor.clear_hooks()
        out = executor.run({"x": np.ones((2, 3), dtype=np.float32)})["y"]
        assert out.any()


class TestFusedAndQuantized:
    def test_fused_conv_activation(self):
        g = Graph("f")
        g.add_input(TensorSpec("x", (1, 1, 3, 3)))
        g.add_initializer("w", -np.ones((1, 1, 1, 1), dtype=np.float32))
        g.add_node("fused_conv2d", ["x", "w"], ["y"], activation="relu")
        g.set_outputs(["y"])
        out = run_graph(g, {"x": np.ones((1, 1, 3, 3), dtype=np.float32)})
        assert not out["y"].any()  # -1 then relu -> 0

    def test_quantize_dequantize_roundtrip(self):
        g = Graph("q")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_node("quantize", ["x"], ["q"], scale=np.array([0.1]),
                   zero_point=np.array([0]), dtype=DType.INT8)
        g.add_node("dequantize", ["q"], ["y"], scale=np.array([0.1]),
                   zero_point=np.array([0]))
        g.set_outputs(["y"])
        x = np.array([[0.35, -0.72, 1.0, 0.0]], dtype=np.float32)
        out = run_graph(g, {"x": x})["y"]
        np.testing.assert_allclose(out, x, atol=0.05)

    def test_int8_graph_agrees_with_float(self):
        from repro.optim import fuse_graph, quantize_int8

        rng = np.random.default_rng(0)
        g = build_model("tiny_convnet", batch=4)
        x = rng.normal(size=(4, 3, 32, 32)).astype(np.float32)
        ref = run_graph(g, {"input": x})[g.output_names[0]]
        gq = quantize_int8(fuse_graph(g), [{"input": x}])
        out = run_graph(gq, {"input": x})[gq.output_names[0]]
        assert (out.argmax(-1) == ref.argmax(-1)).mean() >= 0.75

    def test_fp16_graph_close_to_fp32(self):
        from repro.optim import convert_fp16, fuse_graph

        rng = np.random.default_rng(1)
        g = build_model("tiny_convnet", batch=2)
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        ref = run_graph(g, {"input": x})[g.output_names[0]]
        gh = convert_fp16(fuse_graph(g))
        out = run_graph(gh, {"input": x})[gh.output_names[0]]
        np.testing.assert_allclose(out.astype(np.float32), ref, atol=5e-2)


class TestFusedLeakyReluAlpha:
    """Fused leaky_relu must keep its slope on every dispatch path.

    Regression: the fused attr ``activation_alpha`` used to be dropped at
    all dispatch sites, silently applying the default 0.1 slope.
    """

    ALPHA = 0.3

    def _conv_pair(self, op_type, **extra_attrs):
        """(unfused, fused) graphs for a conv-family op + leaky_relu."""
        rng = np.random.default_rng(7)
        w = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)

        unfused = Graph("u")
        unfused.add_input(TensorSpec("x", (1, 2, 6, 6)))
        unfused.add_initializer("w", w.copy() if op_type != "bconv2d"
                                else np.sign(w).astype(np.int8))
        unfused.add_node(op_type, ["x", "w"], ["c"], padding=1,
                         name="conv", **extra_attrs)
        unfused.add_node("leaky_relu", ["c"], ["y"], alpha=self.ALPHA,
                         name="act")
        unfused.set_outputs(["y"])

        fused = Graph("f")
        fused.add_input(TensorSpec("x", (1, 2, 6, 6)))
        fused.add_initializer("w", w.copy() if op_type != "bconv2d"
                              else np.sign(w).astype(np.int8))
        target = "fused_conv2d" if op_type == "conv2d" else op_type
        fused.add_node(target, ["x", "w"], ["y"], padding=1, name="conv",
                       activation="leaky_relu",
                       activation_alpha=self.ALPHA, **extra_attrs)
        fused.set_outputs(["y"])
        return unfused, fused, {"x": x}

    def test_fused_conv2d_keeps_alpha(self):
        unfused, fused, feeds = self._conv_pair("conv2d")
        np.testing.assert_array_equal(
            run_graph(fused, feeds)["y"], run_graph(unfused, feeds)["y"])

    def test_fused_dense_keeps_alpha(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(5, 8)).astype(np.float32)
        x = rng.normal(size=(2, 8)).astype(np.float32)
        unfused = Graph("u")
        unfused.add_input(TensorSpec("x", (2, 8)))
        unfused.add_initializer("w", w)
        unfused.add_node("dense", ["x", "w"], ["h"], name="fc")
        unfused.add_node("leaky_relu", ["h"], ["y"], alpha=0.25, name="act")
        unfused.set_outputs(["y"])
        fused = Graph("f")
        fused.add_input(TensorSpec("x", (2, 8)))
        fused.add_initializer("w", w)
        fused.add_node("fused_dense", ["x", "w"], ["y"], name="fc",
                       activation="leaky_relu", activation_alpha=0.25)
        fused.set_outputs(["y"])
        feeds = {"x": x}
        np.testing.assert_array_equal(
            run_graph(fused, feeds)["y"], run_graph(unfused, feeds)["y"])

    def test_bconv2d_keeps_alpha(self):
        scale = np.full(4, 0.5, dtype=np.float32)
        unfused, fused, feeds = self._conv_pair("bconv2d", scale=scale)
        np.testing.assert_array_equal(
            run_graph(fused, feeds)["y"], run_graph(unfused, feeds)["y"])

    def test_bdense_keeps_alpha(self):
        rng = np.random.default_rng(5)
        w = np.sign(rng.normal(size=(5, 8))).astype(np.int8)
        x = rng.normal(size=(2, 8)).astype(np.float32)
        scale = np.full(5, 0.25, dtype=np.float32)
        unfused = Graph("u")
        unfused.add_input(TensorSpec("x", (2, 8)))
        unfused.add_initializer("w", w)
        unfused.add_node("bdense", ["x", "w"], ["h"], name="fc", scale=scale)
        unfused.add_node("leaky_relu", ["h"], ["y"], alpha=0.4, name="act")
        unfused.set_outputs(["y"])
        fused = Graph("f")
        fused.add_input(TensorSpec("x", (2, 8)))
        fused.add_initializer("w", w)
        fused.add_node("bdense", ["x", "w"], ["y"], name="fc", scale=scale,
                       activation="leaky_relu", activation_alpha=0.4)
        fused.set_outputs(["y"])
        feeds = {"x": x}
        np.testing.assert_array_equal(
            run_graph(fused, feeds)["y"], run_graph(unfused, feeds)["y"])

    def test_fusion_pass_end_to_end_nondefault_alpha(self):
        """fuse_graph output is bitwise-identical to the original graph."""
        from repro.optim import fuse_graph

        unfused, _, feeds = self._conv_pair("conv2d")
        ref = run_graph(unfused, feeds)["y"]
        fused = fuse_graph(unfused)
        assert fused.nodes[0].attrs["activation_alpha"] == self.ALPHA
        out = run_graph(fused, feeds)[fused.output_names[0]]
        np.testing.assert_array_equal(out, ref)
        # The default-slope result differs, so the test would catch a
        # dropped alpha rather than vacuously pass.
        assert not np.array_equal(
            ref, np.where(ref >= 0, ref, ref / self.ALPHA * 0.1))

    def test_quantized_requantize_keeps_alpha(self):
        from repro.runtime import QuantParams, quantized_dense

        rng = np.random.default_rng(11)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        w = rng.normal(size=(6, 8)).astype(np.float32)
        in_p = QuantParams(np.array(0.05), np.array(0))
        w_p = QuantParams(np.array(0.05), np.array(0))
        out_p = QuantParams(np.array(0.05), np.array(0))
        qx, qw = in_p.quantize(x), w_p.quantize(w)
        got = quantized_dense(qx, in_p, qw, w_p, None, out_p,
                              activation="leaky_relu", activation_alpha=0.5)
        real = (qx.astype(np.int32) @ qw.astype(np.int32).T) * \
            (0.05 * 0.05)
        real = np.where(real >= 0, real, 0.5 * real).astype(np.float32)
        np.testing.assert_array_equal(got, out_p.quantize(real))


class TestErrors:
    def test_node_failure_names_node(self):
        g = Graph("bad")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_node("quantize", ["x"], ["y"], scale=np.array([0.0]),
                   zero_point=np.array([0]))
        g.set_outputs(["y"])
        with pytest.raises(Exception):
            run_graph(g, {"x": np.zeros((1, 4), dtype=np.float32)})
