"""Tests for repro.runtime.executor: dispatch, feeds, hooks."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.graph import Graph
from repro.ir.tensor import DType, TensorSpec
from repro.runtime import ExecutionError, Executor, run_graph


def dense_graph():
    g = Graph("d")
    g.add_input(TensorSpec("x", (2, 3)))
    g.add_initializer("w", np.array([[1, 0, 0], [0, 2, 0]], dtype=np.float32))
    g.add_initializer("b", np.array([0.5, -0.5], dtype=np.float32))
    g.add_node("dense", ["x", "w", "b"], ["y"], name="fc")
    g.set_outputs(["y"])
    return g


class TestBasicExecution:
    def test_dense_result(self):
        x = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.float32)
        out = run_graph(dense_graph(), {"x": x})["y"]
        np.testing.assert_allclose(out, [[1.5, 3.5], [4.5, 9.5]])

    def test_model_zoo_graph_runs(self):
        g = build_model("tiny_convnet", batch=2)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)) \
            .astype(np.float32)
        out = run_graph(g, {"input": x})[g.output_names[0]]
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)

    def test_multi_output_graph(self):
        g = build_model("tiny_yolo")
        x = np.zeros((1, 3, 96, 96), dtype=np.float32)
        out = run_graph(g, {"input": x})
        assert len(out) == 1

    def test_keep_intermediates(self):
        executor = Executor(dense_graph(), keep_intermediates=True)
        env = executor.run({"x": np.zeros((2, 3), dtype=np.float32)})
        assert "x" in env and "w" in env and "y" in env


class TestFeedValidation:
    def test_missing_feed(self):
        with pytest.raises(ExecutionError, match="missing feed"):
            run_graph(dense_graph(), {})

    def test_wrong_shape(self):
        with pytest.raises(ExecutionError, match="shape"):
            run_graph(dense_graph(), {"x": np.zeros((3, 3), dtype=np.float32)})

    def test_unknown_feed(self):
        with pytest.raises(ExecutionError, match="unknown feed"):
            run_graph(dense_graph(), {
                "x": np.zeros((2, 3), dtype=np.float32),
                "extra": np.zeros(1),
            })

    def test_feed_cast_to_spec_dtype(self):
        out = run_graph(dense_graph(), {"x": np.ones((2, 3), dtype=np.float64)})
        assert out["y"].dtype == np.float32


class TestHooks:
    def test_observation_hook(self):
        executor = Executor(dense_graph())
        seen = []
        executor.add_hook(lambda node, outs: seen.append(node.name) or None)
        executor.run({"x": np.zeros((2, 3), dtype=np.float32)})
        assert seen == ["fc"]

    def test_replacement_hook(self):
        executor = Executor(dense_graph())

        def zero_out(node, outputs):
            return [np.zeros_like(o) for o in outputs]

        executor.add_hook(zero_out)
        out = executor.run({"x": np.ones((2, 3), dtype=np.float32)})["y"]
        assert not out.any()

    def test_clear_hooks(self):
        executor = Executor(dense_graph())
        executor.add_hook(lambda n, o: [np.zeros_like(v) for v in o])
        executor.clear_hooks()
        out = executor.run({"x": np.ones((2, 3), dtype=np.float32)})["y"]
        assert out.any()


class TestFusedAndQuantized:
    def test_fused_conv_activation(self):
        g = Graph("f")
        g.add_input(TensorSpec("x", (1, 1, 3, 3)))
        g.add_initializer("w", -np.ones((1, 1, 1, 1), dtype=np.float32))
        g.add_node("fused_conv2d", ["x", "w"], ["y"], activation="relu")
        g.set_outputs(["y"])
        out = run_graph(g, {"x": np.ones((1, 1, 3, 3), dtype=np.float32)})
        assert not out["y"].any()  # -1 then relu -> 0

    def test_quantize_dequantize_roundtrip(self):
        g = Graph("q")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_node("quantize", ["x"], ["q"], scale=np.array([0.1]),
                   zero_point=np.array([0]), dtype=DType.INT8)
        g.add_node("dequantize", ["q"], ["y"], scale=np.array([0.1]),
                   zero_point=np.array([0]))
        g.set_outputs(["y"])
        x = np.array([[0.35, -0.72, 1.0, 0.0]], dtype=np.float32)
        out = run_graph(g, {"x": x})["y"]
        np.testing.assert_allclose(out, x, atol=0.05)

    def test_int8_graph_agrees_with_float(self):
        from repro.optim import fuse_graph, quantize_int8

        rng = np.random.default_rng(0)
        g = build_model("tiny_convnet", batch=4)
        x = rng.normal(size=(4, 3, 32, 32)).astype(np.float32)
        ref = run_graph(g, {"input": x})[g.output_names[0]]
        gq = quantize_int8(fuse_graph(g), [{"input": x}])
        out = run_graph(gq, {"input": x})[gq.output_names[0]]
        assert (out.argmax(-1) == ref.argmax(-1)).mean() >= 0.75

    def test_fp16_graph_close_to_fp32(self):
        from repro.optim import convert_fp16, fuse_graph

        rng = np.random.default_rng(1)
        g = build_model("tiny_convnet", batch=2)
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        ref = run_graph(g, {"input": x})[g.output_names[0]]
        gh = convert_fp16(fuse_graph(g))
        out = run_graph(gh, {"input": x})[gh.output_names[0]]
        np.testing.assert_allclose(out.astype(np.float32), ref, atol=5e-2)


class TestErrors:
    def test_node_failure_names_node(self):
        g = Graph("bad")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_node("quantize", ["x"], ["y"], scale=np.array([0.0]),
                   zero_point=np.array([0]))
        g.set_outputs(["y"])
        with pytest.raises(Exception):
            run_graph(g, {"x": np.zeros((1, 4), dtype=np.float32)})
