"""Tests for repro.hw.performance_model: roofline behaviour."""

import pytest

from repro.hw import (
    AcceleratorSpec,
    DeviceFamily,
    NaivePeakModel,
    RooflineModel,
    get_accelerator,
    predict_on,
    preferred_dtype,
)
from repro.ir import build_model
from repro.ir.tensor import DType


@pytest.fixture(scope="module")
def net():
    return build_model("tiny_convnet", batch=1)


def make_spec(**overrides):
    base = dict(
        name="test-dev", vendor="t", family=DeviceFamily.ASIC,
        peak_gops={DType.INT8: 1000.0}, tdp_w=10.0, idle_w=2.0,
        memory_bw_gbs=10.0, memory_gb=1.0, util_max=0.5, batch_k=1.0,
        node_overhead_s=0.0,
    )
    base.update(overrides)
    return AcceleratorSpec(**base)


class TestPreferredDtype:
    def test_prefers_int8(self):
        assert preferred_dtype(get_accelerator("GTX1660")) is DType.INT8

    def test_fp16_fallback(self):
        assert preferred_dtype(get_accelerator("Myriad")) is DType.FP16

    def test_fp32_only(self):
        spec = make_spec(peak_gops={DType.FP32: 100.0})
        assert preferred_dtype(spec) is DType.FP32


class TestEffectivePeak:
    def test_batch_saturation(self):
        model = RooflineModel(make_spec(batch_k=2.0))
        p1 = model.effective_peak_gops(DType.INT8, 1)
        p8 = model.effective_peak_gops(DType.INT8, 8)
        assert p8 > p1
        assert p8 <= 1000.0 * 0.5

    def test_no_saturation_when_k_zero(self):
        model = RooflineModel(make_spec(batch_k=0.0))
        assert model.effective_peak_gops(DType.INT8, 1) == \
            model.effective_peak_gops(DType.INT8, 8)

    def test_unsupported_dtype(self):
        model = RooflineModel(make_spec())
        with pytest.raises(ValueError, match="does not support"):
            model.effective_peak_gops(DType.FP32, 1)


class TestPredictions:
    def test_throughput_grows_with_batch(self, net):
        model = RooflineModel(get_accelerator("GTX1660"))
        p1, p4, p8 = model.sweep_batches(net)
        assert p1.throughput_gops < p4.throughput_gops < p8.throughput_gops

    def test_per_inference_latency_drops_with_batch(self, net):
        model = RooflineModel(get_accelerator("XavierNX"))
        p1, _, p8 = model.sweep_batches(net)
        assert p8.latency_s < p1.latency_s

    def test_power_within_envelope(self, net):
        for name in ("GTX1660", "Epyc3451", "Myriad", "ZynqZU3"):
            spec = get_accelerator(name)
            pred = predict_on(spec, net, batch=4)
            assert spec.idle_w <= pred.avg_power_w <= spec.tdp_w

    def test_memory_bound_device(self):
        # Tiny bandwidth: latency dominated by bytes / bw.
        net = build_model("mlp", batch=1, in_features=512, hidden=(512,),
                          num_classes=10)
        starved = make_spec(memory_bw_gbs=0.001,
                            peak_gops={DType.INT8: 1e6})
        fast_mem = make_spec(memory_bw_gbs=1000.0,
                             peak_gops={DType.INT8: 1e6})
        slow = predict_on(starved, net)
        fast = predict_on(fast_mem, net)
        assert slow.latency_s > fast.latency_s * 100

    def test_weight_reuse_across_batch(self):
        """Weights stream once per batch: a weight-heavy model gets faster
        per inference at batch 8 even without compute saturation."""
        net = build_model("mlp", batch=1, in_features=1024,
                          hidden=(1024,), num_classes=10)
        spec = make_spec(batch_k=0.0, memory_bw_gbs=1.0,
                         peak_gops={DType.INT8: 1e9})
        p1 = predict_on(spec, net, batch=1)
        p8 = predict_on(spec, net, batch=8)
        assert p8.latency_s < p1.latency_s * 0.3

    def test_dtype_scales_memory_traffic(self, net):
        spec = get_accelerator("GTX1660")
        fp32 = predict_on(spec, net, dtype=DType.FP32)
        int8 = predict_on(spec, net, dtype=DType.INT8)
        assert int8.latency_s < fp32.latency_s

    def test_fits_memory_flag(self):
        big = build_model("mlp", batch=1, in_features=2048, hidden=(2048,),
                          num_classes=10)
        tiny_mem = make_spec(memory_gb=1e-6)
        assert not predict_on(tiny_mem, big).fits_memory
        assert predict_on(make_spec(memory_gb=8), big).fits_memory

    def test_invalid_batch(self, net):
        with pytest.raises(ValueError):
            RooflineModel(make_spec()).predict(net, batch=0)

    def test_keep_layers(self, net):
        pred = RooflineModel(get_accelerator("GTX1660")).predict(
            net, keep_layers=True)
        assert len(pred.layers) == len(net)
        total = sum(layer.seconds for layer in pred.layers)
        assert total == pytest.approx(pred.batch_latency_s, rel=1e-9)

    def test_energy_consistency(self, net):
        pred = predict_on(get_accelerator("XavierNX"), net, batch=2)
        assert pred.energy_per_inference_j == pytest.approx(
            pred.avg_power_w * pred.latency_s, rel=1e-9)


class TestFig4Shape:
    """The qualitative claims of Fig. 4 must hold on YoloV4."""

    @pytest.fixture(scope="class")
    def yolo_predictions(self):
        from repro.hw import resolve_platform
        net = build_model("yolov4", image_size=416)
        preds = {}
        for name in ("GTX1660", "XavierAGX", "XavierAGX:10W", "XavierNX",
                     "JetsonTX2", "Epyc3451", "D1577", "ZynqZU3", "Myriad"):
            model = RooflineModel(resolve_platform(name))
            preds[name] = model.sweep_batches(net)
        return preds

    @pytest.mark.slow
    def test_desktop_gpu_fastest(self, yolo_predictions):
        gtx = yolo_predictions["GTX1660"][2].throughput_gops
        for name, preds in yolo_predictions.items():
            if name != "GTX1660":
                assert preds[2].throughput_gops < gtx

    @pytest.mark.slow
    def test_power_ordering(self, yolo_predictions):
        power = {n: p[0].avg_power_w for n, p in yolo_predictions.items()}
        assert power["Myriad"] < power["ZynqZU3"] < power["XavierNX"]
        assert power["GTX1660"] > power["XavierAGX"]
        assert power["Epyc3451"] > power["D1577"]

    @pytest.mark.slow
    def test_power_mode_scaling(self, yolo_predictions):
        hi = yolo_predictions["XavierAGX"][0]
        lo = yolo_predictions["XavierAGX:10W"][0]
        assert lo.throughput_gops < hi.throughput_gops
        assert lo.avg_power_w < hi.avg_power_w

    @pytest.mark.slow
    def test_batch_scaling_on_gpus_not_cpus(self, yolo_predictions):
        gtx = yolo_predictions["GTX1660"]
        cpu = yolo_predictions["D1577"]
        gtx_gain = gtx[2].throughput_gops / gtx[0].throughput_gops
        cpu_gain = cpu[2].throughput_gops / cpu[0].throughput_gops
        assert gtx_gain > 2.0
        assert cpu_gain < 1.2
