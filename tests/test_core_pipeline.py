"""Tests for the Kenning-style core: training, reports, pipeline."""

import numpy as np
import pytest

from repro.core import (
    ConfusionMatrix,
    DeploymentPipeline,
    Detection,
    PipelineError,
    detection_report,
    evaluate_accuracy,
    match_detections,
    render_measurements,
    train_readout,
)
from repro.core.training import TrainingError
from repro.datasets import make_arc_dataset, make_shapes_dataset
from repro.datasets.images import Box
from repro.hw import get_accelerator
from repro.ir import build_model


@pytest.fixture(scope="module")
def shapes():
    return make_shapes_dataset(240, image_size=32, seed=0)


class TestTraining:
    def test_readout_beats_chance(self, shapes):
        train, test = shapes.split(0.8, seed=0)
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        result = train_readout(g, train)
        assert result.train_accuracy > 0.7
        assert evaluate_accuracy(result.graph, test) > 0.6

    def test_arc_net_near_perfect(self):
        ds = make_arc_dataset(150, window=128)
        train, test = ds.split(0.75, seed=0)
        g = build_model("arc_net", batch=16, window=128)
        result = train_readout(g, train)
        assert evaluate_accuracy(result.graph, test) > 0.95

    def test_class_count_mismatch(self, shapes):
        g = build_model("tiny_convnet", batch=8, num_classes=10)
        with pytest.raises(TrainingError, match="classes"):
            train_readout(g, shapes)

    def test_no_dense_layer(self, shapes):
        g = build_model("tiny_yolo")
        with pytest.raises(TrainingError, match="no dense readout"):
            train_readout(g, shapes)

    def test_original_graph_untouched(self, shapes):
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        before = {k: v.copy() for k, v in g.initializers.items()}
        train_readout(g, shapes)
        for k, v in before.items():
            np.testing.assert_array_equal(g.initializers[k], v)


class TestConfusionMatrix:
    def make(self):
        return ConfusionMatrix.from_predictions(
            [0, 0, 0, 1, 1, 2], [0, 0, 1, 1, 1, 0], ("a", "b", "c"))

    def test_accuracy(self):
        assert self.make().accuracy == pytest.approx(4 / 6)

    def test_precision_recall(self):
        cm = self.make()
        assert cm.recall(0) == pytest.approx(2 / 3)
        assert cm.precision(0) == pytest.approx(2 / 3)
        assert cm.precision(1) == pytest.approx(2 / 3)
        assert cm.recall(1) == 1.0
        assert cm.recall(2) == 0.0

    def test_false_negative_rate(self):
        cm = self.make()
        assert cm.false_negative_rate(0) == pytest.approx(1 / 3)
        assert cm.false_negative_rate(1) == 0.0

    def test_f1_harmonic(self):
        cm = self.make()
        p, r = cm.precision(1), cm.recall(1)
        assert cm.f1(1) == pytest.approx(2 * p * r / (p + r))

    def test_render(self):
        text = self.make().render()
        assert "accuracy" in text and "precision" in text


class TestDetectionReports:
    def test_matching_greedy_by_score(self):
        gt = [Box(0, 0, 10, 10, 0)]
        preds = [Detection(Box(0, 0, 10, 10, 0), 0.9),
                 Detection(Box(1, 1, 11, 11, 0), 0.5)]
        matched = match_detections(preds, gt)
        assert matched[0][1] is True      # high score matched
        assert matched[1][1] is False     # gt already consumed

    def test_label_must_match(self):
        gt = [Box(0, 0, 10, 10, 1)]
        preds = [Detection(Box(0, 0, 10, 10, 0), 0.9)]
        assert match_detections(preds, gt)[0][1] is False

    def test_report_perfect_detector(self):
        gt = [[Box(0, 0, 10, 10, 0)], [Box(5, 5, 20, 20, 1)]]
        preds = [[Detection(gt[0][0], 0.99)], [Detection(gt[1][0], 0.98)]]
        report = detection_report(preds, gt)
        assert report.average_precision > 0.9
        assert all(p.precision == 1.0 for p in report.points)

    def test_report_counts_false_positives(self):
        gt = [[Box(0, 0, 10, 10, 0)]]
        preds = [[Detection(Box(0, 0, 10, 10, 0), 0.9),
                  Detection(Box(50, 50, 60, 60, 0), 0.8)]]
        report = detection_report(preds, gt)
        low_threshold = report.points[0]
        assert low_threshold.precision == pytest.approx(0.5)
        assert low_threshold.recall == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            detection_report([[]], [[], []])


class TestDeploymentPipeline:
    def test_full_flow_with_target(self, shapes):
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        pipeline = DeploymentPipeline(
            g, shapes, target=get_accelerator("XavierNX"),
            optimizations=("fuse", "int8"), profile_runs=1)
        report = pipeline.run()
        assert [v.variant for v in report.variants] == \
            ["fp32", "fuse", "int8"]
        # Quality tracked per variant; int8 within a few points of fp32.
        fp32_acc = report.variant("fp32").quality["accuracy"]
        int8_acc = report.variant("int8").quality["accuracy"]
        assert fp32_acc > 0.6
        assert abs(fp32_acc - int8_acc) < 0.15
        # INT8 artifact is smaller.
        assert report.variant("int8").model_size_bytes < \
            report.variant("fp32").model_size_bytes / 2
        # Target predictions attached (batch sweep 1/4/8).
        assert len(report.variant("fp32").target_predictions) == 3
        assert report.confusions["fp32"].total == len(shapes) - int(
            len(shapes) * 0.8)

    def test_unknown_optimization(self, shapes):
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        pipeline = DeploymentPipeline(g, shapes, optimizations=("magic",))
        with pytest.raises(PipelineError, match="unknown optimization"):
            pipeline.run()

    def test_compile_for_target(self, shapes):
        g = build_model("tiny_convnet", batch=1, num_classes=4)
        pipeline = DeploymentPipeline(g, shapes,
                                      target=get_accelerator("Myriad"))
        compiled = pipeline.compile_for_target(g)
        from repro.ir.tensor import DType

        assert compiled.dtype is DType.FP16  # Myriad has no INT8
        assert compiled.artifact_bytes > 0

    def test_render_measurements(self, shapes):
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        report = DeploymentPipeline(g, shapes, optimizations=("fuse",),
                                    profile_runs=1).run()
        text = render_measurements(report.variants)
        assert "fp32" in text and "fuse" in text
        assert "accuracy" in text
