"""Tests for repro.optim.fusion: batchnorm folding and activation fusion."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.builder import GraphBuilder
from repro.optim import FoldBatchNorm, FuseActivation, PassManager, fuse_graph
from repro.runtime import run_graph


def conv_bn_relu_graph(batch=2):
    b = GraphBuilder("cbr", seed=7)
    x = b.input("x", (batch, 3, 8, 8))
    y = b.conv_bn_act(x, 4, 3, padding=1, name="blk")
    return b.finish(y)


class TestFoldBatchNorm:
    def test_exactness(self):
        g = conv_bn_relu_graph()
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8)) \
            .astype(np.float32)
        before = run_graph(g, {"x": x})[g.output_names[0]]
        folded = FoldBatchNorm().run(g)
        after = run_graph(folded, {"x": x})[folded.output_names[0]]
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-6)

    def test_removes_batchnorm_nodes(self):
        g = conv_bn_relu_graph()
        folded = FoldBatchNorm().run(g)
        assert not any(n.op_type == "batchnorm" for n in folded.nodes)

    def test_drops_bn_parameters(self):
        g = conv_bn_relu_graph()
        folded = FoldBatchNorm().run(g)
        assert folded.num_parameters() < g.num_parameters()

    def test_adds_bias_when_missing(self):
        g = conv_bn_relu_graph()
        folded = FoldBatchNorm().run(g)
        conv = [n for n in folded.nodes if n.op_type == "conv2d"][0]
        assert len(conv.inputs) == 3

    def test_skips_multi_consumer_conv(self):
        b = GraphBuilder("mc")
        x = b.input("x", (1, 2, 4, 4))
        c = b.conv2d(x, 2, 1, bias=False, name="conv")
        bn = b.batchnorm(c, name="bn")
        other = b.relu(c, name="keep")   # second consumer of conv output
        merged = b.add(bn, other)
        g = b.finish(merged)
        folded = FoldBatchNorm().run(g)
        assert any(n.op_type == "batchnorm" for n in folded.nodes)

    def test_original_graph_untouched(self):
        g = conv_bn_relu_graph()
        nodes_before = len(g)
        FoldBatchNorm().run(g)
        assert len(g) == nodes_before

    def test_details_counter(self):
        fold = FoldBatchNorm()
        fold.run(conv_bn_relu_graph())
        assert fold.details()["batchnorms_folded"] == 1


class TestFuseActivation:
    def test_fuses_relu_into_conv(self):
        g = conv_bn_relu_graph()
        fused = PassManager([FoldBatchNorm(), FuseActivation()]).run(g)
        assert len(fused) == 1
        node = fused.nodes[0]
        assert node.op_type == "fused_conv2d"
        assert node.attrs["activation"] == "relu"

    def test_fused_graph_equivalent(self):
        g = conv_bn_relu_graph()
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8)) \
            .astype(np.float32)
        before = run_graph(g, {"x": x})[g.output_names[0]]
        fused = fuse_graph(g)
        after = run_graph(fused, {"x": x})[fused.output_names[0]]
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-6)

    def test_does_not_fuse_softmax(self):
        g = build_model("mlp", batch=2)
        fused = fuse_graph(g)
        assert any(n.op_type == "softmax" for n in fused.nodes)

    def test_dense_relu_fusion(self):
        g = build_model("mlp", batch=2, hidden=(16,))
        fused = fuse_graph(g)
        assert any(n.op_type == "fused_dense" and
                   n.attrs.get("activation") == "relu" for n in fused.nodes)

    def test_leaky_relu_slope_recorded(self):
        b = GraphBuilder("lk")
        x = b.input("x", (1, 4))
        h = b.dense(x, 4, name="fc")
        y = b.activation(h, "leaky_relu", alpha=0.3, name="act")
        fused = FuseActivation().run(b.finish(y))
        node = fused.nodes[0]
        assert node.attrs["activation"] == "leaky_relu"
        assert node.attrs["activation_alpha"] == 0.3

    def test_leaky_relu_default_slope_recorded(self):
        b = GraphBuilder("lk")
        x = b.input("x", (1, 4))
        h = b.dense(x, 4, name="fc")
        y = b.activation(h, "leaky_relu", name="act")
        fused = FuseActivation().run(b.finish(y))
        assert fused.nodes[0].attrs["activation_alpha"] == 0.1

    def test_multi_consumer_not_fused(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4))
        h = b.dense(x, 4, name="fc")
        r = b.relu(h, name="act")
        merged = b.add(h, r)   # dense output used twice
        g = b.finish(merged)
        fused = FuseActivation().run(g)
        assert any(n.op_type == "relu" for n in fused.nodes)


class TestFullModelFusion:
    def test_tiny_convnet_node_reduction(self):
        g = build_model("tiny_convnet", batch=1)
        fused = fuse_graph(g)
        assert len(fused) < len(g)
        fused.validate()

    def test_mobilenet_small_fusion_preserves_output(self):
        g = build_model("mobilenet_v3_small", batch=1, image_size=64,
                        num_classes=10)
        x = np.random.default_rng(2).normal(size=(1, 3, 64, 64)) \
            .astype(np.float32)
        before = run_graph(g, {"input": x})[g.output_names[0]]
        fused = fuse_graph(g)
        after = run_graph(fused, {"input": x})[fused.output_names[0]]
        np.testing.assert_allclose(after, before, rtol=1e-3, atol=1e-5)
        assert not any(n.op_type == "batchnorm" for n in fused.nodes)
