"""Smoke tests: every shipped example runs to completion.

Examples are user-facing documentation; a broken one is a broken promise.
Each runs in a subprocess exactly as a user would invoke it.  Marked slow:
together they train several small models.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ("pipeline report", "compiled for XavierNX"),
    "arc_guard.py": ("false negatives", "QUARANTINED"),
    "enclave_inference.py": ("results identical: True",
                             "REJECTED", "TRUSTED"),
    "smart_mirror_demo.py": ("fits budget", "cloud upload rejected"),
    "paeb_offload_study.py": ("attestation: PASS", "km/h"),
    "model_splitting.py": ("outputs identical: True", "split"),
}


@pytest.mark.slow
@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in result.stdout, (
            f"{script}: expected {marker!r} in output; got:\n"
            f"{result.stdout[-2000:]}"
        )


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)
