"""Tests for TEEs: SGX-like enclaves, Twine runtime, TrustZone, attestation."""

import pytest

from repro.security import (
    AttestationError,
    DistributedAttestation,
    Enclave,
    SecureBootError,
    SignedImage,
    SigningKey,
    TeeError,
    TransitionCosts,
    TrustedApp,
    TrustedWasmRuntime,
    Verifier,
    build_attested_device,
)
from repro.security.trustzone import SecureBoot, SecureWorld
from repro.security.workloads import (
    WasmKvAdapter,
    build_kv_module,
    run_kv_workload,
    NativeKvStore,
)


@pytest.fixture()
def device_key():
    return SigningKey(b"device-key-0")


def make_enclave(device_key, name="test-enclave", code=b"code-v1"):
    enclave = Enclave(name, code, device_key)
    enclave.register_ecall("ping", lambda: "pong")
    enclave.register_ocall("host_time", lambda: 12345)
    enclave.initialize()
    return enclave


class TestEnclaveLifecycle:
    def test_ecall_after_init(self, device_key):
        enclave = make_enclave(device_key)
        assert enclave.ecall("ping") == "pong"
        assert enclave.stats.ecalls == 1

    def test_ecall_before_init_rejected(self, device_key):
        enclave = Enclave("e", b"code", device_key)
        enclave.register_ecall("ping", lambda: "pong")
        with pytest.raises(TeeError, match="not initialized"):
            enclave.ecall("ping")

    def test_ecall_registration_frozen_after_init(self, device_key):
        enclave = make_enclave(device_key)
        with pytest.raises(TeeError, match="measurement"):
            enclave.register_ecall("new", lambda: None)

    def test_unknown_ecall(self, device_key):
        enclave = make_enclave(device_key)
        with pytest.raises(TeeError, match="no ECALL"):
            enclave.ecall("backdoor")

    def test_destroyed_enclave_unusable(self, device_key):
        enclave = make_enclave(device_key)
        enclave.destroy()
        with pytest.raises(TeeError, match="destroyed"):
            enclave.ecall("ping")

    def test_ocall_counted(self, device_key):
        enclave = make_enclave(device_key)
        assert enclave.ocall("host_time") == 12345
        assert enclave.stats.ocalls == 1


class TestMeasurement:
    def test_depends_on_code(self, device_key):
        e1 = make_enclave(device_key, code=b"code-v1")
        e2 = make_enclave(device_key, code=b"code-v2")
        assert e1.measurement() != e2.measurement()

    def test_depends_on_entry_points(self, device_key):
        e1 = Enclave("e", b"code", device_key)
        e1.register_ecall("a", lambda: None)
        e2 = Enclave("e", b"code", device_key)
        e2.register_ecall("b", lambda: None)
        assert e1.measurement() != e2.measurement()

    def test_stable_across_instances(self, device_key):
        assert make_enclave(device_key).measurement() == \
            make_enclave(device_key).measurement()


class TestSealing:
    def test_roundtrip(self, device_key):
        enclave = make_enclave(device_key)
        blob = enclave.seal(b"model weights")
        assert enclave.unseal(blob) == b"model weights"

    def test_bound_to_measurement(self, device_key):
        e1 = make_enclave(device_key, code=b"v1")
        e2 = make_enclave(device_key, code=b"v2")
        blob = e1.seal(b"secret")
        with pytest.raises(TeeError):
            e2.unseal(blob)

    def test_bound_to_device(self):
        e1 = make_enclave(SigningKey(b"dev1"))
        e2 = make_enclave(SigningKey(b"dev2"))
        with pytest.raises(TeeError):
            e2.unseal(e1.seal(b"secret"))


class TestEpcPaging:
    def test_within_epc_no_faults(self, device_key):
        enclave = Enclave("e", b"c", device_key, epc_bytes=1 << 20)
        enclave.initialize()
        enclave.touch_memory(1 << 19)
        assert enclave.stats.page_faults == 0

    def test_beyond_epc_faults(self, device_key):
        enclave = Enclave("e", b"c", device_key, epc_bytes=1 << 20)
        enclave.initialize()
        enclave.touch_memory(2 << 20)
        assert enclave.stats.page_faults > 0

    def test_overhead_model(self, device_key):
        costs = TransitionCosts(ecall_cycles=1000, ocall_cycles=1000,
                                page_fault_cycles=0, clock_hz=1e6)
        enclave = Enclave("e", b"c", device_key, costs=costs)
        enclave.register_ecall("noop", lambda: None)
        enclave.initialize()
        for _ in range(10):
            enclave.ecall("noop")
        assert enclave.modeled_overhead_seconds() == pytest.approx(0.01)


class TestTrustedWasmRuntime:
    def test_workload_correctness_inside_enclave(self, device_key):
        runtime = TrustedWasmRuntime(build_kv_module(8), device_key)
        native = NativeKvStore(8)
        tee_result = run_kv_workload(WasmKvAdapter(runtime), num_keys=50)
        native_result = run_kv_workload(native, num_keys=50)
        assert tee_result.checksum == native_result.checksum

    def test_every_invoke_is_an_ecall(self, device_key):
        runtime = TrustedWasmRuntime(build_kv_module(8), device_key)
        runtime.invoke("put", 1, 2)
        runtime.invoke("get", 1)
        assert runtime.stats.ecalls == 2

    def test_measurement_covers_module(self, device_key):
        r1 = TrustedWasmRuntime(build_kv_module(8), device_key)
        r2 = TrustedWasmRuntime(build_kv_module(9), device_key)
        assert r1.measurement() != r2.measurement()

    def test_host_imports_become_ocalls(self, device_key):
        from repro.security.wasm import Function, Module

        module = Module("io", imports=("get_time",))
        module.add_function(Function("f", 0, 0,
                                     [("call_host", "get_time", 0)]))
        runtime = TrustedWasmRuntime(
            module, device_key,
            host_imports={"get_time": lambda inst, args: 777})
        assert runtime.invoke("f") == 777
        assert runtime.stats.ocalls == 1

    def test_missing_import_rejected(self, device_key):
        from repro.security.wasm import Function, Module

        module = Module("io", imports=("get_time",))
        module.add_function(Function("f", 0, 0, [("nop",)]))
        with pytest.raises(TeeError, match="missing host import"):
            TrustedWasmRuntime(module, device_key)


class TestSecureBoot:
    def test_chain_verifies(self):
        vendor = SigningKey(b"vendor")
        images = [SignedImage.create(f"bl{i}", b"x" * i, vendor)
                  for i in range(1, 4)]
        boot = SecureBoot(vendor.verifying_key())
        assert boot.boot_chain(images) == ["bl1", "bl2", "bl3"]

    def test_tampered_stage_halts_chain(self):
        vendor = SigningKey(b"vendor")
        good = SignedImage.create("bl1", b"good", vendor)
        evil = SignedImage("bl2", b"evil", good.signature)
        boot = SecureBoot(vendor.verifying_key())
        with pytest.raises(SecureBootError, match="bl2"):
            boot.boot_chain([good, evil])
        assert boot.verified_stages == ["bl1"]

    def test_wrong_vendor_rejected(self):
        vendor = SigningKey(b"vendor")
        attacker = SigningKey(b"attacker")
        image = SignedImage.create("bl1", b"payload", attacker)
        boot = SecureBoot(vendor.verifying_key())
        with pytest.raises(SecureBootError):
            boot.boot_chain([image])


class TestTrustZone:
    def test_smc_invokes_trusted_app(self, device_key):
        vendor = SigningKey(b"vendor")
        app = TrustedApp("wallet", b"wallet-code",
                         {"balance": lambda: 100})
        normal, secure = build_attested_device(vendor, device_key,
                                               [(app, b"wallet-code")])
        assert normal.smc("wallet", "balance") == 100
        assert normal.world_switches == 2
        assert normal.switch_overhead_cycles > 0

    def test_unknown_app_or_command(self, device_key):
        vendor = SigningKey(b"vendor")
        normal, _ = build_attested_device(vendor, device_key)
        with pytest.raises(TeeError, match="no trusted app"):
            normal.smc("ghost", "cmd")

    def test_unsigned_app_rejected(self, device_key):
        vendor = SigningKey(b"vendor")
        attacker = SigningKey(b"attacker")
        normal, secure = build_attested_device(vendor, device_key)
        app = TrustedApp("mal", b"mal-code", {})
        evil_image = SignedImage.create("mal", b"mal-code", attacker)
        with pytest.raises(Exception):
            secure.install_app(evil_image, app)

    def test_image_code_mismatch_rejected(self, device_key):
        vendor = SigningKey(b"vendor")
        normal, secure = build_attested_device(vendor, device_key)
        app = TrustedApp("a", b"real-code", {})
        image = SignedImage.create("a", b"other-code", vendor)
        with pytest.raises(TeeError, match="does not match"):
            secure.install_app(image, app)

    def test_secure_world_requires_boot(self, device_key):
        vendor = SigningKey(b"vendor")
        boot = SecureBoot(vendor.verifying_key())  # never booted
        with pytest.raises(SecureBootError, match="verified boot chain"):
            SecureWorld(device_key, boot)

    def test_measurement_covers_apps(self, device_key):
        vendor = SigningKey(b"vendor")
        _, bare = build_attested_device(vendor, device_key)
        app = TrustedApp("x", b"xc", {})
        _, with_app = build_attested_device(vendor, device_key,
                                            [(app, b"xc")])
        assert bare.measurement() != with_app.measurement()


class TestAttestation:
    def setup_verifier(self, tee, device_key):
        verifier = Verifier()
        verifier.trust_device(device_key.verifying_key())
        verifier.trust_measurement(tee.measurement())
        return verifier

    def test_happy_path(self, device_key):
        enclave = make_enclave(device_key)
        verifier = self.setup_verifier(enclave, device_key)
        verifier.attest(enclave)

    def test_unknown_device_key(self, device_key):
        enclave = make_enclave(device_key)
        verifier = Verifier()
        verifier.trust_measurement(enclave.measurement())
        nonce = verifier.challenge()
        with pytest.raises(AttestationError, match="unknown device key"):
            verifier.verify(enclave.quote(nonce))

    def test_untrusted_measurement(self, device_key):
        enclave = make_enclave(device_key, code=b"modified-code")
        verifier = Verifier()
        verifier.trust_device(device_key.verifying_key())
        verifier.trust_measurement(b"\x00" * 32)
        nonce = verifier.challenge()
        with pytest.raises(AttestationError, match="not trusted"):
            verifier.verify(enclave.quote(nonce))

    def test_replay_rejected(self, device_key):
        enclave = make_enclave(device_key)
        verifier = self.setup_verifier(enclave, device_key)
        nonce = verifier.challenge()
        quote = enclave.quote(nonce)
        verifier.verify(quote)
        with pytest.raises(AttestationError, match="replay"):
            verifier.verify(quote)

    def test_unsolicited_nonce_rejected(self, device_key):
        enclave = make_enclave(device_key)
        verifier = self.setup_verifier(enclave, device_key)
        with pytest.raises(AttestationError, match="known challenge"):
            verifier.verify(enclave.quote(b"\x01" * 32))

    def test_expired_challenge(self, device_key):
        now = [0.0]
        enclave = make_enclave(device_key)
        verifier = Verifier(max_challenge_age_s=10, clock=lambda: now[0])
        verifier.trust_device(device_key.verifying_key())
        verifier.trust_measurement(enclave.measurement())
        nonce = verifier.challenge()
        now[0] = 100.0
        with pytest.raises(AttestationError, match="expired"):
            verifier.verify(enclave.quote(nonce))

    def test_forged_signature_rejected(self, device_key):
        from repro.security.tee import Quote

        enclave = make_enclave(device_key)
        verifier = self.setup_verifier(enclave, device_key)
        nonce = verifier.challenge()
        quote = enclave.quote(nonce)
        forged = Quote(quote.measurement, quote.nonce, quote.user_data,
                       quote.key_id, b"\x00" * 32)
        with pytest.raises(AttestationError, match="signature"):
            verifier.verify(forged)


class TestDistributedAttestation:
    def test_filters_untrusted_nodes(self):
        keys = {name: SigningKey(name.encode()) for name in
                ("edge-0", "edge-1", "edge-2")}
        enclaves = {name: make_enclave(key, name=name)
                    for name, key in keys.items()}
        # edge-2 runs modified code.
        enclaves["edge-2"] = make_enclave(keys["edge-2"], name="edge-2",
                                          code=b"evil")
        verifier = Verifier()
        for name, key in keys.items():
            verifier.trust_device(key.verifying_key())
        verifier.trust_measurement(enclaves["edge-0"].measurement())
        verifier.trust_measurement(enclaves["edge-1"].measurement())

        distributed = DistributedAttestation(verifier)
        for name, enclave in enclaves.items():
            distributed.register_node(name, enclave)
        assert distributed.trusted_nodes() == ["edge-0", "edge-1"]

    def test_duplicate_node_rejected(self, device_key):
        distributed = DistributedAttestation(Verifier())
        enclave = make_enclave(device_key)
        distributed.register_node("n", enclave)
        with pytest.raises(ValueError):
            distributed.register_node("n", enclave)

    def test_reports_include_reasons(self, device_key):
        enclave = make_enclave(device_key)
        verifier = Verifier()  # trusts nothing
        distributed = DistributedAttestation(verifier)
        distributed.register_node("n", enclave)
        reports = distributed.attest_all()
        assert not reports[0].ok
        assert reports[0].reason
