"""Focused tests for repro.serving.metrics (ISSUE 5 satellite coverage).

Covers the percentile edge cases, snapshot consistency under concurrent
``record_batch`` calls, the sliding-window throughput fix, and the
failure-stream accounting.  The recorder takes an injectable clock so
the window math is tested against exact timestamps.
"""

import threading

import pytest

from repro.serving.metrics import (
    LATENCY_WINDOW,
    MetricsRecorder,
    MetricsSnapshot,
    percentile,
)
from repro.telemetry import MetricsRegistry


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_recorder(window: int = LATENCY_WINDOW):
    clock = FakeClock()
    recorder = MetricsRecorder(window=window, clock=clock,
                               registry=MetricsRegistry())
    return recorder, clock


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 0) == 0.0
        assert percentile([], 100) == 0.0

    def test_single_element_every_quantile(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_q0_and_q100_are_min_and_max(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_nearest_rank_interior(self):
        values = list(range(101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95

    def test_out_of_range_quantiles_clamp(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, -50) == 1.0
        assert percentile(values, 250) == 3.0


class TestWindowedThroughput:
    def test_throughput_uses_recent_window_not_lifetime(self):
        recorder, clock = make_recorder(window=4)
        # Ancient traffic: 100 requests long ago.
        for _ in range(100):
            recorder.record_batch(1, [0.001])
        clock.advance(1000.0)
        # Recent traffic: 4 requests over 2 seconds.
        for _ in range(4):
            clock.advance(0.5)
            recorder.record_batch(1, [0.001])
        clock.advance(0.0)
        snapshot = recorder.snapshot()
        # Window holds the last 4 completions spanning 1.5s ending now.
        assert snapshot.throughput_rps == pytest.approx(4 / 1.5)
        # Lifetime average still reports the stale meaning.
        assert snapshot.lifetime_rps == pytest.approx(
            104 / snapshot.uptime_s)
        assert snapshot.lifetime_rps < snapshot.throughput_rps

    def test_zero_span_burst_falls_back_to_lifetime(self):
        recorder, clock = make_recorder()
        clock.advance(2.0)
        recorder.record_batch(4, [0.001] * 4)
        snapshot = recorder.snapshot()
        # All completions share one timestamp: no measurable span, so
        # the windowed rate falls back to the lifetime average.
        assert snapshot.throughput_rps == pytest.approx(
            snapshot.lifetime_rps)

    def test_empty_recorder_reports_zero(self):
        recorder, clock = make_recorder()
        clock.advance(1.0)
        snapshot = recorder.snapshot()
        assert snapshot.throughput_rps == 0.0
        assert snapshot.lifetime_rps == 0.0
        assert snapshot.failure_rate == 0.0


class TestFailureStream:
    def test_failure_rate_is_windowed_share(self):
        recorder, clock = make_recorder()
        clock.advance(1.0)
        recorder.record_batch(3, [0.001] * 3)
        clock.advance(1.0)
        recorder.record_failure(1)
        snapshot = recorder.snapshot()
        assert snapshot.failures == 1
        assert snapshot.failure_rate == pytest.approx(1 / 4)

    def test_failure_latencies_enter_percentile_window(self):
        recorder, clock = make_recorder()
        recorder.record_batch(2, [0.010, 0.010])
        # The failed request was in flight for 2 seconds: p99 must see it.
        recorder.record_failure(1, latencies_s=[2.0])
        snapshot = recorder.snapshot()
        assert snapshot.p99_ms == pytest.approx(2000.0)
        # The failed batch bumps the batch histogram too.
        assert snapshot.batch_histogram == {2: 1, 1: 1}

    def test_failure_without_latency_keeps_percentiles_clean(self):
        recorder, clock = make_recorder()
        recorder.record_batch(2, [0.010, 0.020])
        recorder.record_failure(5)
        snapshot = recorder.snapshot()
        assert snapshot.p99_ms == pytest.approx(20.0)
        assert snapshot.batch_histogram == {2: 1}
        assert snapshot.failures == 5

    def test_report_mentions_failure_rate_and_both_rates(self):
        recorder, clock = make_recorder()
        clock.advance(1.0)
        recorder.record_batch(1, [0.001])
        recorder.record_failure(1)
        report = recorder.snapshot().report()
        assert "windowed" in report and "lifetime" in report
        assert "% of window" in report


class TestConcurrentRecording:
    def test_totals_exact_under_concurrent_record_batch(self):
        recorder = MetricsRecorder(registry=MetricsRegistry())
        threads_n, batches_n = 8, 50

        def worker():
            for _ in range(batches_n):
                recorder.record_batch(4, [0.001, 0.002, 0.003, 0.004])

        threads = [threading.Thread(target=worker)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = recorder.snapshot()
        assert snapshot.requests == threads_n * batches_n * 4
        assert snapshot.batches == threads_n * batches_n
        assert snapshot.batch_histogram == {4: threads_n * batches_n}
        assert snapshot.mean_batch == pytest.approx(4.0)

    def test_snapshots_stay_consistent_while_writers_run(self):
        recorder = MetricsRecorder(registry=MetricsRegistry())
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                recorder.record_batch(2, [0.001, 0.002])

        def reader():
            try:
                while not stop.is_set():
                    snapshot = recorder.snapshot()
                    # Invariants that must hold in every consistent view.
                    assert snapshot.requests == 2 * snapshot.batches
                    assert sum(snapshot.batch_histogram.values()) == \
                        snapshot.batches
            except AssertionError as exc:   # surfaced after join
                errors.append(exc)

        workers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in workers + readers:
            thread.start()
        import time
        time.sleep(0.2)
        stop.set()
        for thread in workers + readers:
            thread.join()
        assert not errors

    def test_window_bound_respected(self):
        recorder, clock = make_recorder(window=8)
        for index in range(32):
            clock.advance(0.1)
            recorder.record_batch(1, [float(index)])
        snapshot = recorder.snapshot()
        # Only the newest 8 latencies survive: p50 over 24..31.
        assert snapshot.p50_ms >= 24_000.0


class TestRegistryHistogramsFromRecorder:
    def test_recorder_feeds_latency_and_batch_histograms(self):
        registry = MetricsRegistry()
        recorder = MetricsRecorder(registry=registry)
        recorder.record_batch(4, [0.0001, 0.0002, 0.3, 1.0])
        recorder.record_failure(1, latencies_s=[5.0])
        latency = registry.histogram("repro_serving_latency_seconds")
        batch = registry.histogram("repro_serving_batch_size")
        assert latency.count == 5            # 4 successes + 1 failure
        assert batch.count == 1
        # Bucket boundaries: the default latency buckets start at 100us,
        # so a 100us observation lands in the first (le-inclusive)
        # bucket and 5.0s overflows into +Inf.
        counts = latency.bucket_counts()
        assert counts[0] == 1
        assert counts[-1] == 1

    def test_snapshot_is_immutable(self):
        recorder, _ = make_recorder()
        recorder.record_batch(1, [0.001])
        snapshot = recorder.snapshot()
        assert isinstance(snapshot, MetricsSnapshot)
        with pytest.raises(Exception):
            snapshot.requests = 99
