"""Tests for the binary-weight pass."""

import numpy as np
import pytest

from repro.core import evaluate_accuracy, train_readout
from repro.datasets import make_shapes_dataset
from repro.ir import build_model
from repro.ir.tensor import DType
from repro.optim import BinarizePass, binarize, fuse_graph
from repro.runtime import run_graph


@pytest.fixture(scope="module")
def trained():
    ds = make_shapes_dataset(200, image_size=32, seed=0)
    train, test = ds.split(0.8, seed=0)
    g = train_readout(build_model("tiny_convnet", batch=8, num_classes=4),
                      train).graph
    return fuse_graph(g), train, test


class TestBinarizePass:
    def test_weights_become_signs(self, trained):
        g, _, _ = trained
        gb = BinarizePass().run(g)
        binarized = [n for n in gb.nodes if n.op_type in ("bconv2d",
                                                          "bdense")]
        assert binarized
        for node in binarized:
            weight = gb.initializers[node.inputs[1]]
            assert weight.dtype == np.int8
            assert set(np.unique(weight)) <= {-1, 1}
            assert gb.initializer_dtypes[node.inputs[1]] is DType.BINARY

    def test_scale_is_mean_abs(self, trained):
        g, _, _ = trained
        target = [n for n in g.nodes if n.op_type == "fused_conv2d"][0]
        original = g.initializers[target.inputs[1]].copy()
        gb = BinarizePass().run(g)
        node = gb.node_by_name(target.name)
        expected = np.abs(original).mean(axis=(1, 2, 3))
        np.testing.assert_allclose(node.attrs["scale"], expected, rtol=1e-6)

    def test_storage_accounted_at_one_bit(self, trained):
        g, _, _ = trained
        gb = BinarizePass().run(g)
        # All conv/dense weights binarized: parameter bytes shrink hard.
        assert gb.parameter_bytes() < g.parameter_bytes() / 5

    def test_executes_and_validates(self, trained):
        g, _, _ = trained
        gb = binarize(g)
        gb.validate()
        x = np.zeros((8, 3, 32, 32), dtype=np.float32)
        out = run_graph(gb, {"input": x})[gb.output_names[0]]
        assert out.shape == (8, 4)

    def test_skip_layers_respected(self, trained):
        g, _, _ = trained
        weighted = [n.name for n in g.nodes
                    if n.op_type in ("fused_conv2d", "fused_dense",
                                     "conv2d", "dense")]
        gb = BinarizePass(skip_layers=weighted).run(g)
        assert not any(n.op_type.startswith("b") and
                       n.op_type in ("bconv2d", "bdense") for n in gb.nodes)

    def test_default_keeps_first_and_last(self, trained):
        g, _, _ = trained
        gb = binarize(g, keep_first_and_last=True)
        weighted = [n for n in gb.nodes
                    if n.op_type in ("bconv2d", "bdense", "fused_conv2d",
                                     "fused_dense", "conv2d", "dense")]
        assert weighted[0].op_type in ("fused_conv2d", "conv2d")
        assert weighted[-1].op_type in ("fused_dense", "dense")

    def test_original_untouched(self, trained):
        g, _, _ = trained
        before = {k: v.copy() for k, v in g.initializers.items()}
        binarize(g)
        for k, v in before.items():
            np.testing.assert_array_equal(g.initializers[k], v)

    def test_accuracy_recoverable_with_retraining(self, trained):
        g, train, test = trained
        baseline = evaluate_accuracy(g, test)
        gb = binarize(g)
        retrained = train_readout(gb, train).graph
        accuracy = evaluate_accuracy(retrained, test)
        # Binary backbones lose some accuracy but stay far above chance
        # (0.25 for four classes) once the readout is refit.
        assert accuracy > 0.6
        assert baseline - accuracy < 0.25

    def test_activation_carried_through(self, trained):
        g, _, _ = trained
        gb = BinarizePass().run(g)
        assert any(n.attrs.get("activation") == "relu"
                   for n in gb.nodes if n.op_type == "bconv2d")
