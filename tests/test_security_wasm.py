"""Tests for the Wasm-like sandbox VM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.security.wasm import (
    Function,
    Instance,
    Module,
    OutOfFuelError,
    TrapError,
    ValidationError,
)


def single_fn_module(body, num_params=0, num_locals=0, pages=1):
    module = Module("test", memory_pages=pages)
    module.add_function(Function("f", num_params, num_locals, body))
    return Instance(module)


class TestArithmetic:
    def test_const_add(self):
        inst = single_fn_module([
            ("i32.const", 2), ("i32.const", 3), ("i32.add",)])
        assert inst.invoke("f") == 5

    def test_wrapping(self):
        inst = single_fn_module([
            ("i32.const", 0xFFFFFFFF), ("i32.const", 1), ("i32.add",)])
        assert inst.invoke("f") == 0

    def test_signed_division(self):
        inst = single_fn_module([
            ("i32.const", -7), ("i32.const", 2), ("i32.div_s",)])
        assert inst.invoke("f") == (-3) & 0xFFFFFFFF

    def test_div_by_zero_traps(self):
        inst = single_fn_module([
            ("i32.const", 1), ("i32.const", 0), ("i32.div_u",)])
        with pytest.raises(TrapError, match="divide by zero"):
            inst.invoke("f")

    def test_comparisons_signed_vs_unsigned(self):
        lt_s = single_fn_module([
            ("i32.const", -1), ("i32.const", 1), ("i32.lt_s",)])
        lt_u = single_fn_module([
            ("i32.const", -1), ("i32.const", 1), ("i32.lt_u",)])
        assert lt_s.invoke("f") == 1
        assert lt_u.invoke("f") == 0

    def test_shifts_mask_count(self):
        inst = single_fn_module([
            ("i32.const", 1), ("i32.const", 33), ("i32.shl",)])
        assert inst.invoke("f") == 2  # shift count taken mod 32

    def test_eqz(self):
        inst = single_fn_module([("i32.const", 0), ("i32.eqz",)])
        assert inst.invoke("f") == 1


class TestLocalsAndParams:
    def test_params_passed(self):
        inst = single_fn_module(
            [("local.get", 0), ("local.get", 1), ("i32.sub",)], num_params=2)
        assert inst.invoke("f", 10, 4) == 6

    def test_local_set_get(self):
        inst = single_fn_module([
            ("i32.const", 9), ("local.set", 0), ("local.get", 0),
        ], num_locals=1)
        assert inst.invoke("f") == 9

    def test_local_tee_keeps_stack(self):
        inst = single_fn_module([
            ("i32.const", 5), ("local.tee", 0),
            ("local.get", 0), ("i32.add",),
        ], num_locals=1)
        assert inst.invoke("f") == 10

    def test_wrong_arity_rejected(self):
        inst = single_fn_module([("i32.const", 0)], num_params=1)
        with pytest.raises(Exception, match="expects 1 args"):
            inst.invoke("f")


class TestControlFlow:
    def test_if_else(self):
        body = [("local.get", 0),
                ("if", [("i32.const", 100)], [("i32.const", 200)])]
        inst = single_fn_module(body, num_params=1)
        assert inst.invoke("f", 1) == 100
        assert inst.invoke("f", 0) == 200

    def test_loop_countdown(self):
        # sum 1..n via loop + br_if
        body = [
            ("i32.const", 0), ("local.set", 1),
            ("loop", [
                ("local.get", 1), ("local.get", 0), ("i32.add",),
                ("local.set", 1),
                ("local.get", 0), ("i32.const", 1), ("i32.sub",),
                ("local.tee", 0),
                ("i32.const", 0), ("i32.gt_u",), ("br_if", 0),
            ]),
            ("local.get", 1),
        ]
        inst = single_fn_module(body, num_params=1, num_locals=1)
        assert inst.invoke("f", 10) == 55

    def test_br_out_of_block(self):
        body = [
            ("block", [
                ("i32.const", 1), ("br", 0), ("unreachable",),
            ]),
        ]
        inst = single_fn_module(body)
        assert inst.invoke("f") == 1

    def test_nested_br_depth(self):
        body = [
            ("block", [
                ("block", [
                    ("br", 1),     # exits the outer block
                    ("unreachable",),
                ]),
                ("unreachable",),  # skipped by the outer-exit
            ]),
            ("i32.const", 42),
        ]
        assert single_fn_module(body).invoke("f") == 42

    def test_return_early(self):
        body = [("i32.const", 7), ("return",), ("unreachable",)]
        assert single_fn_module(body).invoke("f") == 7

    def test_unreachable_traps(self):
        with pytest.raises(TrapError, match="unreachable"):
            single_fn_module([("unreachable",)]).invoke("f")

    def test_function_call(self):
        module = Module("m")
        module.add_function(Function("double", 1, 0, [
            ("local.get", 0), ("local.get", 0), ("i32.add",)]))
        module.add_function(Function("main", 1, 0, [
            ("local.get", 0), ("call", "double"), ("call", "double")]))
        inst = Instance(module)
        assert inst.invoke("main", 3) == 12


class TestMemory:
    def test_store_load(self):
        body = [
            ("i32.const", 16), ("i32.const", 0xABCD), ("i32.store", 0),
            ("i32.const", 16), ("i32.load", 0),
        ]
        assert single_fn_module(body).invoke("f") == 0xABCD

    def test_offset_addressing(self):
        body = [
            ("i32.const", 0), ("i32.const", 99), ("i32.store", 64),
            ("i32.const", 64), ("i32.load", 0),
        ]
        assert single_fn_module(body).invoke("f") == 99

    def test_byte_access(self):
        body = [
            ("i32.const", 8), ("i32.const", 0x1FF), ("i32.store8", 0),
            ("i32.const", 8), ("i32.load8_u", 0),
        ]
        assert single_fn_module(body).invoke("f") == 0xFF

    def test_out_of_bounds_traps(self):
        body = [("i32.const", 65536), ("i32.load", 0)]
        with pytest.raises(TrapError, match="out of bounds"):
            single_fn_module(body).invoke("f")

    def test_host_memory_helpers(self):
        inst = single_fn_module([("nop",)])
        inst.write_bytes(100, b"hello")
        assert inst.read_bytes(100, 5) == b"hello"


class TestSandboxing:
    def test_fuel_exhaustion(self):
        spin = [("loop", [("br", 0)])]
        module = Module("spin")
        module.add_function(Function("f", 0, 0, spin, returns=0))
        inst = Instance(module, fuel=1000)
        with pytest.raises(OutOfFuelError):
            inst.invoke("f")

    def test_instruction_counting(self):
        inst = single_fn_module([("i32.const", 1), ("i32.const", 2),
                                 ("i32.add",)])
        inst.invoke("f")
        assert inst.instructions_executed == 3

    def test_unresolved_import_rejected(self):
        module = Module("m", imports=("env.log",))
        module.add_function(Function("f", 0, 0, [("nop",)]))
        with pytest.raises(ValidationError, match="unresolved"):
            Instance(module)

    def test_host_call(self):
        calls = []

        def logger(instance, args):
            calls.append(args)
            return 123

        module = Module("m", imports=("log",))
        module.add_function(Function("f", 0, 0, [
            ("i32.const", 7), ("i32.const", 8), ("call_host", "log", 2)]))
        inst = Instance(module, host={"log": logger})
        assert inst.invoke("f") == 123
        assert calls == [(7, 8)]
        assert inst.host_calls == 1

    def test_unknown_instruction_rejected(self):
        with pytest.raises(ValidationError, match="unknown instruction"):
            single_fn_module([("f64.mul",)]).invoke("f")

    def test_measurement_changes_with_code(self):
        m1 = Module("m")
        m1.add_function(Function("f", 0, 0, [("i32.const", 1)]))
        m2 = Module("m")
        m2.add_function(Function("f", 0, 0, [("i32.const", 2)]))
        assert m1.measurement_bytes() != m2.measurement_bytes()


class TestKvWorkload:
    """The Twine guest: wasm KV store must agree with the native version."""

    def test_basic_operations(self):
        from repro.security.workloads import MISSING, build_kv_module

        inst = Instance(build_kv_module(8))
        assert inst.invoke("put", 42, 1000) == 1
        assert inst.invoke("get", 42) == 1000
        assert inst.invoke("has", 42) == 1
        assert inst.invoke("get", 43) == MISSING
        assert inst.invoke("delete", 42) == 1
        assert inst.invoke("get", 42) == MISSING
        assert inst.invoke("delete", 42) == 0

    def test_update_in_place(self):
        from repro.security.workloads import build_kv_module

        inst = Instance(build_kv_module(8))
        inst.invoke("put", 1, 10)
        inst.invoke("put", 1, 20)
        assert inst.invoke("get", 1) == 20

    def test_collision_chain(self):
        from repro.security.workloads import build_kv_module

        inst = Instance(build_kv_module(4))  # 16 slots: easy collisions
        for key in range(10):
            assert inst.invoke("put", key, key * 7) == 1
        for key in range(10):
            assert inst.invoke("get", key) == key * 7

    def test_table_full(self):
        from repro.security.workloads import build_kv_module

        inst = Instance(build_kv_module(3))  # 8 slots
        for key in range(8):
            assert inst.invoke("put", key + 100, 1) == 1
        assert inst.invoke("put", 999, 1) == 0

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 30),
                              st.integers(0, 1000)),
                    min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_property_agrees_with_native(self, operations):
        from repro.security.workloads import NativeKvStore, build_kv_module

        wasm = Instance(build_kv_module(6))
        native = NativeKvStore(6)
        for op, key, value in operations:
            if op == 0:
                assert wasm.invoke("put", key, value) == \
                    native.put(key, value)
            elif op == 1:
                assert wasm.invoke("get", key) == native.get(key)
            else:
                assert wasm.invoke("delete", key) == native.delete(key)
