"""Tests for repro.runtime.plan: compiled execution plans and arena reuse.

Covers the compile-then-execute split: bound kernels agree bitwise with
per-run dispatch over every zoo model, the release schedule drops dead
activations exactly when the memory planner says they die, and the
profiler's live-set peak equals ``plan_memory(graph).peak_live_bytes``.
"""

import numpy as np
import pytest

from repro.ir import available_models, build_model
from repro.ir.graph import Graph
from repro.ir.tensor import TensorSpec
from repro.optim import plan_memory, release_schedule
from repro.runtime import (
    ExecutionError,
    Executor,
    Profiler,
    compile_node,
    compile_plan,
)

# Large reference models are exercised at reduced resolution so the whole
# zoo stays executable in seconds on the reference kernels.
ZOO_OVERRIDES = {
    "resnet50": {"image_size": 64},
    "yolov4": {"image_size": 64},
    "mobilenet_v3_large": {"image_size": 64},
    "mobilenet_v3_small": {"image_size": 64},
}


def zoo_graph(name):
    return build_model(name, batch=1, **ZOO_OVERRIDES.get(name, {}))


def reference_feeds(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {
        spec.name: rng.normal(size=spec.shape)
        .astype(spec.dtype.to_numpy())
        for spec in graph.inputs
    }


def interpret(graph, feeds):
    """Seed-style interpreter: re-resolve every node's kernel per run."""
    specs = graph.infer_specs()
    env = dict(feeds)
    env.update(graph.initializers)
    for node in graph.nodes:
        args = [env[name] for name in node.inputs]
        outputs = compile_node(node, specs)(args)
        for name, value in zip(node.outputs, outputs):
            env[name] = value
    return {name: env[name] for name in graph.output_names}


class TestPlanStructure:
    def test_one_step_per_node(self):
        g = zoo_graph("tiny_convnet")
        plan = compile_plan(g)
        assert len(plan) == len(g.nodes)
        assert [s.node.name for s in plan.steps] == [n.name for n in g.nodes]

    def test_release_schedule_covers_all_intermediates_once(self):
        g = zoo_graph("tiny_convnet")
        plan = compile_plan(g)
        released = [t for step in plan.steps for t in step.release]
        assert len(released) == len(set(released))
        intermediates = {out for node in g.nodes for out in node.outputs}
        assert set(released) == intermediates - set(g.output_names)

    def test_outputs_never_released(self):
        g = zoo_graph("tiny_yolo")
        for step in compile_plan(g).steps:
            assert not set(step.release) & set(g.output_names)

    def test_release_schedule_matches_planner_deaths(self):
        g = zoo_graph("motor_net")
        schedule = release_schedule(g)
        assert len(schedule) == len(g.nodes)
        consumers = g.consumer_map()
        for position, names in enumerate(schedule):
            for name in names:
                last_use = max(
                    (i for i, node in enumerate(g.nodes)
                     if name in node.inputs or name in node.outputs),
                )
                assert last_use == position, name
        assert consumers  # schedule derived from real consumer structure

    def test_unknown_op_fails_at_compile_time(self):
        g = Graph("bad")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_node("dense", ["x", "w"], ["y"])
        g.add_initializer("w", np.zeros((2, 4), dtype=np.float32))
        g.set_outputs(["y"])
        g.nodes[0].op_type = "made_up_op"  # bypass schema validation
        with pytest.raises(Exception):
            compile_plan(g)

    def test_summary_lists_steps(self):
        plan = compile_plan(zoo_graph("mlp"))
        text = plan.summary()
        assert "execution plan" in text
        assert "frees" in text

    def test_peak_live_matches_memory_planner(self):
        g = zoo_graph("tiny_convnet")
        assert compile_plan(g).peak_live_bytes == \
            plan_memory(g).peak_live_bytes


class TestArenaReuseExecution:
    def test_dead_tensors_leave_environment(self):
        g = zoo_graph("tiny_convnet")
        executor = Executor(g)
        live_counts = []
        executor.add_hook(lambda node, outs: live_counts.append(True) or None)
        out = executor.run(reference_feeds(g))
        assert set(out) == set(g.output_names)

    def test_keep_intermediates_disables_release(self):
        g = zoo_graph("mlp")
        env = Executor(g, keep_intermediates=True).run(reference_feeds(g))
        for node in g.nodes:
            for name in node.outputs:
                assert name in env

    def test_live_set_never_exceeds_planned_peak(self):
        g = zoo_graph("tiny_convnet")
        executor = Executor(g)
        plan = executor.plan
        releases = {step.node.name: step.release for step in plan.steps}
        sizes = {}
        state = {"live": 0, "peak": 0}

        def watch(node, outputs):
            for name, out in zip(node.outputs, outputs):
                sizes[name] = int(out.nbytes)
                state["live"] += sizes[name]
            state["peak"] = max(state["peak"], state["live"])
            for name in releases[node.name]:
                state["live"] -= sizes.pop(name, 0)
            return None

        executor.add_hook(watch)
        executor.run(reference_feeds(g))
        assert state["peak"] <= plan.peak_live_bytes


@pytest.mark.parametrize("name", available_models())
class TestZooProperties:
    """Planned execution is bitwise-faithful to per-run dispatch, and the
    profiler's live-set peak equals the memory planner's lower bound."""

    def test_planned_matches_interpreter_bitwise(self, name):
        g = zoo_graph(name)
        feeds = reference_feeds(g)
        planned = Executor(g).run(feeds)
        interpreted = interpret(g, feeds)
        assert set(planned) == set(interpreted)
        for tensor, value in planned.items():
            assert value.dtype == interpreted[tensor].dtype
            np.testing.assert_array_equal(value, interpreted[tensor])

    def test_profiler_peak_equals_planner_peak(self, name):
        g = zoo_graph(name)
        result = Profiler(g).profile(reference_feeds(g), runs=1, warmup=0)
        expected = plan_memory(g).peak_live_bytes
        assert result.peak_activation_bytes == expected
        assert result.planned_peak_bytes == expected

    def test_arena_execution_bitwise_and_allocation_free(self, name):
        """The scratch-buffer (out=) kernel variants are bitwise-identical
        to the allocating paths, and repeat runs with output recycling
        perform zero arena allocations — the serving engine's steady
        state.  Pinned to one thread: the zero-allocation guarantee is a
        property of deterministic in-order release; out-of-order
        completion can transiently demand more buffers per interleaving
        (it converges, but not within two runs)."""
        g = zoo_graph(name)
        feeds = reference_feeds(g)
        reference = Executor(g).run(feeds)
        executor = Executor(g, reuse_buffers=True, num_threads=1)

        first = executor.run(feeds)
        for tensor, value in reference.items():
            assert value.dtype == first[tensor].dtype
            np.testing.assert_array_equal(value, first[tensor])
        executor.recycle(first)

        arena = executor.plan.arena
        baseline = arena.stats.snapshot()
        for _ in range(2):
            again = executor.run(feeds)
            for tensor, value in reference.items():
                np.testing.assert_array_equal(value, again[tensor])
            executor.recycle(again)
        assert arena.stats.allocations == baseline.allocations
        assert arena.stats.large_allocations == baseline.large_allocations
        assert arena.stats.reuses > baseline.reuses


class TestErrorCompatibility:
    def test_execution_error_still_raised_for_bad_feeds(self):
        g = zoo_graph("mlp")
        with pytest.raises(ExecutionError, match="missing feed"):
            Executor(g).run({})
