"""Tests for repro.security.crypto."""

import pytest
from hypothesis import given, strategies as st

from repro.security import crypto


class TestHashing:
    def test_sha256_deterministic(self):
        assert crypto.sha256(b"abc") == crypto.sha256(b"abc")
        assert len(crypto.sha256(b"")) == 32

    def test_measure_order_sensitive(self):
        assert crypto.measure(b"a", b"b") != crypto.measure(b"b", b"a")

    def test_measure_length_prefixed(self):
        # 'ab' + 'c' must differ from 'a' + 'bc' (no splicing).
        assert crypto.measure(b"ab", b"c") != crypto.measure(b"a", b"bc")

    def test_hmac_key_sensitivity(self):
        assert crypto.hmac(b"k1", b"msg") != crypto.hmac(b"k2", b"msg")

    def test_kdf_label_separation(self):
        master = b"m" * 32
        assert crypto.kdf(master, "enc") != crypto.kdf(master, "mac")
        assert crypto.kdf(master, "enc", b"ctx1") != \
            crypto.kdf(master, "enc", b"ctx2")

    def test_random_bytes_unique(self):
        assert crypto.random_bytes() != crypto.random_bytes()


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        sk, vk = crypto.generate_keypair()
        sig = sk.sign(b"message")
        vk.verify(b"message", sig)  # no exception

    def test_tampered_message_rejected(self):
        sk, vk = crypto.generate_keypair()
        sig = sk.sign(b"message")
        with pytest.raises(crypto.SignatureError):
            vk.verify(b"messag3", sig)

    def test_tampered_signature_rejected(self):
        sk, vk = crypto.generate_keypair()
        sig = bytearray(sk.sign(b"message"))
        sig[0] ^= 1
        with pytest.raises(crypto.SignatureError):
            vk.verify(b"message", bytes(sig))

    def test_wrong_key_rejected(self):
        sk1, _ = crypto.generate_keypair()
        _, vk2 = crypto.generate_keypair()
        with pytest.raises(crypto.SignatureError):
            vk2.verify(b"m", sk1.sign(b"m"))

    def test_seeded_keys_deterministic(self):
        a = crypto.SigningKey(b"seed")
        b = crypto.SigningKey(b"seed")
        assert a.key_id == b.key_id
        assert a.sign(b"x") == b.sign(b"x")


class TestSealedBox:
    def test_roundtrip(self):
        box = crypto.SealedBox(b"key")
        blob = box.seal(b"secret payload")
        assert box.unseal(blob) == b"secret payload"

    def test_ciphertext_differs_from_plaintext(self):
        box = crypto.SealedBox(b"key")
        blob = box.seal(b"secret payload")
        assert b"secret payload" not in blob

    def test_nonce_randomizes(self):
        box = crypto.SealedBox(b"key")
        assert box.seal(b"data") != box.seal(b"data")

    def test_wrong_key_rejected(self):
        blob = crypto.SealedBox(b"key1").seal(b"data")
        with pytest.raises(crypto.SignatureError):
            crypto.SealedBox(b"key2").unseal(blob)

    def test_tamper_detected(self):
        box = crypto.SealedBox(b"key")
        blob = bytearray(box.seal(b"data"))
        blob[-1] ^= 1
        with pytest.raises(crypto.SignatureError):
            box.unseal(bytes(blob))

    def test_truncated_blob_rejected(self):
        with pytest.raises(crypto.SignatureError, match="too short"):
            crypto.SealedBox(b"key").unseal(b"short")

    @given(st.binary(max_size=512))
    def test_property_roundtrip(self, payload):
        box = crypto.SealedBox(b"prop-key")
        assert box.unseal(box.seal(payload)) == payload

    def test_empty_payload(self):
        box = crypto.SealedBox(b"key")
        assert box.unseal(box.seal(b"")) == b""
