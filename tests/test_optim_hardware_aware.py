"""Tests for repro.optim.hardware_aware: plan search and objectives."""

import numpy as np
import pytest

from repro.core import accuracy_quality_fn, train_readout
from repro.datasets import make_shapes_dataset
from repro.hw import NaivePeakModel, RooflineModel, get_accelerator
from repro.ir import build_model
from repro.optim import (
    PlanStep,
    apply_step,
    compare_objectives,
    default_candidate_steps,
    greedy_search,
    ops_objective,
)


@pytest.fixture(scope="module")
def trained_setup():
    dataset = make_shapes_dataset(160, image_size=32, seed=0)
    train, test = dataset.split(0.75, seed=0)
    g = build_model("tiny_convnet", batch=8, num_classes=4)
    trained = train_readout(g, train).graph
    rng = np.random.default_rng(0)
    feeds = [{"input": train.features[:8]}]
    return trained, test, feeds


class TestObjectives:
    def test_ops_objective_counts_ops(self):
        g = build_model("mlp", batch=1)
        assert ops_objective(g) == float(g.total_cost().ops)

    def test_roofline_objective_usable(self):
        g = build_model("tiny_convnet", batch=1)
        model = RooflineModel(get_accelerator("XavierNX"))
        assert model.latency_seconds(g) > 0


class TestApplyStep:
    def test_fuse(self, trained_setup):
        trained, _, _ = trained_setup
        fused = apply_step(trained, PlanStep("fuse"), None)
        assert len(fused) < len(trained)

    def test_int8_requires_feeds(self, trained_setup):
        trained, _, _ = trained_setup
        with pytest.raises(ValueError, match="calibration"):
            apply_step(trained, PlanStep("int8"), None)

    def test_unknown_step(self, trained_setup):
        trained, _, _ = trained_setup
        with pytest.raises(ValueError, match="unknown plan step"):
            apply_step(trained, PlanStep("magic"), None)

    def test_prune_step(self, trained_setup):
        trained, _, _ = trained_setup
        pruned = apply_step(trained,
                            PlanStep("neuron_prune", (("fraction", 0.25),)),
                            None)
        assert pruned.num_parameters() < trained.num_parameters()


class TestCandidateSteps:
    def test_filtered_by_support(self):
        steps = default_candidate_steps(supports_int8=False,
                                        supports_fp16=False)
        kinds = {s.kind for s in steps}
        assert "int8" not in kinds and "fp16" not in kinds
        assert "fuse" in kinds

    def test_describe(self):
        step = PlanStep("neuron_prune", (("fraction", 0.5),))
        assert "0.5" in step.describe()


class TestGreedySearch:
    def test_improves_objective(self, trained_setup):
        trained, test, feeds = trained_setup
        quality = accuracy_quality_fn(test)
        result = greedy_search(
            trained, ops_objective, quality,
            max_quality_drop=0.1, calibration_feeds=feeds,
        )
        baseline = ops_objective(trained)
        assert result.best.objective_value <= baseline
        assert len(result.explored) > 1

    def test_respects_quality_budget(self, trained_setup):
        trained, test, feeds = trained_setup
        quality = accuracy_quality_fn(test)
        base = quality(trained)
        result = greedy_search(
            trained, ops_objective, quality,
            max_quality_drop=0.05, calibration_feeds=feeds,
        )
        assert base - result.best.quality <= 0.05 + 1e-9

    def test_zero_budget_keeps_exact_transforms_only(self, trained_setup):
        trained, test, feeds = trained_setup
        quality = accuracy_quality_fn(test)
        result = greedy_search(
            trained, ops_objective, quality,
            max_quality_drop=0.0,
            candidate_steps=[PlanStep("neuron_prune", (("fraction", 0.5),))],
            calibration_feeds=feeds,
        )
        # Aggressive pruning hurts accuracy; with zero budget the search
        # must keep the baseline unless pruning happens to be lossless.
        assert result.best.quality >= quality(trained) - 1e-9


class TestCompareObjectives:
    def test_returns_both_plans(self, trained_setup):
        trained, test, feeds = trained_setup
        quality = accuracy_quality_fn(test)
        roofline = RooflineModel(get_accelerator("XavierNX"))
        plans = compare_objectives(
            trained, roofline.latency_seconds, quality,
            calibration_feeds=feeds, max_quality_drop=0.1,
        )
        assert set(plans) == {"theoretical", "hardware_aware"}
        # Both re-scored under hardware latency; hardware-aware cannot lose.
        assert plans["hardware_aware"].objective_value <= \
            plans["theoretical"].objective_value * 1.001

    def test_naive_model_underestimates_latency(self):
        g = build_model("tiny_convnet", batch=1)
        spec = get_accelerator("GTX1660")
        naive = NaivePeakModel(spec).latency_seconds(g)
        roofline = RooflineModel(spec).latency_seconds(g)
        assert naive < roofline  # ignores memory and dispatch overheads
