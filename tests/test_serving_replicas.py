"""Tests for repro.serving.replicas: wire codec, replica tier, lifecycle.

Process-spawning tests share one module-scoped 2-replica tier (spawn
costs ~0.5 s each); tests that damage the tier (crashes, closes) build
their own.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.ir import build_model
from repro.runtime import Executor
from repro.serving import (
    EngineClosedError,
    ReplicaCrashError,
    ReplicaEngine,
    TierSaturatedError,
    sample_feeds,
)
from repro.serving.replicas import (
    ReplicaProtocolError,
    _KIND_ERROR,
    _KIND_REQUEST,
    _pack_error,
    _pack_frame,
    _unpack_error,
    _unpack_frame,
    decode_tensors,
    encode_tensors,
)


class TestWireCodec:
    def test_roundtrip_all_runtime_dtypes(self):
        rng = np.random.default_rng(0)
        arrays = {
            "fp32": rng.standard_normal((2, 3, 4)).astype(np.float32),
            "fp16": rng.standard_normal((5,)).astype(np.float16),
            "fp64": rng.standard_normal((1, 7)).astype(np.float64),
            "int8": rng.integers(-128, 127, (3, 3), dtype=np.int8),
            "int32": rng.integers(-1000, 1000, (4,), dtype=np.int32),
            "uint8": rng.integers(0, 255, (2, 2), dtype=np.uint8),
            "bool": rng.integers(0, 2, (6,), dtype=bool),
        }
        decoded = decode_tensors(encode_tensors(arrays))
        assert set(decoded) == set(arrays)
        for name, array in arrays.items():
            assert decoded[name].dtype == array.dtype
            assert decoded[name].shape == array.shape
            # Bitwise equality, not allclose: the tier's replica-vs-
            # in-process identity guarantee rests on this.
            np.testing.assert_array_equal(decoded[name], array)

    def test_roundtrip_empty_and_noncontiguous(self):
        arrays = {
            "empty": np.zeros((0, 4), dtype=np.float32),
            "strided": np.arange(24, dtype=np.float32).reshape(4, 6).T,
        }
        decoded = decode_tensors(encode_tensors(arrays))
        np.testing.assert_array_equal(decoded["strided"],
                                      arrays["strided"])
        assert decoded["empty"].shape == (0, 4)

    def test_decoded_views_are_read_only(self):
        payload = encode_tensors({"x": np.ones(3, dtype=np.float32)})
        decoded = decode_tensors(payload)
        with pytest.raises(ValueError):
            decoded["x"][0] = 2.0

    def test_frame_roundtrip_and_magic_check(self):
        frame = _pack_frame(_KIND_REQUEST, 42, (1, 2, 3, 4, 5), b"abc")
        kind, request_id, stats, payload = _unpack_frame(frame)
        assert kind == _KIND_REQUEST
        assert request_id == 42
        assert stats == (1, 2, 3, 4, 5)
        assert bytes(payload) == b"abc"
        with pytest.raises(ReplicaProtocolError):
            _unpack_frame(b"XXXX" + frame[4:])
        with pytest.raises(ReplicaProtocolError):
            _unpack_frame(b"short")

    def test_truncated_tensor_payload_raises(self):
        payload = encode_tensors({"x": np.ones(8, dtype=np.float32)})
        with pytest.raises(ReplicaProtocolError):
            decode_tensors(payload[:-4])

    def test_error_frame_roundtrip(self):
        frame = _pack_error(7, (0, 0, 1, 0, 0),
                            ValueError("bad feed: ünicode"))
        kind, request_id, stats, payload = _unpack_frame(frame)
        assert kind == _KIND_ERROR and request_id == 7
        exc_kind, message = _unpack_error(payload)
        assert exc_kind == "ValueError"
        assert "bad feed" in message


@pytest.fixture(scope="module")
def mlp_graph():
    return build_model("mlp")


@pytest.fixture(scope="module")
def mlp_feeds(mlp_graph):
    return sample_feeds(mlp_graph, seed=3)


@pytest.fixture(scope="module")
def tier(mlp_graph, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("replica-cache")
    with ReplicaEngine(mlp_graph, replicas=2, max_batch=4,
                       max_latency_ms=10.0, max_inflight=2,
                       cache_dir=cache_dir) as engine:
        yield engine


class TestReplicaEngine:
    def test_results_bitwise_identical_to_direct_executor(self, tier,
                                                          mlp_graph):
        # Hold the dispatcher while submitting so the queue coalesces
        # deterministic groups of max_batch; each group must then match
        # a direct in-process run of the *same* batch bit for bit (the
        # codec and the mmap-shared weights add nothing).  Comparing at
        # equal batch shape matters: BLAS may round differently at
        # batch 4 than at batch 1, in-process or not.
        size = tier.max_batch
        samples = [sample_feeds(mlp_graph, seed=seed)
                   for seed in range(3 * size)]
        tier._dispatch_gate.clear()
        try:
            futures = [tier.infer(sample) for sample in samples]
        finally:
            tier._dispatch_gate.set()
        results = [future.result(timeout=60) for future in futures]
        direct = Executor(mlp_graph.with_batch(size))
        for start in range(0, len(samples), size):
            group = samples[start:start + size]
            batched = {
                name: np.concatenate([sample[name] for sample in group],
                                     axis=0)
                for name in group[0]
            }
            reference = direct.run(batched)
            for row, result in enumerate(results[start:start + size]):
                assert set(result) == set(reference)
                for name in reference:
                    assert result[name].dtype == reference[name].dtype
                    np.testing.assert_array_equal(
                        result[name], reference[name][row:row + 1])

    def test_metrics_and_replica_stats(self, tier, mlp_feeds):
        tier.infer_many([mlp_feeds] * 8, timeout=60)
        snapshot = tier.metrics()
        assert snapshot.requests >= 8
        assert snapshot.failures == 0
        assert snapshot.plan_cache_hits + snapshot.plan_cache_misses \
            == tier.max_batch
        stats = tier.replica_stats()
        assert len(stats) == 2
        assert all(entry.alive for entry in stats)
        assert sum(entry.completed_requests for entry in stats) \
            == snapshot.requests
        # Piggybacked child counters agree with the parent's view.
        assert sum(entry.child_requests for entry in stats) \
            == snapshot.requests

    def test_admission_control_sheds_when_queue_full(self, tier,
                                                     mlp_feeds):
        # Hold the dispatcher between batches so submissions pile up in
        # the queue; past queue_limit the tier must shed, typed.
        tier._dispatch_gate.clear()
        futures = []
        try:
            with pytest.raises(TierSaturatedError):
                for _ in range(tier.queue_limit + tier.max_batch + 8):
                    futures.append(tier.infer(mlp_feeds))
            assert tier.shed_requests >= 1
        finally:
            tier._dispatch_gate.set()
        for future in futures:
            assert future.result(timeout=60)

    def test_validation_and_close_semantics(self, mlp_graph, mlp_feeds):
        with pytest.raises(ValueError):
            ReplicaEngine(mlp_graph, replicas=0)
        with pytest.raises(ValueError):
            ReplicaEngine(mlp_graph, replicas=1, max_inflight=0)


class TestReplicaLifecycle:
    def test_crashed_replica_restarts_and_tier_recovers(
            self, mlp_graph, mlp_feeds, tmp_path):
        with ReplicaEngine(mlp_graph, replicas=2, max_batch=2,
                           max_latency_ms=5.0, restart_limit=2,
                           cache_dir=tmp_path) as engine:
            victim_pid = engine.replica_stats()[0].pid
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = engine.replica_stats()
                if engine.restarts == 1 and \
                        all(entry.alive for entry in stats) and \
                        stats[0].pid != victim_pid:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("replica was not restarted in time")
            # The restarted tier serves again, at full width.
            results = engine.infer_many([mlp_feeds] * 8, timeout=60)
            assert len(results) == 8
            assert engine.restarts == 1

    def test_crash_beyond_restart_limit_fails_requests(
            self, mlp_graph, mlp_feeds, tmp_path):
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=1,
                           max_latency_ms=1.0, restart_limit=0,
                           cache_dir=tmp_path) as engine:
            os.kill(engine.replica_stats()[0].pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and \
                    engine.replica_stats()[0].alive:
                time.sleep(0.05)
            assert not engine.replica_stats()[0].alive
            with pytest.raises(ReplicaCrashError):
                engine.infer(mlp_feeds).result(timeout=30)

    def test_closed_tier_raises_typed_error(self, mlp_graph, mlp_feeds,
                                            tmp_path):
        engine = ReplicaEngine(mlp_graph, replicas=1, max_batch=1,
                               cache_dir=tmp_path)
        engine.infer_sync(mlp_feeds, timeout=60)
        engine.close(timeout=30)
        with pytest.raises(EngineClosedError):
            engine.infer(mlp_feeds)
        engine.close(timeout=30)                  # idempotent
        # Every replica process is really gone.
        assert all(not entry.alive or entry.pid is None
                   for entry in engine.replica_stats())

    def test_second_tier_warm_starts_from_shared_cache(
            self, mlp_graph, mlp_feeds, tmp_path):
        first = ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                              cache_dir=tmp_path)
        try:
            assert first.metrics().plan_cache_misses == 2
        finally:
            first.close(timeout=30)
        second = ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                               cache_dir=tmp_path)
        try:
            snapshot = second.metrics()
            assert snapshot.plan_cache_hits == 2
            assert snapshot.plan_cache_misses == 0
            assert second.infer_sync(mlp_feeds, timeout=60)
        finally:
            second.close(timeout=30)
