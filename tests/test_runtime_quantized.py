"""Tests for repro.runtime.quantized: qparams and integer kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.tensor import DType
from repro.runtime import kernels
from repro.runtime.quantized import (
    QuantParams,
    choose_qparams,
    quantization_error,
    quantized_conv2d,
    quantized_dense,
)


class TestQuantParams:
    def test_quantize_known_values(self):
        params = QuantParams(np.array([0.5]), np.array([0]))
        q = params.quantize(np.array([1.0, -1.0, 0.26]))
        np.testing.assert_array_equal(q, [2, -2, 1])

    def test_clipping_to_int8(self):
        params = QuantParams(np.array([0.01]), np.array([0]))
        q = params.quantize(np.array([100.0, -100.0]))
        np.testing.assert_array_equal(q, [127, -128])

    def test_zero_point_shifts(self):
        params = QuantParams(np.array([1.0]), np.array([10]),
                             DType.UINT8)
        assert params.quantize(np.array([0.0]))[0] == 10

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            QuantParams(np.array([-1.0]), np.array([0]))

    def test_per_tensor_vector_scale_rejected(self):
        with pytest.raises(ValueError):
            QuantParams(np.array([1.0, 2.0]), np.array([0, 0]))

    def test_per_channel_dequantize(self):
        params = QuantParams(np.array([1.0, 0.5]), np.array([0, 0]),
                             channel_axis=0)
        q = np.array([[2], [2]], dtype=np.int8)
        np.testing.assert_allclose(params.dequantize(q), [[2.0], [1.0]])

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_error_bounded(self, values):
        data = np.array(values, dtype=np.float32)
        params = choose_qparams(data, symmetric=False)
        # In-range values round-trip within half a quantization step.
        err = np.abs(params.dequantize(params.quantize(data)) - data)
        assert err.max() <= float(params.scale[0]) * 0.51 + 1e-6


class TestChooseQParams:
    def test_symmetric_zero_point_is_zero(self):
        params = choose_qparams(np.array([-3.0, 2.0]), symmetric=True)
        assert params.zero_point[0] == 0

    def test_asymmetric_covers_range(self):
        data = np.array([0.0, 10.0], dtype=np.float32)
        params = choose_qparams(data, symmetric=False)
        q = params.quantize(data)
        back = params.dequantize(q)
        np.testing.assert_allclose(back, data, atol=float(params.scale[0]))

    def test_constant_tensor_handled(self):
        params = choose_qparams(np.zeros(4, dtype=np.float32))
        assert float(params.scale[0]) == 1.0

    def test_per_channel_scales_differ(self):
        data = np.stack([np.ones(4) * 0.1, np.ones(4) * 10.0]) \
            .astype(np.float32)
        params = choose_qparams(data, symmetric=True, channel_axis=0)
        assert params.scale[1] > params.scale[0] * 10

    def test_symmetric_uint8_rejected(self):
        with pytest.raises(ValueError):
            choose_qparams(np.ones(3), DType.UINT8, symmetric=True)

    def test_per_channel_beats_per_tensor_on_skewed_weights(self):
        rng = np.random.default_rng(0)
        # Channels with wildly different magnitudes: per-tensor scaling
        # crushes the small channel to zero, per-channel preserves it.
        weight = np.stack([rng.normal(0, 0.01, 64),
                           rng.normal(0, 5.0, 64)]).astype(np.float32)
        per_tensor = choose_qparams(weight, symmetric=True)
        per_channel = choose_qparams(weight, symmetric=True, channel_axis=0)

        def small_channel_error(params):
            restored = params.dequantize(params.quantize(weight))
            return float(np.abs(restored[0] - weight[0]).mean())

        assert small_channel_error(per_channel) < \
            small_channel_error(per_tensor) / 5


class TestQuantizedKernels:
    def _setup_conv(self, seed=0):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 1, (1, 2, 6, 6)).astype(np.float32)
        weight = rng.normal(0, 0.5, (3, 2, 3, 3)).astype(np.float32)
        bias = rng.normal(0, 0.1, 3).astype(np.float32)
        float_out = kernels.conv2d(data, weight, bias, padding=1)
        d_params = choose_qparams(data, symmetric=False)
        w_params = choose_qparams(weight, symmetric=True, channel_axis=0)
        o_params = choose_qparams(float_out, symmetric=False)
        return data, weight, bias, float_out, d_params, w_params, o_params

    def test_qconv_close_to_float(self):
        (data, weight, bias, float_out,
         d_params, w_params, o_params) = self._setup_conv()
        q_out = quantized_conv2d(
            d_params.quantize(data), d_params,
            w_params.quantize(weight), w_params,
            bias, o_params, padding=1)
        restored = o_params.dequantize(q_out)
        scale = float(o_params.scale[0])
        assert np.abs(restored - float_out).max() < 8 * scale

    def test_qconv_fused_relu(self):
        (data, weight, bias, float_out,
         d_params, w_params, o_params) = self._setup_conv(1)
        q_out = quantized_conv2d(
            d_params.quantize(data), d_params,
            w_params.quantize(weight), w_params,
            bias, o_params, padding=1, activation="relu")
        restored = o_params.dequantize(q_out)
        # ReLU applied before requantization: no negative outputs beyond
        # the zero-point rounding.
        assert restored.min() >= -float(o_params.scale[0])

    def test_qdense_close_to_float(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(4, 8)).astype(np.float32)
        weight = rng.normal(0, 0.5, (3, 8)).astype(np.float32)
        float_out = data @ weight.T
        d_params = choose_qparams(data, symmetric=False)
        w_params = choose_qparams(weight, symmetric=True, channel_axis=0)
        o_params = choose_qparams(float_out, symmetric=False)
        q_out = quantized_dense(d_params.quantize(data), d_params,
                                w_params.quantize(weight), w_params,
                                None, o_params)
        restored = o_params.dequantize(q_out)
        assert np.abs(restored - float_out).max() < 5 * float(o_params.scale[0])

    def test_quantization_error_zero_on_grid(self):
        params = QuantParams(np.array([0.5]), np.array([0]))
        on_grid = np.array([0.0, 0.5, -1.0, 2.5], dtype=np.float32)
        assert quantization_error(on_grid, params) < 1e-7
