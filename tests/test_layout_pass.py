"""Tests for the per-plan memory-layout pass (LayoutPlanner).

The pass rewrites quantized conv regions to NHWC with boundary
transposes.  Its contract is absolute: with the pass enabled, every
model in the zoo — float, quantized, at any thread count, packed or
interpreted — produces *bitwise* identical outputs to the plain graph.
Float graphs contain no eligible regions, so the pass must leave them
untouched; quantized conv nets must form regions and still match.
"""

import json

import numpy as np
import pytest

from repro.ir import build_model
from repro.optim import (
    AOTConfig,
    QuantizePass,
    calibrate,
    fuse_graph,
    specialize_graph,
)
from repro.optim.passes import LayoutPlanner, PassManager
from repro.runtime import (
    Executor,
    PlanCache,
    compile_plan,
    load_or_build,
)
from repro.runtime import kernels


def quantized_net(name="tiny_convnet", batch=2, **overrides):
    g = fuse_graph(build_model(name, batch=batch, **overrides))
    rng = np.random.default_rng(7)
    shape = tuple(g.inputs[0].shape)
    feeds = [{g.inputs[0].name: rng.normal(size=shape).astype(np.float32)}
             for _ in range(3)]
    return QuantizePass(calibrate(g, feeds)).run(g)


def reference_feeds(graph, seed=3):
    rng = np.random.default_rng(seed)
    return {
        spec.name: rng.normal(size=spec.shape)
        .astype(spec.dtype.to_numpy())
        for spec in graph.inputs
    }


def assert_bitwise(expected, got):
    assert set(expected) == set(got)
    for name, value in expected.items():
        assert got[name].dtype == value.dtype
        np.testing.assert_array_equal(got[name], value)


class TestRegionFormation:
    def test_quantized_convnet_forms_one_region(self):
        g = quantized_net()
        pm = PassManager([LayoutPlanner()])
        g2 = pm.run(g)
        details = pm.reports[-1].details
        assert details["regions"] == 1
        assert details["transposes"] == 2  # one entry, one exit
        nhwc_convs = [n for n in g2.nodes if n.op_type == "qconv2d"
                      and n.attrs.get("layout") == "NHWC"]
        assert nhwc_convs
        transposes = [n for n in g2.nodes if n.op_type == "transpose"]
        assert len(transposes) == 2
        perms = sorted(tuple(n.attrs["perm"]) for n in transposes)
        assert perms == [(0, 2, 3, 1), (0, 3, 1, 2)]

    def test_float_graph_untouched(self):
        g = fuse_graph(build_model("tiny_convnet", batch=1))
        pm = PassManager([LayoutPlanner()])
        g2 = pm.run(g)
        assert pm.reports[-1].details["regions"] == 0
        assert [n.op_type for n in g2.nodes] == \
            [n.op_type for n in g.nodes]

    def test_min_convs_threshold(self):
        g = quantized_net()
        pm = PassManager([LayoutPlanner(min_convs=1000)])
        g2 = pm.run(g)
        assert pm.reports[-1].details["regions"] == 0
        assert not any(n.op_type == "transpose" for n in g2.nodes)

    def test_disabled_exact_qgemm_disables_pass(self):
        g = quantized_net()
        prev = kernels.set_exact_qgemm(False)
        try:
            pm = PassManager([LayoutPlanner()])
            pm.run(g)
            assert pm.reports[-1].details["regions"] == 0
        finally:
            kernels.set_exact_qgemm(prev)

    def test_graph_revalidates_and_output_names_survive(self):
        g = quantized_net()
        g2 = PassManager([LayoutPlanner()]).run(g)
        g2.validate()
        assert g2.output_names == g.output_names
        specs = g2.infer_specs()
        ref_specs = g.infer_specs()
        for name in g.output_names:
            assert specs[name].shape == ref_specs[name].shape


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("model,overrides", [
        ("tiny_convnet", {}),
        ("tiny_yolo", {}),
        ("mobilenet_v3_small", {"image_size": 64}),
    ])
    @pytest.mark.parametrize("prepack", [True, False])
    def test_zoo_quantized_bitwise(self, model, overrides, prepack):
        g = quantized_net(model, **overrides)
        g2 = PassManager([LayoutPlanner()]).run(g)
        feeds = reference_feeds(g)
        ref = Executor(g, plan=compile_plan(g, prepack=prepack)).run(feeds)
        plan = compile_plan(g2, prepack=prepack)
        for threads in (1, 2, 8):
            got = Executor(g2, plan=plan, num_threads=threads).run(feeds)
            assert_bitwise(ref, got)

    def test_arena_execution_bitwise(self):
        g = quantized_net("tiny_yolo")
        g2 = PassManager([LayoutPlanner()]).run(g)
        feeds = reference_feeds(g)
        ref = Executor(g).run(feeds)
        ex = Executor(g2, reuse_buffers=True, prewarm=True)
        for _ in range(2):
            assert_bitwise(ref, ex.run(feeds))

    def test_specialize_graph_knob(self):
        g = quantized_net()
        feeds = reference_feeds(g)
        ref = Executor(g).run(feeds)
        g2 = specialize_graph(g, AOTConfig(plan_layout=True))
        assert any(n.op_type == "transpose" for n in g2.nodes)
        assert_bitwise(ref, Executor(g2).run(feeds))

    def test_float_zoo_models_pass_is_noop(self):
        for model in ("tiny_convnet", "tiny_yolo"):
            g = fuse_graph(build_model(model, batch=1))
            g2 = PassManager([LayoutPlanner()]).run(g)
            feeds = reference_feeds(g)
            assert_bitwise(Executor(g).run(feeds), Executor(g2).run(feeds))


class TestCacheTokenAndPlanCache:
    def test_cache_token_includes_layout_knob(self):
        off = AOTConfig().cache_token()
        on = AOTConfig(plan_layout=True).cache_token()
        assert off != on
        assert ":ly=0" in off and ":ly=1" in on

    def test_layout_plans_round_trip_through_cache(self, tmp_path):
        g = quantized_net()
        cache = PlanCache(tmp_path)
        config = AOTConfig(plan_layout=True)
        feeds = reference_feeds(g)
        ref = Executor(g).run(feeds)
        cold = load_or_build(g, config=config, cache=cache)
        assert not cold.from_cache
        warm = load_or_build(g, config=config, cache=cache)
        assert warm.from_cache
        assert any(n.op_type == "transpose" for n in warm.graph.nodes)
        assert_bitwise(ref, Executor(warm.graph, plan=warm.plan).run(feeds))

    def test_f64_packs_round_trip(self, tmp_path):
        """The v2 pack format (float64 exact-GEMM panels) must survive
        the blob round trip and load as bit-identical arrays."""
        g = quantized_net()
        cache = PlanCache(tmp_path)
        cold = load_or_build(g, cache=cache)
        warm = load_or_build(g, cache=cache)
        assert warm.from_cache
        f64_packs = 0
        for node_name, entries in cold.plan.packs.items():
            for entry_name, value in entries.items():
                loaded = warm.plan.packs[node_name][entry_name]
                assert loaded.dtype == value.dtype
                np.testing.assert_array_equal(loaded, value)
                if value.dtype == np.float64 and entry_name.startswith(
                        ("w2", "wt", "w_nhwc")):
                    f64_packs += 1
        assert f64_packs > 0

    def test_stale_version_entry_rebuilt_in_place(self, tmp_path):
        g = quantized_net()
        cache = PlanCache(tmp_path)
        cold = load_or_build(g, cache=cache)
        meta_path = tmp_path / cold.key / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = meta["version"] - 1  # pretend an old format
        meta_path.write_text(json.dumps(meta))
        rebuilt = load_or_build(g, cache=cache)
        assert not rebuilt.from_cache  # stale entry was a miss
        # ... and the store replaced it in place: next load hits v-now
        assert json.loads(meta_path.read_text())["version"] == \
            json.loads((tmp_path / cold.key / "meta.json").read_text())[
                "version"]
        warm = load_or_build(g, cache=cache)
        assert warm.from_cache
        feeds = reference_feeds(g)
        assert_bitwise(Executor(g).run(feeds),
                       Executor(warm.graph, plan=warm.plan).run(feeds))
