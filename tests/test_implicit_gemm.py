"""Implicit-GEMM convolution and cache-blocked quantized GEMM tests.

The implicit path must be *bitwise* identical to the materialized-im2col
reference — same column buffer content and layout means the same BLAS
call and therefore the same bits.  The sweeps here cover the geometry
corners the gather math has to get right (stride > kernel, asymmetric
padding, padding wider than the kernel, grouped convolutions) and the
exact float64 quantized GEMMs against the int32 references, including
with cache blocking forced on by shrinking the panel budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.tensor import DType
from repro.runtime import kernels
from repro.runtime.quantized import (
    QuantParams,
    build_requant_plan,
    choose_qparams,
    quantized_conv2d,
    quantized_dense,
    zero_point_row_term,
)


def _conv_both_modes(data, weight, bias=None, stride=1, padding=0,
                     groups=1, workspace=None):
    """Run conv2d in implicit and im2col modes; return (implicit, ref)."""
    prev = kernels.set_conv_mode("implicit")
    try:
        got = kernels.conv2d(data, weight, bias, stride=stride,
                             padding=padding, groups=groups,
                             workspace=workspace)
        kernels.set_conv_mode("im2col")
        ref = kernels.conv2d(data, weight, bias, stride=stride,
                             padding=padding, groups=groups)
    finally:
        kernels.set_conv_mode(prev)
    return got, ref


def _assert_bitwise(got, ref):
    assert got.dtype == ref.dtype
    assert got.shape == ref.shape
    np.testing.assert_array_equal(got, ref)


class TestConvModeSwitch:
    def test_default_is_implicit(self):
        assert kernels.conv_mode() in kernels._CONV_MODES

    def test_set_returns_previous_and_rejects_junk(self):
        prev = kernels.set_conv_mode("im2col")
        try:
            assert kernels.conv_mode() == "im2col"
            with pytest.raises(ValueError):
                kernels.set_conv_mode("winograd")
        finally:
            kernels.set_conv_mode(prev)


class TestImplicitConvBitwise:
    """conv2d(implicit) == conv2d(im2col) bit for bit."""

    @pytest.mark.parametrize("kernel", [(1, 1), (2, 2), (3, 3), (5, 3),
                                        (1, 3)])
    @pytest.mark.parametrize("stride", [1, 2, 3, (2, 1)])
    @pytest.mark.parametrize("padding", [0, 1, (2, 1), (0, 2)])
    def test_geometry_grid_fp32(self, kernel, stride, padding):
        rng = np.random.default_rng(hash((kernel, stride, padding)) % 2**31)
        data = rng.normal(size=(2, 3, 11, 9)).astype(np.float32)
        weight = rng.normal(size=(4, 3) + kernel).astype(np.float32)
        bias = rng.normal(size=4).astype(np.float32)
        got, ref = _conv_both_modes(data, weight, bias, stride=stride,
                                    padding=padding)
        _assert_bitwise(got, ref)

    def test_stride_larger_than_kernel(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(1, 2, 13, 13)).astype(np.float32)
        weight = rng.normal(size=(3, 2, 2, 2)).astype(np.float32)
        got, ref = _conv_both_modes(data, weight, stride=3, padding=1)
        _assert_bitwise(got, ref)

    def test_padding_wider_than_kernel(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(2, 2, 1, 1)).astype(np.float32)
        got, ref = _conv_both_modes(data, weight, stride=2, padding=(2, 3))
        _assert_bitwise(got, ref)

    @pytest.mark.parametrize("groups", [2, 3])
    def test_grouped(self, groups):
        rng = np.random.default_rng(groups)
        data = rng.normal(size=(2, 6, 8, 8)).astype(np.float32)
        weight = rng.normal(size=(6, 6 // groups, 3, 3)).astype(np.float32)
        got, ref = _conv_both_modes(data, weight, stride=1, padding=1,
                                    groups=groups)
        _assert_bitwise(got, ref)

    def test_fp16_io_dtype_preserved(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(2, 3, 9, 9)).astype(np.float16)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float16)
        got, ref = _conv_both_modes(data, weight, stride=2, padding=1)
        assert got.dtype == np.float16
        _assert_bitwise(got, ref)

    def test_pointwise_view_path(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(2, 5, 7, 7)).astype(np.float32)
        weight = rng.normal(size=(4, 5, 1, 1)).astype(np.float32)
        got, ref = _conv_both_modes(data, weight)
        _assert_bitwise(got, ref)

    def test_workspace_reuse_keeps_border_zeros(self):
        """Second call through a shared workspace must not see stale
        border columns from the first call's data."""
        rng = np.random.default_rng(4)
        ws = kernels.Workspace()
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        prev = kernels.set_conv_mode("implicit")
        try:
            for seed in (5, 6):
                data = np.random.default_rng(seed) \
                    .normal(size=(2, 3, 10, 10)).astype(np.float32)
                got = kernels.conv2d(data, weight, stride=1, padding=1,
                                     workspace=ws)
                kernels.set_conv_mode("im2col")
                ref = kernels.conv2d(data, weight, stride=1, padding=1)
                kernels.set_conv_mode("implicit")
                _assert_bitwise(got, ref)
        finally:
            kernels.set_conv_mode(prev)

    def test_workspace_and_out_buffer(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(2, 3, 9, 9)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        ws = kernels.Workspace()
        out = np.empty((2, 4, 5, 5), dtype=np.float32)
        prev = kernels.set_conv_mode("implicit")
        try:
            got = kernels.conv2d(data, weight, stride=2, padding=1,
                                 out=out, workspace=ws)
        finally:
            kernels.set_conv_mode(prev)
        assert got is out
        _, ref = _conv_both_modes(data, weight, stride=2, padding=1)
        _assert_bitwise(out, ref)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 3), in_c=st.integers(1, 4),
        out_c=st.integers(1, 5),
        h=st.integers(4, 12), w=st.integers(4, 12),
        kh=st.integers(1, 4), kw=st.integers(1, 4),
        sh=st.integers(1, 3), sw=st.integers(1, 3),
        ph=st.integers(0, 3), pw=st.integers(0, 3),
        fp16=st.booleans(), seed=st.integers(0, 2**16),
    )
    def test_property_sweep(self, n, in_c, out_c, h, w, kh, kw, sh, sw,
                            ph, pw, fp16, seed):
        if h + 2 * ph < kh or w + 2 * pw < kw:
            return
        rng = np.random.default_rng(seed)
        dt = np.float16 if fp16 else np.float32
        data = rng.normal(size=(n, in_c, h, w)).astype(dt)
        weight = rng.normal(size=(out_c, in_c, kh, kw)).astype(dt)
        got, ref = _conv_both_modes(data, weight, stride=(sh, sw),
                                    padding=(ph, pw),
                                    workspace=kernels.Workspace())
        _assert_bitwise(got, ref)


def _qconv_reference_and_exact(seed, n=2, in_c=3, out_c=4, hw=9,
                               kernel=(3, 3), stride=1, padding=1,
                               data_dtype=DType.INT8, zero=0,
                               activation=None, alpha=None,
                               per_channel=True, nhwc=False):
    """Build matched reference / exact-f64 qconv results."""
    rng = np.random.default_rng(seed)
    real = rng.normal(size=(n, in_c, hw, hw)).astype(np.float32)
    w_real = rng.normal(size=(out_c, in_c) + kernel).astype(np.float32)
    bias = rng.normal(size=out_c).astype(np.float32) * 10
    dp = choose_qparams(real, dtype=data_dtype,
                        symmetric=data_dtype is DType.INT8)
    if zero:
        dp = QuantParams(dp.scale, np.array(zero), dp.dtype, None)
    wp = choose_qparams(w_real, channel_axis=0 if per_channel else None)
    op = choose_qparams(rng.normal(size=16).astype(np.float32) * 4,
                        symmetric=False, dtype=DType.UINT8)
    q_data = dp.quantize(real)
    q_weight = wp.quantize(w_real)
    ref = quantized_conv2d(q_data, dp, q_weight, wp, bias, op,
                           stride=stride, padding=padding,
                           activation=activation, activation_alpha=alpha)
    izero = int(dp.zero_point.ravel()[0])
    row_term = zero_point_row_term(q_weight, dp, (1, 2, 3))
    padded = padding not in (0, (0, 0))
    if row_term is not None and padded:
        row_term = None  # padding injects zeros, not zero_point
    if nhwc:
        k = in_c * kernel[0] * kernel[1]
        w_f64 = np.ascontiguousarray(
            q_weight.transpose(2, 3, 1, 0).reshape(k, out_c)
            .astype(np.float64))
        src = np.ascontiguousarray(q_data.transpose(0, 2, 3, 1))
        acc = kernels.qconv2d_acc_nhwc(
            src, w_f64, kernel, stride, padding,
            input_zero=0 if row_term is not None else izero)
        if row_term is not None:
            acc -= row_term.reshape(1, 1, 1, -1)
        requant = build_requant_plan(dp, wp, bias, op, 4,
                                     activation=activation,
                                     activation_alpha=alpha,
                                     channel_axis=-1)
        got = np.ascontiguousarray(requant(acc).transpose(0, 3, 1, 2))
    else:
        k = in_c * kernel[0] * kernel[1]
        w2 = np.ascontiguousarray(
            q_weight.reshape(out_c, k).astype(np.float64))
        acc = kernels.qconv2d_acc(
            q_data, w2, kernel, stride, padding,
            input_zero=0 if row_term is not None else izero)
        if row_term is not None:
            acc -= row_term.reshape(1, -1, 1, 1)
        requant = build_requant_plan(dp, wp, bias, op, 4,
                                     activation=activation,
                                     activation_alpha=alpha)
        got = requant(acc)
    return got, ref


class TestExactQuantizedConv:
    """float64 blocked qconv GEMM == int32 reference, bitwise."""

    @pytest.mark.parametrize("zero", [0, 7, -3])
    @pytest.mark.parametrize("nhwc", [False, True])
    def test_zero_points(self, zero, nhwc):
        got, ref = _qconv_reference_and_exact(10 + zero, zero=zero,
                                              nhwc=nhwc)
        _assert_bitwise(got, ref)

    @pytest.mark.parametrize("nhwc", [False, True])
    def test_uint8_activation_large_zero(self, nhwc):
        got, ref = _qconv_reference_and_exact(
            11, data_dtype=DType.UINT8, zero=100, nhwc=nhwc)
        _assert_bitwise(got, ref)

    @pytest.mark.parametrize("nhwc", [False, True])
    def test_fused_activation(self, nhwc):
        got, ref = _qconv_reference_and_exact(
            12, activation="leaky_relu", alpha=0.2, nhwc=nhwc)
        _assert_bitwise(got, ref)

    @pytest.mark.parametrize("nhwc", [False, True])
    def test_per_tensor_weights(self, nhwc):
        got, ref = _qconv_reference_and_exact(13, per_channel=False,
                                              nhwc=nhwc)
        _assert_bitwise(got, ref)

    @pytest.mark.parametrize("nhwc", [False, True])
    def test_strided_no_padding(self, nhwc):
        got, ref = _qconv_reference_and_exact(14, stride=2, padding=0,
                                              zero=5, nhwc=nhwc)
        _assert_bitwise(got, ref)

    @pytest.mark.parametrize("nhwc", [False, True])
    def test_forced_multi_panel_blocking(self, monkeypatch, nhwc):
        """Shrink the panel budget so the output genuinely splits into
        many cache panels; blocking must not change a single bit."""
        monkeypatch.setattr(kernels, "QGEMM_PANEL_BYTES", 1 << 10)
        got, ref = _qconv_reference_and_exact(15, hw=17, zero=7,
                                              nhwc=nhwc)
        _assert_bitwise(got, ref)

    def test_workspace_variant(self):
        ws = kernels.Workspace()
        rng = np.random.default_rng(16)
        real = rng.normal(size=(2, 3, 9, 9)).astype(np.float32)
        w_real = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        dp = choose_qparams(real)
        wp = choose_qparams(w_real, channel_axis=0)
        op = choose_qparams(real.ravel()[:32] * 3, symmetric=False,
                            dtype=DType.UINT8)
        q_data, q_weight = dp.quantize(real), wp.quantize(w_real)
        ref = quantized_conv2d(q_data, dp, q_weight, wp, None, op,
                               stride=1, padding=1)
        w2 = np.ascontiguousarray(
            q_weight.reshape(4, -1).astype(np.float64))
        for _ in range(2):  # second call reuses the workspace buffers
            acc = kernels.qconv2d_acc(q_data, w2, (3, 3), (1, 1), (1, 1),
                                      workspace=ws)
            got = build_requant_plan(dp, wp, None, op, 4)(acc)
            _assert_bitwise(got, ref)


class TestExactQuantizedDense:
    @pytest.mark.parametrize("zero", [0, 9])
    def test_matches_reference(self, zero):
        rng = np.random.default_rng(20 + zero)
        real = rng.normal(size=(5, 37)).astype(np.float32)
        w_real = rng.normal(size=(11, 37)).astype(np.float32)
        bias = rng.normal(size=11).astype(np.float32)
        dp = choose_qparams(real)
        if zero:
            dp = QuantParams(dp.scale, np.array(zero), dp.dtype, None)
        wp = choose_qparams(w_real, channel_axis=0)
        op = choose_qparams(real.ravel()[:64] * 2, symmetric=False,
                            dtype=DType.UINT8)
        q_data, q_weight = dp.quantize(real), wp.quantize(w_real)
        ref = quantized_dense(q_data, dp, q_weight, wp, bias, op)
        wt = np.ascontiguousarray(q_weight.astype(np.float64).T)
        row_term = zero_point_row_term(q_weight, dp, (1,))
        acc = kernels.qdense_acc(
            q_data, wt,
            input_zero=0 if row_term is not None
            else int(dp.zero_point.ravel()[0]))
        if row_term is not None:
            acc -= row_term.reshape(1, -1)
        got = build_requant_plan(dp, wp, bias, op, 2)(acc)
        _assert_bitwise(got, ref)

    def test_forced_column_panels(self, monkeypatch):
        monkeypatch.setattr(kernels, "QGEMM_PANEL_BYTES", 1 << 8)
        self.test_matches_reference(9)


class TestWorkspaceIsolation:
    """Workspace.get must never hand back a mismatched buffer."""

    def test_same_tag_different_shape_gets_distinct_buffers(self):
        ws = kernels.Workspace()
        a = ws.get((4, 4), np.float32, "shared")
        a.fill(3.0)
        b = ws.get((8, 2), np.float32, "shared")
        assert b.shape == (8, 2)
        assert a.shape == (4, 4)
        b.fill(5.0)
        assert np.all(a == 3.0)
        # both keys stay resident; re-requests hit their own buffers
        assert ws.get((4, 4), np.float32, "shared") is a
        assert ws.get((8, 2), np.float32, "shared") is b

    def test_same_tag_same_shape_different_dtype(self):
        ws = kernels.Workspace()
        f32 = ws.get((6,), np.float32, "t")
        f64 = ws.get((6,), np.float64, "t")
        assert f32.dtype == np.float32
        assert f64.dtype == np.float64
        assert f32 is not f64

    def test_init_runs_once_per_buffer(self):
        ws = kernels.Workspace()
        calls = []
        for _ in range(3):
            buf = ws.get((5,), np.float32, "z",
                         init=lambda b: (calls.append(1), b.fill(0)))
        assert len(calls) == 1
        buf[0] = 7  # dirty it; a re-get must NOT re-zero
        again = ws.get((5,), np.float32, "z",
                       init=lambda b: (calls.append(1), b.fill(0)))
        assert again[0] == 7
        assert len(calls) == 1

    def test_peak_bytes_survives_clear(self):
        ws = kernels.Workspace()
        ws.get((1024,), np.float64, "big")
        peak = ws.peak_bytes
        assert peak >= 8192
        ws.clear()
        assert ws.nbytes() == 0
        assert ws.peak_bytes == peak

    def test_hits_and_allocations_counted(self):
        ws = kernels.Workspace()
        ws.get((3,), np.float32, "a")
        ws.get((3,), np.float32, "a")
        assert ws.allocations == 1
        assert ws.hits == 1
