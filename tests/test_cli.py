"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models", "--small"]) == 0
        out = capsys.readouterr().out
        assert "tiny_convnet" in out and "arc_net" in out
        assert "resnet50" not in out  # --small skips the big builds


class TestAccelerators:
    def test_lists_catalog(self, capsys):
        assert main(["accelerators"]) == 0
        out = capsys.readouterr().out
        assert "GTX1660" in out and "Myriad" in out

    def test_family_filter(self, capsys):
        assert main(["accelerators", "--family", "cpu"]) == 0
        out = capsys.readouterr().out
        assert "Epyc3451" in out
        assert "GTX1660" not in out


class TestPredict:
    def test_batch_sweep(self, capsys):
        assert main(["predict", "--model", "tiny_convnet",
                     "--platform", "XavierNX"]) == 0
        out = capsys.readouterr().out
        assert "XavierNX" in out
        assert len([l for l in out.splitlines() if l.strip() and
                    l.strip()[0].isdigit()]) == 3  # batches 1/4/8

    def test_power_mode_suffix(self, capsys):
        assert main(["predict", "--model", "mlp",
                     "--platform", "XavierAGX:10W",
                     "--batches", "1"]) == 0
        assert "(10W)" in capsys.readouterr().out

    def test_explicit_dtype(self, capsys):
        assert main(["predict", "--model", "mlp", "--platform", "GTX1660",
                     "--dtype", "fp16", "--batches", "1"]) == 0
        assert "fp16" in capsys.readouterr().out

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            main(["predict", "--model", "mlp", "--platform", "TPUv9"])

    def test_single_batch_overrides_sweep(self, capsys):
        assert main(["predict", "--model", "mlp",
                     "--platform", "XavierNX", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        rows = [l for l in out.splitlines() if l.strip() and
                l.strip()[0].isdigit()]
        assert len(rows) == 1
        assert rows[0].strip().startswith("2")

    def test_repeat_measures_host_fps(self, capsys):
        assert main(["predict", "--model", "mlp", "--platform", "XavierNX",
                     "--batch", "1", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "host fps" in out


class TestPlan:
    def test_compiles_and_reports_arena(self, capsys):
        assert main(["plan", "--model", "tiny_convnet"]) == 0
        out = capsys.readouterr().out
        assert "execution plan" in out
        assert "peak live" in out
        assert "memory plan" in out

    def test_steps_listing(self, capsys):
        assert main(["plan", "--model", "mlp", "--steps"]) == 0
        out = capsys.readouterr().out
        assert "frees" in out
        assert "fc0" in out

    def test_repeat_reports_steady_state(self, capsys):
        assert main(["plan", "--model", "mlp", "--batch", "2",
                     "--repeat", "3"]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out
        assert "0 steady-state allocations" in out


class TestServeBench:
    def test_sweep_reports_table(self, capsys):
        assert main(["serve-bench", "--model", "mlp",
                     "--configs", "1x1", "1x2",
                     "--requests", "6", "--warmup", "2"]) == 0
        out = capsys.readouterr().out
        assert "serve-bench: mlp" in out
        assert "req/s" in out
        # one row per configuration after the header rule
        rows = [l for l in out.splitlines() if l.strip() and
                l.strip()[0].isdigit()]
        assert len(rows) == 2

    def test_bad_config_string_rejected(self, capsys):
        assert main(["serve-bench", "--model", "mlp",
                     "--configs", "nonsense"]) == 2
        assert "WORKERSxBATCH" in capsys.readouterr().err

    def test_metrics_json_and_trace_out(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "serve_trace.json"
        assert main(["serve-bench", "--model", "mlp",
                     "--configs", "1x2",
                     "--requests", "8", "--warmup", "2",
                     "--metrics-json", str(metrics_path),
                     "--trace-out", str(trace_path),
                     "--slow-request-ms", "0"]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot written" in out
        assert "chrome trace" in out

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["version"] == 1
        names = {family["name"] for family in snapshot["families"]}
        assert "repro_serving_requests_total" in names

        from repro.telemetry import validate_chrome_trace
        events = validate_chrome_trace(trace_path.read_text())
        assert events  # at least one complete event per sampled request

    def test_replicas_trace_out_merges_fleet(self, tmp_path, capsys):
        from repro.telemetry import (
            chrome_trace_processes,
            validate_chrome_trace,
        )

        trace_path = tmp_path / "fleet.json"
        assert main(["serve-bench", "--model", "mlp",
                     "--replicas", "2", "--requests", "16",
                     "--warmup", "4", "--max-batch", "4",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--trace-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "fleet chrome trace" in out
        validate_chrome_trace(trace_path.read_text())
        tracks = chrome_trace_processes(trace_path.read_text())
        assert "parent" in tracks.values()
        assert any(name.startswith("replica-")
                   for name in tracks.values())


class TestMetricsCommand:
    def test_prometheus_output_covers_subsystems(self, capsys):
        assert main(["metrics", "--model", "mlp",
                     "--requests", "8", "--max-batch", "4"]) == 0
        out = capsys.readouterr().out
        from repro.telemetry import parse_prometheus
        families = parse_prometheus(out)
        for name in ("repro_arena_allocations_total",
                     "repro_plan_cache_misses_total",
                     "repro_pool_workers",
                     "repro_serving_requests_total"):
            assert name in families, name

    def test_json_format_to_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(["metrics", "--model", "mlp", "--requests", "4",
                     "--format", "json", "--output", str(path)]) == 0
        assert "metrics written" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["families"]


class TestTraceCommand:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--model", "mlp", "--runs", "2",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "events on" in out and "perfetto" in out
        from repro.telemetry import validate_chrome_trace
        events = validate_chrome_trace(path.read_text())
        # two runs of the same plan -> same step count per run
        assert len(events) % 2 == 0

    def test_multithreaded_trace_uses_worker_tracks(self, tmp_path):
        from repro.telemetry import validate_chrome_trace

        # Whether workers win any steps from the caller's claim loop is
        # a scheduling race on a fast host, so allow a few attempts.
        for attempt in range(3):
            path = tmp_path / f"trace4_{attempt}.json"
            assert main(["trace", "--model", "wide_branch_net",
                         "--batch", "8", "--runs", "3",
                         "--num-threads", "4",
                         "--out", str(path)]) == 0
            events = validate_chrome_trace(path.read_text())
            tracks = {event["tid"] for event in events}
            if len(tracks) >= 2:  # steps spread across worker tracks
                return
        raise AssertionError(
            f"expected >= 2 worker tracks, got {sorted(tracks)}")

    def test_replica_fleet_trace(self, tmp_path, capsys):
        from repro.telemetry import (
            chrome_trace_processes,
            validate_chrome_trace,
        )

        path = tmp_path / "fleet.json"
        assert main(["trace", "--model", "mlp", "--replicas", "2",
                     "--runs", "1", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "process tracks" in out
        validate_chrome_trace(path.read_text())
        tracks = chrome_trace_processes(path.read_text())
        assert set(tracks.values()) >= {"parent", "replica-0",
                                        "replica-1"}


class TestFlightrecCommand:
    def test_dump_and_sibling_parse(self, tmp_path, capsys):
        from repro.telemetry import (
            load_flightrec_dump,
            validate_chrome_trace,
        )

        path = tmp_path / "frec.json"
        assert main(["flightrec", "dump", "--model", "mlp",
                     "--replicas", "1", "--requests", "8",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder dump v1" in out
        payload = load_flightrec_dump(path)
        kinds = {event["kind"] for event in payload["events"]}
        assert "admit" in kinds and "batch" in kinds
        sibling = path.with_name(path.stem + ".trace.json")
        validate_chrome_trace(sibling.read_text())


class TestOptimize:
    def test_arc_pipeline(self, capsys):
        assert main(["optimize", "--dataset", "arc",
                     "--passes", "fuse", "--confusion"]) == 0
        out = capsys.readouterr().out
        assert "fp32" in out and "fuse" in out
        assert "confusion matrix" in out

    def test_with_target(self, capsys):
        assert main(["optimize", "--dataset", "keywords",
                     "--passes", "fuse", "--platform", "ZynqZU3"]) == 0
        assert "accuracy" in capsys.readouterr().out


class TestSimulate:
    def test_runs_program(self, tmp_path, capsys):
        program = tmp_path / "ok.s"
        program.write_text("""
            li a0, 0x10000000
            li a1, 79
            sb a1, 0(a0)
            li t6, 0x100F0000
            sw zero, 0(t6)
        """)
        assert main(["simulate", str(program)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("O")
        assert "halted" in out

    def test_exit_code_propagates(self, tmp_path):
        program = tmp_path / "fail.s"
        program.write_text("""
            li t6, 0x100F0000
            li t5, 7
            sw t5, 0(t6)
        """)
        assert main(["simulate", str(program)]) == 7

    def test_nonterminating_returns_2(self, tmp_path, capsys):
        program = tmp_path / "spin.s"
        program.write_text("spin: j spin")
        assert main(["simulate", str(program), "--max-steps", "100"]) == 2

    def test_cfu_flag(self, tmp_path):
        program = tmp_path / "cfu.s"
        program.write_text("""
            li a0, 0x01010101
            cfu a1, a0, a0, 3, 0
            li t6, 0x100F0000
            sw a1, 0(t6)
        """)
        assert main(["simulate", str(program), "--cfu"]) == 4
