"""Tests for repro.telemetry: registry, tracing, exporters, collectors."""

import json
import threading

import numpy as np
import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    RequestTrace,
    Sample,
    Tracer,
    log_buckets,
    parse_prometheus,
    registry_to_json,
    render_prometheus,
    timeline_to_chrome,
    traces_to_chrome,
    validate_chrome_trace,
)
from repro.telemetry.collectors import install_runtime_collectors


class TestLogBuckets:
    def test_generates_geometric_bounds(self):
        assert log_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, 0)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_events_total", "events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("test_depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")

    def test_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("by_kind_total",
                                   labelnames=("kind",))
        counter.labels(kind="a").inc()
        counter.labels("a").inc()
        counter.labels(kind="b").inc(3)
        family = counter.collect()
        values = {sample.labels: sample.value
                  for sample in family.samples}
        assert values[(("kind", "a"),)] == 2
        assert values[(("kind", "b"),)] == 3

    def test_unlabeled_use_of_labeled_family_rejected(self):
        counter = MetricsRegistry().counter("l_total",
                                            labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.labels("a", "b")

    def test_concurrent_increments_are_exact(self):
        counter = MetricsRegistry().counter("race_total")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_bucket_boundaries_are_le_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        # Values exactly on a bound land in that bound's bucket.
        for value in (0.5, 1.0, 2.0, 4.0, 5.0):
            hist.observe(value)
        assert hist.bucket_counts() == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(12.5)

    def test_cumulative_samples_and_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        samples = {(s.name, s.labels): s.value
                   for s in hist.collect().samples}
        assert samples[("h_bucket", (("le", "1"),))] == 1
        assert samples[("h_bucket", (("le", "2"),))] == 2
        assert samples[("h_bucket", (("le", "+Inf"),))] == 3
        assert samples[("h_count", ())] == 3
        assert samples[("h_sum", ())] == pytest.approx(5.0)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_concurrent_observations_are_exact(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.5, 1.0, 2.0))

        def observe():
            for i in range(500):
                hist.observe((i % 4) * 0.6)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 2000


class TestQuantileEstimator:
    def test_interpolates_within_buckets(self):
        from repro.telemetry import quantile_from_buckets

        # 10 observations spread uniformly in the (1, 2] bucket: the
        # median interpolates to the bucket midpoint-ish rank.
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 10, 0, 0]
        assert quantile_from_buckets(bounds, counts, 0.5) == \
            pytest.approx(1.5)
        assert quantile_from_buckets(bounds, counts, 0.0) == \
            pytest.approx(1.0)
        assert quantile_from_buckets(bounds, counts, 1.0) == \
            pytest.approx(2.0)

    def test_first_bucket_interpolates_from_zero(self):
        from repro.telemetry import quantile_from_buckets

        assert quantile_from_buckets((2.0,), [4, 0], 0.5) == \
            pytest.approx(1.0)

    def test_inf_bucket_clamps_to_last_bound(self):
        from repro.telemetry import quantile_from_buckets

        assert quantile_from_buckets((1.0, 2.0), [0, 0, 5], 0.99) == 2.0

    def test_empty_and_bad_inputs(self):
        from repro.telemetry import quantile_from_buckets

        assert quantile_from_buckets((1.0, 2.0), [0, 0, 0], 0.5) == 0.0
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0,), [1, 1], 1.5)
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0, 2.0), [1, 1], 0.5)

    def test_histogram_quantile_tracks_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=tuple(
            log_buckets(0.001, 2.0, 16)))
        rng = np.random.default_rng(0)
        values = rng.uniform(0.002, 0.1, size=500)
        for value in values:
            hist.observe(float(value))
        # Log buckets are coarse: the estimate must land within one
        # bucket ratio of the true percentile.
        true_p95 = float(np.percentile(values, 95))
        estimate = hist.quantile(0.95)
        assert true_p95 / 2.0 <= estimate <= true_p95 * 2.0

    def test_render_summary_has_quantile_columns(self):
        from repro.telemetry import render_summary

        registry = MetricsRegistry()
        registry.counter("c_total", "a counter").inc(3)
        hist = registry.histogram("h_seconds", "a histogram",
                                  buckets=(1.0, 2.0))
        hist.observe(1.5)
        text = render_summary(registry)
        assert "c_total" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "h_seconds" in text


class TestCollectorsAndMerge:
    def test_collector_families_merge_and_sum(self):
        registry = MetricsRegistry()

        def collector():
            yield MetricFamily("x_total", "counter", "",
                               [Sample("x_total", (), 2.0)])

        registry.register_collector(collector)
        registry.register_collector(collector)
        values = {family.name: family.samples
                  for family in registry.collect()}
        # Same (name, labels) from two sources sums into one sample.
        assert values["x_total"][0].value == 4.0
        assert len(values["x_total"]) == 1

    def test_unregister(self):
        registry = MetricsRegistry()

        def collector():
            yield MetricFamily("y_total", "counter", "",
                               [Sample("y_total", (), 1.0)])

        unregister = registry.register_collector(collector)
        unregister()
        assert all(family.name != "y_total"
                   for family in registry.collect())

    def test_runtime_collectors_see_live_subsystems(self):
        from repro.runtime.arena import ScratchArena

        registry = MetricsRegistry()
        install_runtime_collectors(registry)
        arena = ScratchArena()
        before = registry.sample_value("repro_arena_allocations_total")
        buf = arena.alloc((4, 4), np.float32)
        arena.release(buf)
        after = registry.sample_value("repro_arena_allocations_total")
        assert after == before + 1
        assert registry.sample_value("repro_arena_releases_total") >= 1

    def test_safety_pipeline_series(self):
        from repro.safety.input_quality import RangeMonitor
        from repro.safety.monitors import MonitorPipeline

        registry = MetricsRegistry()
        install_runtime_collectors(registry)
        pipeline = MonitorPipeline([RangeMonitor(low=0.0, high=1.0)])
        pipeline.process(np.full(8, 0.5, dtype=np.float32))
        assert registry.sample_value("repro_safety_observed_total") >= 1
        assert registry.sample_value("repro_safety_samples_total",
                                     {"action": "passed"}) >= 1


class TestPrometheusExposition:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("demo_events_total", "demo events").inc(3)
        registry.gauge("demo_depth", 'quoted "help"').set(2)
        hist = registry.histogram("demo_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        labeled = registry.counter("demo_by_kind_total",
                                   labelnames=("kind",))
        labeled.labels(kind='we"ird\\la\nbel').inc()
        return registry

    def test_render_and_parse_roundtrip(self):
        registry = self.build_registry()
        text = render_prometheus(registry)
        families = parse_prometheus(text)
        assert families["demo_events_total"]["type"] == "counter"
        assert families["demo_events_total"]["samples"][
            ("demo_events_total", ())] == 3
        histogram = families["demo_seconds"]
        assert histogram["type"] == "histogram"
        assert histogram["samples"][
            ("demo_seconds_bucket", (("le", "+Inf"),))] == 1
        assert histogram["samples"][("demo_seconds_count", ())] == 1
        # The escaped label value survives the roundtrip.
        labeled = families["demo_by_kind_total"]["samples"]
        assert any(dict(labels).get("kind") == 'we"ird\\la\nbel'
                   for (_, labels) in labeled)

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("metric_without_value\n")
        with pytest.raises(ValueError):
            parse_prometheus('bad{open="x\n')
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE foo sometype\n")

    def test_json_snapshot(self):
        registry = self.build_registry()
        payload = registry_to_json(registry)
        assert payload["version"] == 1
        json.dumps(payload)   # serializable as-is
        names = {family["name"] for family in payload["families"]}
        assert {"demo_events_total", "demo_depth",
                "demo_seconds"} <= names


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert not tracer.sample()

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.sample() for _ in range(10))

    def test_fractional_rate_is_deterministic(self):
        tracer = Tracer(sample_rate=0.25)
        decisions = [tracer.sample() for _ in range(8)]
        assert sum(decisions) == 2
        assert decisions == [False, False, False, True] * 2

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_ring_buffer_bounded(self):
        tracer = Tracer(sample_rate=1.0, capacity=2)
        for index in range(5):
            trace = RequestTrace(f"r{index}")
            trace.mark("enqueued", 0.0)
            trace.mark("completed", 1.0)
            tracer.finish(trace)
        names = [trace.name for trace in tracer.traces()]
        assert names == ["r3", "r4"]


class TestRequestTrace:
    def build_trace(self):
        trace = RequestTrace("req")
        trace.batch_size = 4
        for key, at in (("enqueued", 1.0), ("dequeued", 1.01),
                        ("task_start", 1.02), ("assembled", 1.03),
                        ("execute_t0", 1.03), ("executed", 1.08),
                        ("completed", 1.09)):
            trace.mark(key, at)
        trace.attach_steps([
            {"name": "conv0", "op": "conv2d", "start": 0.0,
             "end": 0.02, "thread": 111},
            {"name": "dense1", "op": "dense", "start": 0.02,
             "end": 0.05, "thread": 222},
        ])
        return trace

    def test_span_tree_decomposition(self):
        root = self.build_trace().build_spans()
        assert root.name == "req"
        assert root.duration_s == pytest.approx(0.09)
        phases = {span.name: span for span in root.children}
        assert phases["queue_wait"].duration_s == pytest.approx(0.01)
        assert phases["dispatch_wait"].duration_s == pytest.approx(0.01)
        assert phases["batch_assembly"].duration_s == pytest.approx(0.01)
        assert phases["execute"].duration_s == pytest.approx(0.05)
        assert phases["finalize"].duration_s == pytest.approx(0.01)
        steps = phases["execute"].children
        assert [span.name for span in steps] == ["conv0", "dense1"]
        # Step spans sit on the global clock inside the execute span.
        assert steps[0].start_s == pytest.approx(1.03)
        assert steps[1].end_s == pytest.approx(1.08)

    def test_phase_durations_report(self):
        durations = self.build_trace().phase_durations_ms()
        assert durations["total"] == pytest.approx(90.0)
        assert durations["execute"] == pytest.approx(50.0)

    def test_incomplete_trace_yields_none(self):
        trace = RequestTrace("nope")
        trace.mark("enqueued")
        assert trace.build_spans() is None


class TestChromeExport:
    def test_timeline_events_validate(self):
        timeline = [
            {"name": "a", "op": "conv2d", "start": 0.0, "end": 0.01,
             "thread": 10},
            {"name": "b", "op": "dense", "start": 0.01, "end": 0.02,
             "thread": 20, "rows": (0, 8)},
        ]
        events = timeline_to_chrome([timeline, timeline])
        complete = validate_chrome_trace({"traceEvents": events})
        assert len(complete) == 4
        assert {event["tid"] for event in complete} == {0, 1}
        runs = {event["args"]["run"] for event in complete}
        assert runs == {0, 1}
        # Second run is offset past the first; ts stays consistent.
        assert all(event["dur"] >= 0 and event["ts"] >= 0
                   for event in complete)

    def test_trace_spans_render_on_worker_tracks(self):
        tracer = Tracer(sample_rate=1.0)
        trace = TestRequestTrace().build_trace()
        tracer.finish(trace)
        events = traces_to_chrome(tracer.traces())
        complete = validate_chrome_trace({"traceEvents": events})
        names = {event["name"] for event in complete}
        assert {"req", "queue_wait", "execute", "conv0",
                "dense1"} <= names
        step_tids = {event["tid"] for event in complete
                     if event["name"] in ("conv0", "dense1")}
        assert len(step_tids) == 2          # two worker tracks

    def test_validator_rejects_bad_payloads(self):
        with pytest.raises(ValueError):
            validate_chrome_trace("[]")
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1,
                 "ts": -5.0, "dur": 1.0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": -1.0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})


class TestServingIntegration:
    def test_traced_engine_produces_span_trees(self):
        from repro.ir import build_model
        from repro.serving import InferenceEngine
        from repro.serving.bench import sample_feeds

        graph = build_model("mlp")
        feeds = sample_feeds(graph)
        tracer = Tracer(sample_rate=1.0)
        with InferenceEngine(graph, max_batch=4,
                             tracer=tracer) as engine:
            engine.infer_many([feeds] * 8, timeout=30.0)
        traces = tracer.traces()
        assert len(traces) == 8
        root = traces[0].build_spans()
        phases = {span.name for span in root.children}
        assert {"queue_wait", "execute"} <= phases
        execute = next(span for span in root.children
                       if span.name == "execute")
        assert execute.children          # per-step kernel spans
        events = traces_to_chrome(traces)
        validate_chrome_trace({"traceEvents": events})

    def test_untraced_engine_requests_carry_no_trace(self):
        from repro.ir import build_model
        from repro.serving import InferenceEngine
        from repro.serving.bench import sample_feeds

        graph = build_model("mlp")
        feeds = sample_feeds(graph)
        with InferenceEngine(graph, max_batch=2) as engine:
            engine.infer_many([feeds] * 4, timeout=30.0)
            assert engine.tracer is None

    def test_slow_request_log_counts_and_logs(self, caplog):
        import logging

        from repro.ir import build_model
        from repro.serving import InferenceEngine
        from repro.serving.bench import sample_feeds

        graph = build_model("mlp")
        feeds = sample_feeds(graph)
        with caplog.at_level(logging.WARNING, logger="repro.serving"):
            with InferenceEngine(graph, max_batch=2,
                                 slow_request_ms=0.0) as engine:
                engine.infer_many([feeds] * 4, timeout=30.0)
        # close() drains the worker slots, so slow accounting is done.
        assert engine.slow_requests == 4
        assert any("slow request" in record.message
                   for record in caplog.records)

    def test_sequential_executor_timeline(self):
        from repro.ir import build_model
        from repro.runtime import Executor
        from repro.serving.bench import sample_feeds

        graph = build_model("mlp")
        executor = Executor(graph, num_threads=1)
        executor.record_timeline = True
        executor.run(sample_feeds(graph))
        timeline = executor.last_timeline
        assert timeline and len(timeline) == len(executor.plan.steps)
        assert all(entry["end"] >= entry["start"] >= 0.0
                   for entry in timeline)
        # Disabled again: the next run leaves the old timeline alone.
        executor.record_timeline = False
        executor.run(sample_feeds(graph))
        assert executor.last_timeline is timeline
