"""Tests for the RISC-V PMP unit, standalone and wired into the core."""

import pytest

from repro.security.pmp import (
    PMP_L,
    PMP_R,
    PMP_W,
    PMP_X,
    AddressMatching,
    PmpUnit,
    napot_addr,
)
from repro.simulator import (
    CAUSE_LOAD_ACCESS_FAULT,
    CAUSE_STORE_ACCESS_FAULT,
    Machine,
    RAM_BASE,
    halt_with,
)
from repro.simulator.memory import AccessType, PrivilegeMode

U = PrivilegeMode.USER
M = PrivilegeMode.MACHINE
R = AccessType.READ
W = AccessType.WRITE
X = AccessType.FETCH


class TestNapotEncoding:
    def test_basic(self):
        # 4 KiB region at 0x80000000
        addr = napot_addr(0x80000000, 0x1000)
        assert addr == (0x80000000 >> 2) | ((0x1000 // 8) - 1)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="not aligned"):
            napot_addr(0x1004, 0x1000)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            napot_addr(0x1000, 0xC00)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            napot_addr(0x1000, 4)


class TestMatching:
    def test_napot_region_bounds(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, PMP_R)
        assert pmp.check(0x80000000, 4, R, U)
        assert pmp.check(0x80000FFC, 4, R, U)
        assert not pmp.check(0x80001000, 4, R, U)
        assert not pmp.check(0x7FFFFFFC, 4, R, U)

    def test_permission_bits_independent(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, PMP_R | PMP_X)
        assert pmp.check(0x80000000, 4, R, U)
        assert pmp.check(0x80000000, 4, X, U)
        assert not pmp.check(0x80000000, 4, W, U)

    def test_tor_matching(self):
        pmp = PmpUnit()
        # entry0: TOR with pmpaddr0 as top -> region [0, 0x1000)
        pmp.configure(0, PMP_R | (AddressMatching.TOR << 3), 0x1000 >> 2)
        assert pmp.check(0x0, 4, R, U)
        assert pmp.check(0xFFC, 4, R, U)
        assert not pmp.check(0x1000, 4, R, U)

    def test_na4_single_word(self):
        pmp = PmpUnit()
        pmp.configure(0, PMP_W | (AddressMatching.NA4 << 3), 0x2000 >> 2)
        assert pmp.check(0x2000, 4, W, U)
        assert not pmp.check(0x2004, 4, W, U)

    def test_lowest_entry_wins(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, 0)       # deny-all
        pmp.set_region(1, 0x80000000, 0x10000, PMP_R | PMP_W)
        assert not pmp.check(0x80000000, 4, R, U)      # entry 0 shadows
        assert pmp.check(0x80002000, 4, R, U)          # entry 1 applies

    def test_partial_coverage_denied(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 8, PMP_R)
        # 8-byte access straddling the end of the 8-byte region
        assert not pmp.check(0x80000004, 8, R, U)


class TestPrivilegeSemantics:
    def test_machine_default_allow(self):
        pmp = PmpUnit()
        assert pmp.check(0x12345678, 4, W, M)

    def test_user_default_deny(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, PMP_R)
        assert not pmp.check(0x1000, 4, R, U)  # outside any region

    def test_unlocked_entry_ignored_in_machine_mode(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, 0)  # no permissions
        assert pmp.check(0x80000000, 4, W, M)     # M ignores unlocked

    def test_locked_entry_binds_machine_mode(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, PMP_R, lock=True)
        assert pmp.check(0x80000000, 4, R, M)
        assert not pmp.check(0x80000000, 4, W, M)

    def test_locked_cfg_write_ignored(self):
        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, PMP_R, lock=True)
        pmp.configure(0, PMP_R | PMP_W | PMP_X, 0)
        assert pmp.entries[0].locked
        assert not pmp.entries[0].permits(AccessType.WRITE)

    def test_empty_unit_allows_everything(self):
        pmp = PmpUnit(0)
        assert pmp.check(0, 4, W, U)

    def test_guard_raises_and_counts(self):
        from repro.simulator.memory import AccessViolation

        pmp = PmpUnit()
        pmp.set_region(0, 0x80000000, 0x1000, PMP_R)
        with pytest.raises(AccessViolation):
            pmp.guard(0x9000, 4, R, U)
        assert pmp.denied_count == 1


class TestPmpInMachine:
    """End-to-end: U-mode software constrained by PMP on the simulated SoC.

    Reproduces the paper's claim that PMP 'can efficiently ensure the
    secure execution of software in M-mode and U-mode'.
    """

    def build(self, user_body):
        pmp = PmpUnit()
        machine = Machine(pmp=pmp)
        # U-mode may execute+read the first 4 KiB (code) and read/write a
        # 4 KiB data window; MMIO (simctrl) is M-mode only.
        pmp.set_region(0, RAM_BASE, 0x1000, PMP_R | PMP_X)
        pmp.set_region(1, RAM_BASE + 0x1000, 0x1000, PMP_R | PMP_W)
        machine.load_assembly(f"""
            la   t0, trap
            csrw mtvec, t0
            la   t0, user
            csrw mepc, t0
            mret
        user:
            {user_body}
        hang:
            j hang
        trap:
        """ + halt_with(9))
        return machine, pmp

    def test_user_write_to_window_allowed(self):
        machine, pmp = self.build(f"""
            li   a0, {RAM_BASE + 0x1000}
            li   a1, 77
            sw   a1, 0(a0)
            ecall              # clean syscall back to M-mode
        """)
        result = machine.run(max_steps=200)
        assert result.exit_code == 9
        assert machine.read_word(RAM_BASE + 0x1000) == 77
        assert pmp.denied_count == 0

    def test_user_write_outside_window_trapped(self):
        machine, pmp = self.build(f"""
            li   a0, {RAM_BASE + 0x8000}
            sw   a0, 0(a0)
        """)
        result = machine.run(max_steps=200)
        assert result.exit_code == 9
        assert machine.cpu.last_trap_cause == CAUSE_STORE_ACCESS_FAULT
        assert pmp.denied_count >= 1

    def test_user_cannot_reach_mmio(self):
        from repro.simulator import SIMCTRL_BASE

        machine, pmp = self.build(f"""
            li   a0, {SIMCTRL_BASE}
            sw   zero, 0(a0)     # try to halt the sim from U-mode
        """)
        machine.run(max_steps=200)
        assert machine.cpu.last_trap_cause == CAUSE_STORE_ACCESS_FAULT

    def test_user_read_of_code_region_allowed(self):
        machine, pmp = self.build(f"""
            li   a0, {RAM_BASE}
            lw   a1, 0(a0)
            ecall
        """)
        result = machine.run(max_steps=200)
        assert result.exit_code == 9
        assert machine.cpu.last_trap_cause is not None  # the final ecall

    def test_pmp_csr_programming_from_assembly(self):
        """PMP configured through the CSR interface, not the Python API."""
        pmp = PmpUnit()
        machine = Machine(pmp=pmp)
        napot = napot_addr(RAM_BASE, 0x1000)
        cfg = (PMP_R | PMP_X) | (AddressMatching.NAPOT << 3)
        machine.load_assembly(f"""
            li   t0, {napot}
            csrw pmpaddr0, t0
            li   t0, {cfg}
            csrw pmpcfg0, t0
            csrr a0, pmpcfg0
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(10) == cfg
        assert pmp.check(RAM_BASE, 4, R, U)
        assert not pmp.check(RAM_BASE, 4, W, U)
