"""Tests for the AIoT requirements-engineering framework."""

import pytest

from repro.requirements import (
    AbstractionLevel,
    ArchitecturalFramework,
    ConcernCluster,
    DependencyRuleViolation,
    FrameworkError,
    build_paeb_framework,
    build_smart_mirror_framework,
)


def two_view_framework():
    fw = ArchitecturalFramework("sys")
    fw.add_view("safety-concept", ConcernCluster.SAFETY,
                AbstractionLevel.CONCEPTUAL)
    fw.add_view("safety-design", ConcernCluster.SAFETY,
                AbstractionLevel.DESIGN)
    fw.add_view("hw-design", ConcernCluster.HARDWARE,
                AbstractionLevel.DESIGN)
    fw.add_view("energy-knowledge", ConcernCluster.ENERGY,
                AbstractionLevel.KNOWLEDGE)
    return fw


class TestGrid:
    def test_thirteen_clusters(self):
        # The paper enumerates exactly thirteen clusters of concerns.
        assert len(ConcernCluster) == 13

    def test_four_levels(self):
        assert len(AbstractionLevel) == 4

    def test_cell_occupancy_unique(self):
        fw = two_view_framework()
        with pytest.raises(FrameworkError, match="already holds"):
            fw.add_view("dup", ConcernCluster.SAFETY,
                        AbstractionLevel.DESIGN)

    def test_duplicate_view_id(self):
        fw = two_view_framework()
        with pytest.raises(FrameworkError, match="duplicate view id"):
            fw.add_view("safety-design", ConcernCluster.ENERGY,
                        AbstractionLevel.DESIGN)

    def test_cell_lookup(self):
        fw = two_view_framework()
        view = fw.cell(ConcernCluster.SAFETY, AbstractionLevel.DESIGN)
        assert view.view_id == "safety-design"
        assert fw.cell(ConcernCluster.PRIVACY,
                       AbstractionLevel.DESIGN) is None


class TestDependencyRule:
    def test_vertical_allowed(self):
        fw = two_view_framework()
        fw.add_dependency("safety-design", "safety-concept",
                          "design realizes concept")

    def test_horizontal_allowed(self):
        fw = two_view_framework()
        fw.add_dependency("safety-design", "hw-design",
                          "safety constrains hardware")

    def test_diagonal_rejected(self):
        fw = two_view_framework()
        with pytest.raises(DependencyRuleViolation, match="diagonal"):
            fw.add_dependency("safety-design", "energy-knowledge")

    def test_self_dependency_rejected(self):
        fw = two_view_framework()
        with pytest.raises(DependencyRuleViolation):
            fw.add_dependency("safety-design", "safety-design")

    def test_unknown_view_rejected(self):
        fw = two_view_framework()
        with pytest.raises(FrameworkError, match="unknown view"):
            fw.add_dependency("safety-design", "ghost")


class TestTraceability:
    def build_chain(self):
        fw = two_view_framework()
        fw.add_dependency("safety-design", "safety-concept")
        fw.add_dependency("hw-design", "safety-design")
        return fw

    def test_direct_queries(self):
        fw = self.build_chain()
        assert fw.dependencies_of("safety-design") == ["safety-concept"]
        assert fw.dependents_of("safety-design") == ["hw-design"]

    def test_impact_is_transitive(self):
        fw = self.build_chain()
        assert fw.impact_of_change("safety-concept") == \
            ["hw-design", "safety-design"]

    def test_impact_of_leaf_is_empty(self):
        fw = self.build_chain()
        assert fw.impact_of_change("hw-design") == []

    def test_requirement_tracing(self):
        fw = self.build_chain()
        fw.view("safety-concept").add_requirement("R1", "stop in time")
        owner, affected = fw.trace_requirement("R1")
        assert owner == "safety-concept"
        assert "hw-design" in affected

    def test_missing_requirement(self):
        fw = self.build_chain()
        with pytest.raises(FrameworkError, match="not found"):
            fw.trace_requirement("R99")

    def test_duplicate_requirement_id_in_view(self):
        fw = two_view_framework()
        view = fw.view("safety-design")
        view.add_requirement("R1", "a")
        with pytest.raises(FrameworkError, match="duplicate requirement"):
            view.add_requirement("R1", "b")

    def test_unverified_listing(self):
        fw = two_view_framework()
        fw.view("safety-design").add_requirement("R1", "a")
        req = fw.view("safety-design").requirements[0]
        assert fw.unverified_requirements()
        req.status = "verified"
        assert not fw.unverified_requirements()

    def test_middle_out_knowledge_recording(self):
        fw = two_view_framework()
        fw.view("hw-design").record_knowledge(
            "vendor errata limits PCIe lanes")
        assert fw.view("hw-design").knowledge_notes


class TestValidationAndReporting:
    def test_unconnected_requirements_flagged(self):
        fw = two_view_framework()
        fw.view("energy-knowledge").add_requirement("E1", "battery life")
        findings = fw.validate()
        assert any("energy-knowledge" in f for f in findings)

    def test_grid_summary_renders(self):
        text = two_view_framework().grid_summary()
        assert "safety" in text
        assert "4 views" in text


class TestTemplates:
    def test_paeb_framework_valid(self):
        fw = build_paeb_framework()
        assert len(fw.views) >= 8
        assert fw.dependencies
        # Every stated PAEB requirement is placed and traceable.
        for req_id in ("PAEB-R1", "PAEB-R2", "PAEB-R3", "PAEB-R4"):
            fw.trace_requirement(req_id)

    def test_paeb_attestation_impacts_offload(self):
        fw = build_paeb_framework()
        affected = fw.impact_of_change("mobile-network")
        assert "offload-security" in affected
        assert "detector-model" in affected

    def test_smart_mirror_privacy_traced(self):
        fw = build_smart_mirror_framework()
        owner, affected = fw.trace_requirement("SM-R1")
        assert owner == "privacy-onsite"
        assert "four-networks" in affected

    def test_templates_only_legal_dependencies(self):
        # Construction itself enforces the rule; re-check explicitly.
        for fw in (build_paeb_framework(), build_smart_mirror_framework()):
            for dep in fw.dependencies:
                src = fw.view(dep.source)
                dst = fw.view(dep.target)
                assert src.cluster is dst.cluster or src.level is dst.level


class TestVerificationSuite:
    def make_suite(self):
        from repro.requirements import VerificationSuite

        fw = build_paeb_framework()
        return fw, VerificationSuite(fw)

    def test_check_requires_existing_requirement(self):
        fw, suite = self.make_suite()
        with pytest.raises(FrameworkError):
            suite.add_check("NOPE-R1", "x", lambda: True)

    def test_passing_checks_verify_requirement(self):
        fw, suite = self.make_suite()
        suite.add_check("PAEB-R1", "brakes-in-time", lambda: True)
        suite.add_check("PAEB-R1", "stops-short", lambda: True)
        results = suite.run()
        assert all(r.passed for r in results)
        statuses = {r.req_id: r.status for _, r in fw.all_requirements()}
        assert statuses["PAEB-R1"] == "verified"

    def test_one_failure_keeps_requirement_open(self):
        fw, suite = self.make_suite()
        suite.add_check("PAEB-R2", "fast-enough", lambda: True)
        suite.add_check("PAEB-R2", "always-fast", lambda: False)
        suite.run()
        statuses = {r.req_id: r.status for _, r in fw.all_requirements()}
        assert statuses["PAEB-R2"] == "open"

    def test_crashing_check_counts_as_failure(self):
        fw, suite = self.make_suite()
        suite.add_check("PAEB-R3", "attests", lambda: 1 / 0)
        results = suite.run()
        assert not results[0].passed
        assert "ZeroDivisionError" in results[0].error

    def test_regression_reopens(self):
        fw, suite = self.make_suite()
        state = {"ok": True}
        suite.add_check("PAEB-R4", "energy-bound", lambda: state["ok"])
        suite.run()
        statuses = {r.req_id: r.status for _, r in fw.all_requirements()}
        assert statuses["PAEB-R4"] == "verified"
        state["ok"] = False
        suite.run()
        statuses = {r.req_id: r.status for _, r in fw.all_requirements()}
        assert statuses["PAEB-R4"] == "open"

    def test_coverage_and_report(self):
        fw, suite = self.make_suite()
        suite.add_check("PAEB-R1", "c1", lambda: True)
        assert "PAEB-R2" in suite.uncovered_requirements()
        results = suite.run()
        text = suite.compliance_report(results)
        assert "PAEB-R1" in text and "VERIFIED" in text
        assert "uncovered requirements" in text
