"""Tests for repro.ir.graph: structure, validation, costs, mutation."""

import numpy as np
import pytest

from repro.ir.graph import Graph, GraphError
from repro.ir.tensor import DType, TensorSpec


def small_graph():
    """input -> dense(w) -> relu -> output"""
    g = Graph("small")
    g.add_input(TensorSpec("x", (2, 4)))
    g.add_initializer("w", np.ones((3, 4), dtype=np.float32))
    g.add_node("dense", ["x", "w"], ["h"], name="fc")
    g.add_node("relu", ["h"], ["y"], name="act")
    g.set_outputs(["y"])
    return g


class TestConstruction:
    def test_valid_graph(self):
        g = small_graph()
        g.validate()
        assert len(g) == 2

    def test_duplicate_input(self):
        g = Graph()
        g.add_input(TensorSpec("x", (1,)))
        with pytest.raises(GraphError, match="duplicate graph input"):
            g.add_input(TensorSpec("x", (2,)))

    def test_duplicate_initializer(self):
        g = Graph()
        g.add_initializer("w", np.zeros(2, dtype=np.float32))
        with pytest.raises(GraphError, match="duplicate initializer"):
            g.add_initializer("w", np.zeros(2, dtype=np.float32))

    def test_duplicate_node_name(self):
        g = small_graph()
        with pytest.raises(GraphError, match="duplicate node name"):
            g.add_node("relu", ["y"], ["z"], name="fc")

    def test_initializer_dtype_override(self):
        g = Graph()
        g.add_initializer("b", np.array([1, -1], dtype=np.int8), DType.BINARY)
        assert g.initializer_dtypes["b"] is DType.BINARY


class TestValidation:
    def test_no_inputs(self):
        g = Graph()
        g.set_outputs(["y"])
        with pytest.raises(GraphError, match="no inputs"):
            g.validate()

    def test_no_outputs(self):
        g = Graph()
        g.add_input(TensorSpec("x", (1,)))
        with pytest.raises(GraphError, match="no outputs"):
            g.validate()

    def test_read_before_produce(self):
        g = Graph()
        g.add_input(TensorSpec("x", (2, 4)))
        g.add_node("relu", ["missing"], ["y"])
        g.set_outputs(["y"])
        with pytest.raises(GraphError, match="before it is produced"):
            g.validate()

    def test_tensor_redefinition(self):
        g = Graph()
        g.add_input(TensorSpec("x", (2, 4)))
        g.add_node("relu", ["x"], ["y"], name="a")
        g.add_node("relu", ["x"], ["y"], name="b")
        g.set_outputs(["y"])
        with pytest.raises(GraphError, match="redefines"):
            g.validate()

    def test_output_never_produced(self):
        g = Graph()
        g.add_input(TensorSpec("x", (2,)))
        g.add_node("relu", ["x"], ["y"])
        g.set_outputs(["nope"])
        with pytest.raises(GraphError, match="never produced"):
            g.validate()

    def test_name_both_input_and_initializer(self):
        g = Graph()
        g.add_input(TensorSpec("x", (2,)))
        g.add_initializer("x", np.zeros(2, dtype=np.float32))
        g.add_node("relu", ["x"], ["y"])
        g.set_outputs(["y"])
        with pytest.raises(GraphError, match="both inputs and initializers"):
            g.validate()


class TestQueries:
    def test_producer_map(self):
        g = small_graph()
        producers = g.producer_map()
        assert producers["h"].name == "fc"
        assert producers["y"].name == "act"

    def test_consumer_map(self):
        g = small_graph()
        consumers = g.consumer_map()
        assert [n.name for n in consumers["x"]] == ["fc"]
        assert [n.name for n in consumers["h"]] == ["act"]

    def test_node_by_name(self):
        assert small_graph().node_by_name("fc").op_type == "dense"
        with pytest.raises(KeyError):
            small_graph().node_by_name("nope")


class TestSpecsAndCost:
    def test_infer_specs(self):
        specs = small_graph().infer_specs()
        assert specs["h"].shape == (2, 3)
        assert specs["y"].shape == (2, 3)

    def test_total_cost_is_sum(self):
        g = small_graph()
        total = g.total_cost()
        per_node = sum((c for _, c in g.per_node_cost()),
                       start=type(total)())
        assert total.macs == per_node.macs
        assert total.ops == per_node.ops
        assert total.macs == 2 * 3 * 4

    def test_num_parameters(self):
        assert small_graph().num_parameters() == 12

    def test_parameter_bytes(self):
        assert small_graph().parameter_bytes() == 48


class TestMutation:
    def test_rename_tensor(self):
        g = small_graph()
        g.rename_tensor("y", "out")
        assert g.output_names == ["out"]
        g2 = small_graph()
        g2.rename_tensor("h", "hidden")
        assert g2.node_by_name("act").inputs == ["hidden"]

    def test_prune_dead_nodes(self):
        g = small_graph()
        g.add_initializer("unused", np.zeros(5, dtype=np.float32))
        g.add_node("relu", ["h"], ["dead"], name="dead_branch")
        removed = g.prune_dead_nodes()
        assert removed == 1
        assert "unused" not in g.initializers
        g.validate()

    def test_prune_keeps_live(self):
        g = small_graph()
        assert g.prune_dead_nodes() == 0
        assert len(g) == 2

    def test_copy_is_deep(self):
        g = small_graph()
        c = g.copy()
        c.initializers["w"][0, 0] = 99.0
        c.nodes[0].attrs["x"] = 1
        assert g.initializers["w"][0, 0] == 1.0
        assert "x" not in g.nodes[0].attrs

    def test_with_batch(self):
        g = small_graph().with_batch(7)
        assert g.infer_specs()["y"].shape == (7, 3)

    def test_summary_mentions_nodes(self):
        text = small_graph().summary()
        assert "fc" in text and "dense" in text
