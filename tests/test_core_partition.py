"""Tests for graph partitioning and the split-offload study."""

import numpy as np
import pytest

from repro.apps.automotive import ChannelSample, SplitOffloadStudy
from repro.core import PartitionError, enumerate_splits, run_split, split_at
from repro.hw import get_accelerator
from repro.ir import build_model
from repro.runtime import run_graph


@pytest.fixture(scope="module")
def net():
    return build_model("tiny_convnet", batch=1, num_classes=4)


@pytest.fixture(scope="module")
def feed():
    rng = np.random.default_rng(0)
    return {"input": rng.normal(size=(1, 3, 32, 32)).astype(np.float32)}


class TestEnumerate:
    def test_every_interior_position(self, net):
        points = enumerate_splits(net)
        assert [p.position for p in points] == list(range(1, len(net.nodes)))

    def test_boundary_shrinks_through_pooling(self, net):
        points = {p.position: p for p in enumerate_splits(net)}
        # After the first maxpool the activation footprint halves twice.
        sizes = [p.boundary_bytes for p in points.values()]
        assert min(sizes) < max(sizes) / 4

    def test_too_small_graph(self):
        from repro.ir import GraphBuilder

        b = GraphBuilder("one-node")
        x = b.input("x", (1, 4))
        g = b.finish(b.relu(x))
        with pytest.raises(PartitionError, match="too small"):
            enumerate_splits(g)


class TestSplitAt:
    @pytest.mark.parametrize("fraction", (0.2, 0.5, 0.9))
    def test_equivalence_at_cuts(self, net, feed, fraction):
        position = max(1, int(len(net.nodes) * fraction))
        ref = run_graph(net, feed)[net.output_names[0]]
        head, tail = split_at(net, position)
        out = run_split(head, tail, feed)[net.output_names[0]]
        np.testing.assert_array_equal(out, ref)

    def test_halves_are_valid_graphs(self, net):
        head, tail = split_at(net, len(net.nodes) // 2)
        head.validate()
        tail.validate()

    def test_weights_partitioned_not_duplicated(self, net):
        head, tail = split_at(net, len(net.nodes) // 2)
        overlap = set(head.initializers) & set(tail.initializers)
        assert not overlap
        assert set(head.initializers) | set(tail.initializers) <= \
            set(net.initializers)

    def test_out_of_range_positions(self, net):
        with pytest.raises(PartitionError):
            split_at(net, 0)
        with pytest.raises(PartitionError):
            split_at(net, len(net.nodes))

    def test_multi_output_graph(self):
        g = build_model("tiny_yolo")
        rng = np.random.default_rng(1)
        feed = {"input": rng.normal(size=(1, 3, 96, 96)).astype(np.float32)}
        ref = run_graph(g, feed)
        head, tail = split_at(g, len(g.nodes) // 3)
        out = run_split(head, tail, feed)
        for name in ref:
            np.testing.assert_array_equal(out[name], ref[name])

    def test_residual_boundary_carries_skip(self):
        """Cutting inside a residual block must transfer both branches."""
        g = build_model("mobilenet_v3_small", batch=1, image_size=64,
                        num_classes=5)
        # Find a cut position inside a residual (boundary with 2+ tensors).
        multi = [p for p in enumerate_splits(g)
                 if len(p.boundary_tensors) >= 2]
        assert multi, "expected residual cuts with multi-tensor boundaries"
        head, tail = split_at(g, multi[0].position)
        head.validate()
        tail.validate()
        assert len(head.output_names) >= 2


class TestSplitOffloadStudy:
    @pytest.fixture(scope="class")
    def study(self):
        detector = build_model("mobilenet_v3_large", image_size=224,
                               num_classes=1000)
        return SplitOffloadStudy(detector,
                                 get_accelerator("RPi-CM4"),
                                 get_accelerator("XavierNX"),
                                 activation_compression=4.0)

    def test_curve_covers_all_strategies(self, study):
        channel = ChannelSample(10.0, 30.0, True)
        curve = study.curve(channel)
        assert curve[0].kind == "all-edge"
        assert curve[-1].kind == "all-oncar"
        assert any(o.kind == "split" for o in curve[1:-1])

    def test_endpoint_consistency(self, study):
        channel = ChannelSample(10.0, 30.0, True)
        all_edge, all_oncar = study.endpoints(channel)
        assert all_edge.boundary_bytes > 0
        assert all_oncar.boundary_bytes == 0
        assert all_oncar.oncar_energy_j > all_edge.oncar_energy_j * 0 + 0

    def test_bad_network_forces_oncar(self, study):
        channel = ChannelSample(0.5, 100.0, True)
        best = study.best(channel, deadline_s=5.0)
        assert best.kind == "all-oncar"

    def test_moderate_network_prefers_mid_split(self, study):
        channel = ChannelSample(10.0, 30.0, True)
        best = study.best(channel, deadline_s=5.0)
        all_edge, all_oncar = study.endpoints(channel)
        assert best.kind == "split"
        assert best.oncar_energy_j < all_oncar.oncar_energy_j
        assert best.oncar_energy_j < all_edge.oncar_energy_j

    def test_deadline_fallback(self, study):
        channel = ChannelSample(10.0, 30.0, True)
        # Impossible deadline: returns the fastest option anyway.
        best = study.best(channel, deadline_s=1e-9)
        curve = study.curve(channel)
        assert best.latency_s == min(o.latency_s for o in curve)

    def test_latency_objective(self, study):
        channel = ChannelSample(10.0, 30.0, True)
        fast = study.best(channel, deadline_s=5.0, objective="latency")
        frugal = study.best(channel, deadline_s=5.0,
                            objective="oncar_energy")
        assert fast.latency_s <= frugal.latency_s + 1e-12
