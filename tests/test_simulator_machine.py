"""Tests for machine composition, peripherals, CFUs, and the CI harness."""

import numpy as np
import pytest

from repro.simulator import (
    Expectation,
    Machine,
    MultiCfu,
    PopcountCfu,
    Ram,
    RAM_BASE,
    SimdMacCfu,
    SimTest,
    SystemBus,
    TIMER_BASE,
    UART_BASE,
    halt_with,
    run_suite,
)
from repro.simulator.memory import BusError, PrivilegeMode


class TestBus:
    def test_overlapping_regions_rejected(self):
        bus = SystemBus()
        bus.register(0x1000, 0x100, Ram(0x100), "a")
        with pytest.raises(ValueError, match="overlaps"):
            bus.register(0x10FF, 0x100, Ram(0x100), "b")

    def test_unmapped_access(self):
        bus = SystemBus()
        with pytest.raises(BusError, match="unmapped"):
            bus.read(0x0, 4)

    def test_cross_region_access_rejected(self):
        bus = SystemBus()
        bus.register(0x1000, 0x10, Ram(0x10), "a")
        with pytest.raises(BusError, match="boundary"):
            bus.read(0x100E, 4)

    def test_read_write(self):
        bus = SystemBus()
        bus.register(0x1000, 0x100, Ram(0x100), "ram")
        bus.write(0x1004, 4, 0xCAFEBABE)
        assert bus.read(0x1004, 4) == 0xCAFEBABE
        assert bus.read(0x1004, 1) == 0xBE


class TestMachine:
    def test_uart_output(self):
        machine = Machine()
        machine.load_assembly(f"""
            li   a0, {UART_BASE}
            li   a1, 79          # 'O'
            sb   a1, 0(a0)
            li   a1, 75          # 'K'
            sb   a1, 0(a0)
        """ + halt_with(0))
        result = machine.run()
        assert result.uart_output == "OK"
        assert result.success

    def test_exit_code(self):
        machine = Machine()
        machine.load_assembly(halt_with(42))
        result = machine.run()
        assert result.exit_code == 42
        assert not result.success

    def test_step_budget(self):
        machine = Machine()
        machine.load_assembly("spin: j spin")
        result = machine.run(max_steps=100)
        assert not result.halted
        assert result.steps == 100

    def test_until_predicate(self):
        machine = Machine()
        machine.load_assembly("""
            li a0, 0
        loop:
            addi a0, a0, 1
            j loop
        """)
        result = machine.run(until=lambda m: m.cpu.read_reg(10) >= 5)
        assert machine.cpu.read_reg(10) == 5

    def test_timer_counts_cycles(self):
        machine = Machine()
        machine.load_assembly("nop\nnop\nnop" + halt_with(0))
        result = machine.run()
        lo = machine.bus.read(TIMER_BASE, 4, PrivilegeMode.MACHINE)
        assert lo == result.cycles

    def test_reset_preserves_memory(self):
        machine = Machine()
        machine.load_assembly(halt_with(3))
        first = machine.run()
        machine.reset()
        second = machine.run()
        assert first.exit_code == second.exit_code == 3

    def test_uart_status_ready(self):
        machine = Machine()
        assert machine.bus.read(UART_BASE + 4, 4, PrivilegeMode.MACHINE) == 1


class TestCfus:
    def test_simd_mac_dot4(self):
        cfu = SimdMacCfu()
        a = 0x01020304  # bytes 4,3,2,1
        b = 0x02020202
        assert cfu.execute(3, 0, a, b) == 2 * (1 + 2 + 3 + 4)

    def test_simd_mac_signed_bytes(self):
        cfu = SimdMacCfu()
        a = 0xFF000000  # top byte = -1
        b = 0x7F000000  # top byte = 127
        result = cfu.execute(3, 0, a, b)
        assert result == (-127) & 0xFFFFFFFF

    def test_accumulator_workflow(self):
        cfu = SimdMacCfu()
        cfu.execute(2, 0, 0, 0)          # reset
        cfu.execute(0, 0, 0x01010101, 0x01010101)  # +4
        cfu.execute(0, 0, 0x02020202, 0x01010101)  # +8
        assert cfu.execute(1, 0, 0, 0) == 12
        assert cfu.mac_count == 2

    def test_cfu_matches_numpy_dot(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, size=64, dtype=np.int8)
        b = rng.integers(-128, 128, size=64, dtype=np.int8)
        cfu = SimdMacCfu()
        cfu.execute(2, 0, 0, 0)
        for i in range(0, 64, 4):
            pa = int.from_bytes(a[i:i + 4].tobytes(), "little")
            pb = int.from_bytes(b[i:i + 4].tobytes(), "little")
            cfu.execute(0, 0, pa, pb)
        want = int(np.dot(a.astype(np.int32), b.astype(np.int32)))
        assert cfu.execute(1, 0, 0, 0) == want & 0xFFFFFFFF

    def test_popcount(self):
        cfu = PopcountCfu()
        assert cfu.execute(0, 0, 0xFF00FF00, 0) == 16
        # xnor-popcount of identical words = 32
        assert cfu.execute(1, 0, 0x12345678, 0x12345678) == 32

    def test_multi_cfu_dispatch(self):
        multi = MultiCfu({0: SimdMacCfu(), 1: PopcountCfu()})
        assert multi.execute(0, 1, 0xF, 0) == 4      # popcount via funct7=1
        with pytest.raises(ValueError, match="no CFU"):
            multi.execute(0, 9, 0, 0)

    def test_cfu_instruction_in_program(self):
        machine = Machine(cfu=SimdMacCfu())
        machine.load_assembly("""
            li   a0, 0x04030201
            li   a1, 0x01010101
            cfu  a2, a0, a1, 3, 0
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(12) == 10

    def test_cfu_without_unit_is_illegal(self):
        machine = Machine()  # no CFU attached
        machine.load_assembly("cfu a0, a1, a2, 0, 0")
        machine.run(max_steps=1)
        from repro.simulator import CAUSE_ILLEGAL_INSTRUCTION
        assert machine.cpu.last_trap_cause == CAUSE_ILLEGAL_INSTRUCTION


class TestCiHarness:
    def test_passing_test(self):
        test = SimTest(
            name="arith",
            assembly="li a0, 6\nli a1, 7\nmul a2, a0, a1" + halt_with(0),
            expect=Expectation(exit_code=0, registers={12: 42}),
        )
        test.run()

    def test_register_mismatch_raises(self):
        from repro.simulator import SimAssertionError

        test = SimTest(
            name="bad",
            assembly="li a0, 1" + halt_with(0),
            expect=Expectation(registers={10: 2}),
        )
        with pytest.raises(SimAssertionError, match="x10"):
            test.run()

    def test_uart_expectation(self):
        test = SimTest(
            name="uart",
            assembly=f"""
                li a0, {UART_BASE}
                li a1, 104
                sb a1, 0(a0)
                li a1, 105
                sb a1, 0(a0)
            """ + halt_with(0),
            expect=Expectation(uart_equals="hi"),
        )
        test.run()

    def test_cycle_budget(self):
        from repro.simulator import SimAssertionError

        test = SimTest(
            name="slow",
            assembly="li a0, 1000\nloop: addi a0, a0, -1\nbnez a0, loop"
                     + halt_with(0),
            expect=Expectation(max_cycles=10),
        )
        with pytest.raises(SimAssertionError, match="budget"):
            test.run()

    def test_suite_collects_failures(self):
        suite = [
            SimTest("ok", "li a0, 1" + halt_with(0), Expectation()),
            SimTest("fail", "li a0, 1" + halt_with(1), Expectation()),
        ]
        report = run_suite(suite)
        assert report.passed == ["ok"]
        assert "fail" in report.failed
        assert not report.ok
        assert "1 passed, 1 failed" in report.summary()

    def test_memory_word_expectation(self):
        address = RAM_BASE + 0x2000
        test = SimTest(
            name="mem",
            assembly=f"""
                li a0, {address}
                li a1, 0x1234
                sw a1, 0(a0)
            """ + halt_with(0),
            expect=Expectation(memory_words={address: 0x1234}),
        )
        test.run()
