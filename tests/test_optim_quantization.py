"""Tests for repro.optim.quantization: calibration, QDQ rewrite, FP16."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.tensor import DType
from repro.optim import (
    QuantizePass,
    calibrate,
    convert_fp16,
    fuse_graph,
    quantize_int8,
)
from repro.runtime import run_graph


@pytest.fixture(scope="module")
def fused_net():
    return fuse_graph(build_model("tiny_convnet", batch=4))


@pytest.fixture(scope="module")
def calib_feeds():
    rng = np.random.default_rng(0)
    return [{"input": rng.normal(size=(4, 3, 32, 32)).astype(np.float32)}
            for _ in range(3)]


class TestCalibration:
    def test_records_all_float_tensors(self, fused_net, calib_feeds):
        result = calibrate(fused_net, calib_feeds)
        specs = fused_net.infer_specs()
        for node in fused_net.nodes:
            for out in node.outputs:
                if specs[out].dtype.is_float:
                    assert out in result.ranges

    def test_ranges_widen_across_batches(self, fused_net):
        rng = np.random.default_rng(1)
        small = {"input": (rng.normal(size=(4, 3, 32, 32)) * 0.1)
                 .astype(np.float32)}
        large = {"input": (rng.normal(size=(4, 3, 32, 32)) * 10)
                 .astype(np.float32)}
        one = calibrate(fused_net, [small])
        both = calibrate(fused_net, [small, large])
        lo1, hi1 = one.ranges["input"]
        lo2, hi2 = both.ranges["input"]
        assert lo2 <= lo1 and hi2 >= hi1

    def test_max_batches_cap(self, fused_net, calib_feeds):
        result = calibrate(fused_net, calib_feeds * 10, max_batches=2)
        assert result.ranges  # just confirms it terminated

    def test_empty_iterator_rejected(self, fused_net):
        with pytest.raises(ValueError, match="at least one batch"):
            calibrate(fused_net, [])


class TestQuantizePass:
    def test_qdq_structure(self, fused_net, calib_feeds):
        gq = quantize_int8(fused_net, calib_feeds)
        ops = [n.op_type for n in gq.nodes]
        assert "qconv2d" in ops and "qdense" in ops
        assert ops.count("quantize") == ops.count("qconv2d") + \
            ops.count("qdense")
        assert ops.count("dequantize") == ops.count("quantize")

    def test_weights_become_int8(self, fused_net, calib_feeds):
        gq = quantize_int8(fused_net, calib_feeds)
        for node in gq.nodes:
            if node.op_type in ("qconv2d", "qdense"):
                weight = gq.initializers[node.inputs[1]]
                assert weight.dtype == np.int8

    def test_accuracy_preserved(self, fused_net, calib_feeds):
        x = calib_feeds[0]["input"]
        ref = run_graph(fused_net, {"input": x})[fused_net.output_names[0]]
        gq = quantize_int8(fused_net, calib_feeds)
        out = run_graph(gq, {"input": x})[gq.output_names[0]]
        assert (out.argmax(-1) == ref.argmax(-1)).mean() >= 0.75

    def test_model_size_shrinks(self, fused_net, calib_feeds):
        gq = quantize_int8(fused_net, calib_feeds)
        assert gq.parameter_bytes() < fused_net.parameter_bytes() / 2

    def test_per_tensor_mode(self, fused_net, calib_feeds):
        gq = quantize_int8(fused_net, calib_feeds, per_channel=False)
        for node in gq.nodes:
            if node.op_type == "qconv2d":
                assert np.asarray(node.attrs["weight_scale"]).size == 1

    def test_per_channel_mode(self, fused_net, calib_feeds):
        gq = quantize_int8(fused_net, calib_feeds, per_channel=True)
        qconvs = [n for n in gq.nodes if n.op_type == "qconv2d"]
        assert any(np.asarray(n.attrs["weight_scale"]).size > 1
                   for n in qconvs)

    def test_activation_attr_carried(self, fused_net, calib_feeds):
        gq = quantize_int8(fused_net, calib_feeds)
        assert any(n.attrs.get("activation") == "relu" for n in gq.nodes
                   if n.op_type == "qconv2d")

    def test_details_counters(self, fused_net, calib_feeds):
        calibration = calibrate(fused_net, calib_feeds)
        quantizer = QuantizePass(calibration)
        quantizer.run(fused_net)
        assert quantizer.details()["nodes_quantized"] > 0


class TestFP16:
    def test_initializers_cast(self):
        g = build_model("mlp", batch=2)
        gh = convert_fp16(g)
        assert all(v.dtype == np.float16 for v in gh.initializers.values())
        assert gh.inputs[0].dtype is DType.FP16

    def test_size_halves(self):
        g = build_model("mlp", batch=2)
        gh = convert_fp16(g)
        assert gh.parameter_bytes() == g.parameter_bytes() // 2

    def test_numerically_close(self):
        rng = np.random.default_rng(3)
        g = build_model("mlp", batch=2, in_features=16, hidden=(8,),
                        num_classes=4)
        x = rng.normal(size=(2, 16)).astype(np.float32)
        ref = run_graph(g, {"input": x})[g.output_names[0]]
        out = run_graph(convert_fp16(g), {"input": x})[g.output_names[0]]
        np.testing.assert_allclose(out.astype(np.float32), ref, atol=1e-2)
