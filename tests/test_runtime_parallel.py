"""Tests for parallel plan execution: scheduler, sharding, pool, arena.

The hard correctness bar is bitwise equivalence: the parallel executor
must produce byte-identical outputs to the sequential executor across
float, binary, and quantized paths at 1, 2, and 8 threads — dependency
scheduling changes *when* steps run, sharding changes *who* computes
which rows, and neither may change a single bit of the result.  On top
of that: schedule-structure invariants, a property test that random
out-of-order completions never free a buffer a pending consumer needs,
the arena's single-owner guard, and the ``REPRO_NUM_THREADS`` plumbing.
"""

import json
import threading

import numpy as np
import pytest

from repro.ir import build_model
from repro.optim import BinarizePass, QuantizePass, calibrate, fuse_graph
from repro.runtime import (
    ArenaOwnershipError,
    ExecutionError,
    Executor,
    Profiler,
    ScratchArena,
    WorkerSlices,
    build_schedule,
    compile_plan,
    kernels,
    resolve_num_threads,
)
from repro.runtime.parallel import NUM_THREADS_ENV_VAR, WorkerPool
from repro.runtime.plan import CompiledStep, ExecutionPlan

THREAD_COUNTS = (1, 2, 8)


def reference_feeds(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {
        spec.name: rng.normal(size=spec.shape)
        .astype(spec.dtype.to_numpy())
        for spec in graph.inputs
    }


def quantized(graph, feeds):
    fused = fuse_graph(graph)
    return QuantizePass(calibrate(fused, [feeds])).run(fused), fused


def assert_bitwise(got, want, context=""):
    assert set(got) == set(want)
    for name in want:
        assert got[name].dtype == want[name].dtype, (context, name)
        np.testing.assert_array_equal(got[name], want[name],
                                      err_msg=f"{context}:{name}")


# Models chosen for schedule shape: a pure chain (mlp), a single-branch
# conv net (tiny_convnet), and the wide-branch workload whose schedule
# actually fans out.  batch=4 makes the conv steps shardable.
PARALLEL_MODELS = [
    ("mlp", {"batch": 4}),
    ("tiny_convnet", {"batch": 4}),
    ("wide_branch_net", {"batch": 4}),
]


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name,kwargs", PARALLEL_MODELS)
    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    def test_float_paths(self, name, kwargs, num_threads):
        graph = build_model(name, **kwargs)
        feeds = reference_feeds(graph)
        want = Executor(graph).run(feeds)
        for reuse in (False, True):
            executor = Executor(graph, reuse_buffers=reuse,
                                num_threads=num_threads)
            for _ in range(2):      # repeat: arena steady state too
                got = executor.run(feeds)
                assert_bitwise(got, want, f"{name}/t{num_threads}/r{reuse}")
                executor.recycle(got)

    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    def test_quantized_path(self, num_threads):
        graph = build_model("wide_branch_net", batch=4)
        feeds = reference_feeds(graph)
        qgraph, _ = quantized(graph, feeds)
        want = Executor(qgraph).run(feeds)
        for reuse in (False, True):
            executor = Executor(qgraph, reuse_buffers=reuse,
                                num_threads=num_threads)
            for _ in range(2):
                got = executor.run(feeds)
                assert_bitwise(got, want, f"q/t{num_threads}/r{reuse}")
                executor.recycle(got)

    @pytest.mark.parametrize("num_threads", THREAD_COUNTS)
    def test_binary_path(self, num_threads):
        graph = build_model("tiny_convnet", batch=4)
        feeds = reference_feeds(graph)
        bgraph = BinarizePass().run(fuse_graph(graph))
        want = Executor(bgraph).run(feeds)
        got = Executor(bgraph, num_threads=num_threads).run(feeds)
        assert_bitwise(got, want, f"b/t{num_threads}")

    def test_fp16_conv_shards_bitwise(self):
        from repro.optim import convert_fp16

        graph = convert_fp16(build_model("tiny_convnet", batch=8))
        feeds = reference_feeds(graph)
        want = Executor(graph).run(feeds)
        got = Executor(graph, reuse_buffers=True, num_threads=4).run(feeds)
        assert_bitwise(got, want, "fp16")


class TestSchedule:
    def test_chain_has_no_width(self):
        plan = compile_plan(build_model("mlp"))
        assert plan.schedule.max_width == 1
        assert plan.schedule.depth == len(plan.steps)

    def test_wide_branches_fan_out(self):
        plan = compile_plan(build_model("wide_branch_net", branches=4))
        assert plan.schedule.max_width == 4
        # critical path: stem block + one branch + merge tail, far
        # shorter than the step count
        assert plan.schedule.depth < len(plan.steps)

    def test_indegree_matches_successor_edges(self):
        plan = compile_plan(build_model("wide_branch_net"))
        schedule = plan.schedule
        assert sum(schedule.indegree) == \
            sum(len(s) for s in schedule.successors)
        # every successor edge goes forward in topological order
        for index, succs in enumerate(schedule.successors):
            assert all(s > index for s in succs)

    def test_refcounts_count_consumer_steps(self):
        plan = compile_plan(build_model("wide_branch_net"))
        schedule = plan.schedule
        releasable = {name for step in plan.steps for name in step.release}
        assert set(schedule.refcounts) == releasable
        for name, count in schedule.refcounts.items():
            consumers = sum(1 for step in plan.steps
                            if name in step.node.inputs)
            assert count == consumers

    def test_roundtrips_through_dict(self):
        schedule = compile_plan(build_model("tiny_convnet")).schedule
        from repro.runtime.plan import PlanSchedule

        clone = PlanSchedule.from_dict(
            json.loads(json.dumps(schedule.to_dict())))
        assert clone == schedule

    def test_summary_reports_depth_and_width(self):
        plan = compile_plan(build_model("wide_branch_net", branches=3))
        text = plan.summary()
        assert f"schedule depth {plan.schedule.depth}" in text
        assert "max width 3" in text


class TestOutOfOrderReleaseSafety:
    """Property test: under *any* topological completion order, the
    refcount release rule never frees a tensor a still-pending consumer
    needs, and frees every releasable tensor by the end."""

    @pytest.mark.parametrize("model,kwargs", [
        ("wide_branch_net", {"branches": 6}),
        ("tiny_yolo", {}),
        ("resnet50", {"image_size": 64}),
    ])
    def test_random_topological_orders(self, model, kwargs):
        plan = compile_plan(build_model(model, **kwargs))
        schedule = plan.schedule
        steps = plan.steps
        produced_by = {name: i for i, step in enumerate(steps)
                      for name in step.node.outputs}
        rng = np.random.default_rng(0)
        for _ in range(25):
            indegree = list(schedule.indegree)
            refcounts = dict(schedule.refcounts)
            ready = [i for i in range(len(steps)) if indegree[i] == 0]
            live = set()
            freed = set()
            while ready:
                index = ready.pop(int(rng.integers(len(ready))))
                step = steps[index]
                for name in step.node.inputs:
                    if name in produced_by:
                        assert name not in freed, \
                            f"{step.node.name} consumed freed {name}"
                        assert name in live
                for name in step.node.outputs:
                    live.add(name)
                for name in step.node.outputs:
                    if refcounts.get(name) == 0:
                        live.discard(name)
                        freed.add(name)
                for name in set(step.node.inputs):
                    count = refcounts.get(name)
                    if count is None:
                        continue
                    refcounts[name] = count - 1
                    if count == 1 and name in produced_by:
                        live.discard(name)
                        freed.add(name)
                for succ in schedule.successors[index]:
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        ready.append(succ)
            assert freed == {name for name in schedule.refcounts
                             if name in produced_by}


class TestShardedKernels:
    def test_shard_bounds_cover_disjointly(self):
        for total in (1, 2, 7, 8, 64):
            for parts in (1, 2, 3, 8, 100):
                bounds = kernels.shard_bounds(total, parts)
                assert bounds[0][0] == 0 and bounds[-1][1] == total
                for (_, a_hi), (b_lo, _) in zip(bounds, bounds[1:]):
                    assert a_hi == b_lo
                assert len(bounds) == min(max(parts, 1), total)

    @pytest.mark.parametrize("dtype", [np.float32, np.float16])
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_conv2d_rows_bitwise(self, dtype, stride, padding):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(8, 3, 12, 12)).astype(dtype)
        weight = rng.normal(size=(5, 3, 3, 3)).astype(dtype)
        bias = rng.normal(size=(5,)).astype(dtype)
        want = kernels.conv2d(data, weight, bias=bias, stride=stride,
                              padding=padding)
        out = np.empty_like(want)
        for lo, hi in kernels.shard_bounds(8, 3):
            kernels.conv2d_rows(data, weight, lo, hi, out, bias=bias,
                                stride=stride, padding=padding)
        np.testing.assert_array_equal(out, want)

    def test_dense_rows_integer_exact(self):
        rng = np.random.default_rng(2)
        data = rng.integers(-40, 40, size=(9, 17)).astype(np.int32)
        weight = rng.integers(-40, 40, size=(6, 17)).astype(np.int32)
        want = kernels.dense(data, weight)
        out = np.empty_like(want)
        for lo, hi in kernels.shard_bounds(9, 4):
            kernels.dense_rows(data, weight, lo, hi, out)
        np.testing.assert_array_equal(out, want)

    def test_wide_conv_steps_carry_shard_plans(self):
        plan = compile_plan(build_model("wide_branch_net", batch=4))
        sharded = [s for s in plan.steps if s.shard is not None]
        assert sharded, "expected shardable conv steps at batch 4"
        for step in sharded:
            assert step.shard.rows == 4
        # float dense is never sharded (row splits are not bitwise-safe)
        assert all(s.node.op_type not in ("dense", "fused_dense")
                   for s in sharded)

    def test_batch_one_is_never_sharded(self):
        plan = compile_plan(build_model("wide_branch_net", batch=1))
        assert all(s.shard is None for s in plan.steps)


class TestArenaOwnership:
    def test_concurrent_misuse_fails_loudly(self):
        arena = ScratchArena()
        arena._active = threading.get_ident() + 1   # a thread mid-call
        with pytest.raises(ArenaOwnershipError):
            arena.alloc((4,), np.float32)

    def test_share_replaces_assertion_with_lock(self):
        arena = ScratchArena().share()
        assert arena.is_shared
        arena._active = threading.get_ident() + 1
        arena.release(arena.alloc((4,), np.float32))    # no raise

    def test_shared_arena_survives_thread_storm(self):
        arena = ScratchArena().share()
        errors = []

        def worker():
            try:
                for _ in range(200):
                    arena.release(arena.alloc((16, 16), np.float32))
            except BaseException as exc:   # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert arena.stats.releases == 8 * 200

    def test_worker_slices_are_per_thread(self):
        slices = WorkerSlices(kernels.Workspace)
        mine = slices.get()
        assert slices.get() is mine
        other = []
        thread = threading.Thread(target=lambda: other.append(slices.get()))
        thread.start()
        thread.join()
        assert other[0] is not mine
        assert len(slices) == 2


class TestNumThreadsPlumbing:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(NUM_THREADS_ENV_VAR, "7")
        assert resolve_num_threads(2) == 2
        assert resolve_num_threads() == 7

    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(NUM_THREADS_ENV_VAR, raising=False)
        assert resolve_num_threads() == 1

    @pytest.mark.parametrize("bad", ["0", "-2", "many"])
    def test_bad_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv(NUM_THREADS_ENV_VAR, bad)
        with pytest.raises(ValueError):
            resolve_num_threads()

    def test_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv(NUM_THREADS_ENV_VAR, "3")
        executor = Executor(build_model("mlp"))
        assert executor.num_threads == 3

    def test_worker_pool_grows_only(self):
        pool = WorkerPool(name="test-pool")
        assert pool.ensure(2) == 2
        assert pool.ensure(1) == 2
        done = threading.Event()
        pool.submit(done.set)
        assert done.wait(5.0)


class TestParallelExecutorBehaviour:
    def test_hooks_force_sequential_order(self):
        graph = build_model("wide_branch_net", batch=2)
        executor = Executor(graph, num_threads=8)
        seen = []
        executor.add_hook(lambda node, outs: seen.append(node.name))
        executor.run(reference_feeds(graph))
        assert seen == [node.name for node in graph.nodes]

    def test_error_in_parallel_step_raises_execution_error(self):
        graph = build_model("wide_branch_net", batch=2)
        plan = compile_plan(graph)
        victim = len(plan.steps) // 2

        def boom(args, ctx=None):
            raise RuntimeError("kernel exploded")

        steps = list(plan.steps)
        steps[victim] = CompiledStep(steps[victim].node, boom,
                                     steps[victim].release)
        broken = ExecutionPlan(plan.graph_name, steps, plan.specs,
                               plan.peak_live_bytes, packs=plan.packs,
                               schedule=build_schedule(steps))
        executor = Executor(graph, plan=broken, num_threads=4)
        with pytest.raises(ExecutionError, match="kernel exploded"):
            executor.run(reference_feeds(graph))

    def test_profiler_reports_concurrency(self):
        graph = build_model("wide_branch_net", batch=2)
        profiler = Profiler(graph, reuse_buffers=True, num_threads=4)
        result = profiler.profile(reference_feeds(graph), runs=2, warmup=1)
        assert result.num_threads == 4
        assert result.observed_concurrency >= 1.0
        assert all(layer.calls == 2 for layer in result.layers)
        assert result.peak_activation_bytes > 0
        assert "observed concurrency" in result.report()

    def test_timeline_spans_cover_every_step(self):
        graph = build_model("wide_branch_net", batch=4)
        executor = Executor(graph, num_threads=4)
        executor.record_timeline = True
        executor.run(reference_feeds(graph))
        timeline = executor.last_timeline
        assert timeline is not None
        assert {entry["name"] for entry in timeline} == \
            {node.name for node in graph.nodes}
        assert all(entry["end"] >= entry["start"] for entry in timeline)
        # sharded steps contribute one span per shard
        plan = executor.plan
        sharded = {s.node.name for s in plan.steps if s.shard is not None}
        for name in sharded:
            assert sum(1 for e in timeline if e["name"] == name) > 1


class TestPlanCacheSchedule:
    def test_warm_load_preserves_schedule(self, tmp_path):
        from repro.runtime.plan_cache import PlanCache

        graph = build_model("wide_branch_net", batch=2)
        cache = PlanCache(tmp_path)
        key = cache.key_for(graph)
        plan = compile_plan(graph)
        cache.store(key, graph, plan)
        loaded = cache.load(key)
        assert loaded is not None
        _, warm_plan = loaded
        assert warm_plan.schedule == plan.schedule

    def test_old_entry_version_is_a_miss(self, tmp_path):
        from repro.runtime.plan_cache import PlanCache, _META_FILE

        graph = build_model("mlp")
        cache = PlanCache(tmp_path)
        key = cache.key_for(graph)
        cache.store(key, graph, compile_plan(graph))
        meta_path = tmp_path / key / _META_FILE
        meta = json.loads(meta_path.read_text())
        meta["version"] = 1
        meta_path.write_text(json.dumps(meta))
        assert cache.load(key) is None

    def test_warm_plan_runs_parallel_bitwise(self, tmp_path):
        from repro.runtime.plan_cache import PlanCache

        graph = build_model("wide_branch_net", batch=4)
        cache = PlanCache(tmp_path)
        key = cache.key_for(graph)
        cache.store(key, graph, compile_plan(graph))
        warm_graph, warm_plan = cache.load(key)
        feeds = reference_feeds(graph)
        want = Executor(graph).run(feeds)
        got = Executor(warm_graph, plan=warm_plan, num_threads=4).run(feeds)
        assert_bitwise(got, want, "warm-parallel")


class TestEngineThreads:
    def test_engine_with_threads_matches_reference(self):
        from repro.serving import InferenceEngine

        graph = build_model("tiny_convnet")
        feeds = reference_feeds(graph)
        want = Executor(graph).run(feeds)
        with InferenceEngine(graph, workers=2, max_batch=4,
                             num_threads=2) as engine:
            results = engine.infer_many([feeds] * 12)
        assert len(results) == 12
        for got in results:
            for name in want:
                np.testing.assert_allclose(got[name], want[name],
                                           rtol=1e-5, atol=1e-6)

    def test_engine_reads_env_default(self, monkeypatch):
        from repro.serving import InferenceEngine

        monkeypatch.setenv(NUM_THREADS_ENV_VAR, "2")
        graph = build_model("mlp")
        with InferenceEngine(graph, workers=1, max_batch=2) as engine:
            assert engine.num_threads == 2
            engine.infer_sync(reference_feeds(graph), timeout=30.0)
