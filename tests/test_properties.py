"""Property-based tests over core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import GraphBuilder, build_model, dumps, loads
from repro.ir.tensor import DType, TensorSpec
from repro.optim import ConnectionPrune, fuse_graph
from repro.runtime import kernels, run_graph
from repro.runtime.quantized import choose_qparams
from repro.security.crypto import SealedBox, SigningKey


@st.composite
def mlp_dims(draw):
    in_features = draw(st.integers(2, 16))
    hidden = draw(st.lists(st.integers(2, 16), min_size=1, max_size=3))
    classes = draw(st.integers(2, 8))
    return in_features, tuple(hidden), classes


class TestGraphInvariants:
    @given(mlp_dims())
    @settings(max_examples=15, deadline=None)
    def test_mlp_always_validates_and_runs(self, dims):
        in_features, hidden, classes = dims
        g = build_model("mlp", batch=2, in_features=in_features,
                        hidden=hidden, num_classes=classes)
        g.validate()
        out = run_graph(g, {"input": np.zeros((2, in_features),
                                              dtype=np.float32)})
        result = out[g.output_names[0]]
        assert result.shape == (2, classes)
        np.testing.assert_allclose(result.sum(axis=-1), 1.0, rtol=1e-4)

    @given(mlp_dims())
    @settings(max_examples=10, deadline=None)
    def test_serialization_identity(self, dims):
        in_features, hidden, classes = dims
        g = build_model("mlp", batch=1, in_features=in_features,
                        hidden=hidden, num_classes=classes)
        restored = loads(dumps(g))
        x = np.random.default_rng(0).normal(size=(1, in_features)) \
            .astype(np.float32)
        np.testing.assert_array_equal(
            run_graph(g, {"input": x})[g.output_names[0]],
            run_graph(restored, {"input": x})[restored.output_names[0]])

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_rebatching_preserves_per_sample_results(self, batch):
        g = build_model("mlp", batch=1, in_features=8, hidden=(6,),
                        num_classes=3, seed=2)
        gb = g.with_batch(batch)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(batch, 8)).astype(np.float32)
        batched = run_graph(gb, {"input": x})[gb.output_names[0]]
        for i in range(batch):
            single = run_graph(g, {"input": x[i:i + 1]})[g.output_names[0]]
            np.testing.assert_allclose(batched[i], single[0], rtol=1e-4,
                                       atol=1e-6)

    @given(st.floats(0.0, 0.95))
    @settings(max_examples=10, deadline=None)
    def test_pruned_graph_cost_never_increases(self, fraction):
        g = build_model("mlp", batch=1, in_features=16, hidden=(32,),
                        num_classes=4)
        pruned = ConnectionPrune(fraction).run(g)
        pruned.validate()
        assert pruned.num_parameters() == g.num_parameters()  # zeros remain
        from repro.optim import sparsity_of
        assert sparsity_of(pruned).global_sparsity >= \
            sparsity_of(g).global_sparsity


class TestKernelInvariants:
    @given(st.integers(1, 3), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_softmax_is_distribution(self, batch, classes):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 10, size=(batch, classes))
        out = kernels.softmax(x)
        assert (out >= 0).all()
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, values):
        x = np.array(values)
        once = kernels.relu(x)
        np.testing.assert_array_equal(kernels.relu(once), once)

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_hardsigmoid_bounded(self, values):
        out = kernels.hardsigmoid(np.array(values))
        assert (out >= 0).all() and (out <= 1).all()

    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_maxpool_upper_bounds_avgpool(self, h, w):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(1, 2, h * 2, w * 2)).astype(np.float32)
        mx = kernels.maxpool2d(data, 2)
        avg = kernels.avgpool2d(data, 2)
        assert (mx >= avg - 1e-6).all()


class TestQuantizationInvariants:
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2,
                    max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_quantize_output_in_dtype_range(self, values):
        data = np.array(values, dtype=np.float32)
        params = choose_qparams(data, symmetric=False)
        q = params.quantize(data)
        assert q.min() >= -128 and q.max() <= 127

    @given(st.floats(0.1, 10.0), st.lists(st.floats(-5, 5), min_size=1,
                                          max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_dequantize_monotonic(self, scale, values):
        from repro.runtime.quantized import QuantParams

        params = QuantParams(np.array([scale]), np.array([0]))
        data = np.sort(np.array(values, dtype=np.float32))
        restored = params.dequantize(params.quantize(data))
        assert (np.diff(restored) >= -1e-9).all()


class TestSecurityInvariants:
    @given(st.binary(min_size=1, max_size=128), st.binary(max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_signature_binds_message(self, message, perturbation):
        sk = SigningKey(b"prop-seed")
        vk = sk.verifying_key()
        sig = sk.sign(message)
        vk.verify(message, sig)
        altered = message + perturbation
        if altered != message:
            with pytest.raises(Exception):
                vk.verify(altered, sig)

    @given(st.binary(max_size=256), st.binary(min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_sealed_box_keys_disjoint(self, payload, key_suffix):
        box_a = SealedBox(b"key-a")
        box_b = SealedBox(b"key-a" + key_suffix)
        blob = box_a.seal(payload)
        with pytest.raises(Exception):
            box_b.unseal(blob)


class TestFusionInvariant:
    @given(st.integers(1, 4), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_fusion_preserves_semantics(self, batch, seed):
        b = GraphBuilder("net", seed=seed)
        x = b.input("x", (batch, 2, 8, 8))
        y = b.conv_bn_act(x, 4, 3, padding=1, act="relu", name="b1")
        y = b.conv_bn_act(y, 4, 3, padding=1, act="hardswish", name="b2")
        g = b.finish(y)
        rng = np.random.default_rng(seed)
        feed = rng.normal(size=(batch, 2, 8, 8)).astype(np.float32)
        before = run_graph(g, {"x": feed})[g.output_names[0]]
        fused = fuse_graph(g)
        after = run_graph(fused, {"x": feed})[fused.output_names[0]]
        np.testing.assert_allclose(after, before, rtol=1e-3, atol=1e-5)
