"""Tests for measurement records and report rendering."""

import numpy as np
import pytest

from repro.core import (
    MeasurementRecord,
    current_rss_mb,
    measure_host,
    render_measurements,
    render_target_predictions,
)
from repro.hw import RooflineModel, get_accelerator
from repro.ir import build_model
from repro.runtime import Profiler


@pytest.fixture(scope="module")
def record():
    graph = build_model("mlp", batch=2, in_features=16, hidden=(8,),
                        num_classes=3)
    profile = Profiler(graph).profile(
        {"input": np.zeros((2, 16), dtype=np.float32)}, runs=1, warmup=0)
    rec = measure_host(graph, profile, "fp32", {"accuracy": 0.91})
    model = RooflineModel(get_accelerator("XavierNX"))
    rec.target_predictions = model.sweep_batches(graph)
    return rec


class TestMeasurementRecord:
    def test_fields_populated(self, record):
        assert record.model_name == "mlp"
        assert record.variant == "fp32"
        assert record.host_latency_ms > 0
        assert record.model_size_bytes > 0
        assert record.num_parameters > 0

    def test_quality_summary(self, record):
        assert "accuracy=0.9100" in record.quality_summary()

    def test_rss_positive(self):
        assert current_rss_mb() > 1.0


class TestRendering:
    def test_measurements_table(self, record):
        text = render_measurements([record])
        assert "fp32" in text
        assert "accuracy" in text
        assert len(text.splitlines()) == 3  # header, rule, one row

    def test_target_predictions_table(self, record):
        text = render_target_predictions(record)
        assert "XavierNX" in text
        # One line per batch of the 1/4/8 sweep plus two header lines.
        assert len(text.splitlines()) == 5

    def test_empty_record_list(self):
        text = render_measurements([])
        assert "variant" in text
