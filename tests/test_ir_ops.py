"""Tests for repro.ir.ops: schemas, shape inference, cost accounting."""

import numpy as np
import pytest

from repro.ir.ops import OpCost, get_op, registered_ops
from repro.ir.tensor import DType, ShapeError, TensorSpec


def spec(shape, dtype=DType.FP32, name="t"):
    return TensorSpec(name, shape, dtype)


class TestRegistry:
    def test_core_ops_registered(self):
        names = registered_ops()
        for op in ("conv2d", "dense", "batchnorm", "relu", "softmax",
                   "maxpool2d", "concat", "quantize", "qconv2d",
                   "fused_conv2d"):
            assert op in names

    def test_unknown_op(self):
        with pytest.raises(KeyError, match="nonexistent"):
            get_op("nonexistent")

    def test_arity_check(self):
        with pytest.raises(ShapeError):
            get_op("conv2d").check_arity(1)
        with pytest.raises(ShapeError):
            get_op("conv2d").check_arity(4)

    def test_required_attrs(self):
        with pytest.raises(ValueError, match="kernel"):
            get_op("maxpool2d").check_attrs({})


class TestConvInference:
    def test_output_shape(self):
        out = get_op("conv2d").infer(
            [spec((1, 3, 8, 8)), spec((16, 3, 3, 3))],
            {"stride": 1, "padding": 1})
        assert out[0].shape == (1, 16, 8, 8)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError, match="channel mismatch"):
            get_op("conv2d").infer(
                [spec((1, 4, 8, 8)), spec((16, 3, 3, 3))], {})

    def test_grouped_channels(self):
        out = get_op("conv2d").infer(
            [spec((1, 8, 4, 4)), spec((8, 1, 3, 3))],
            {"groups": 8, "padding": 1})
        assert out[0].shape == (1, 8, 4, 4)

    def test_bad_bias_shape(self):
        with pytest.raises(ShapeError, match="bias"):
            get_op("conv2d").infer(
                [spec((1, 3, 8, 8)), spec((16, 3, 3, 3)), spec((4,))],
                {})

    def test_dtype_propagates(self):
        out = get_op("conv2d").infer(
            [spec((1, 3, 8, 8), DType.FP16), spec((4, 3, 1, 1), DType.FP16)],
            {})
        assert out[0].dtype is DType.FP16


class TestConvCost:
    def test_macs_formula(self):
        inputs = [spec((1, 3, 8, 8)), spec((16, 3, 3, 3))]
        outputs = get_op("conv2d").infer(inputs, {"padding": 1})
        cost = get_op("conv2d").cost(inputs, outputs, {"padding": 1})
        # MACs = out elements * in_c * kh * kw
        assert cost.macs == 16 * 8 * 8 * 3 * 3 * 3
        assert cost.ops == 2 * cost.macs
        assert cost.params == 16 * 3 * 3 * 3

    def test_weight_bytes_excludes_activations(self):
        inputs = [spec((1, 3, 8, 8)), spec((16, 3, 3, 3))]
        outputs = get_op("conv2d").infer(inputs, {"padding": 1})
        cost = get_op("conv2d").cost(inputs, outputs, {"padding": 1})
        assert cost.weight_bytes == 16 * 3 * 3 * 3 * 4
        assert cost.activation_bytes == (3 * 64 + 16 * 64) * 4


class TestDense:
    def test_shape_and_cost(self):
        inputs = [spec((4, 32)), spec((10, 32)), spec((10,))]
        outputs = get_op("dense").infer(inputs, {})
        assert outputs[0].shape == (4, 10)
        cost = get_op("dense").cost(inputs, outputs, {})
        assert cost.macs == 4 * 10 * 32
        assert cost.params == 10 * 32 + 10

    def test_feature_mismatch(self):
        with pytest.raises(ShapeError):
            get_op("dense").infer([spec((4, 31)), spec((10, 32))], {})


class TestElementwise:
    def test_binary_broadcast(self):
        out = get_op("add").infer([spec((2, 3, 1, 1)), spec((2, 3, 4, 4))], {})
        assert out[0].shape == (2, 3, 4, 4)

    def test_binary_dtype_mismatch(self):
        with pytest.raises(ShapeError, match="dtype mismatch"):
            get_op("mul").infer(
                [spec((2,), DType.FP32), spec((2,), DType.FP16)], {})

    def test_activation_preserves_shape(self):
        for op in ("relu", "sigmoid", "hardswish", "mish", "softmax"):
            out = get_op(op).infer([spec((3, 5))], {})
            assert out[0].shape == (3, 5)


class TestShapeOps:
    def test_flatten(self):
        out = get_op("flatten").infer([spec((2, 3, 4, 5))], {})
        assert out[0].shape == (2, 60)

    def test_reshape_with_inference(self):
        out = get_op("reshape").infer([spec((2, 12))], {"shape": (2, 3, -1)})
        assert out[0].shape == (2, 3, 4)

    def test_reshape_two_wildcards(self):
        with pytest.raises(ShapeError, match="at most one"):
            get_op("reshape").infer([spec((2, 12))], {"shape": (-1, -1)})

    def test_reshape_element_mismatch(self):
        with pytest.raises(ShapeError):
            get_op("reshape").infer([spec((2, 12))], {"shape": (5, 5)})

    def test_concat(self):
        out = get_op("concat").infer(
            [spec((1, 3, 4, 4)), spec((1, 5, 4, 4))], {"axis": 1})
        assert out[0].shape == (1, 8, 4, 4)

    def test_concat_rank_mismatch(self):
        with pytest.raises(ShapeError):
            get_op("concat").infer([spec((1, 3)), spec((1, 3, 4))], {})

    def test_concat_nonaxis_mismatch(self):
        with pytest.raises(ShapeError):
            get_op("concat").infer(
                [spec((1, 3, 4, 4)), spec((1, 5, 5, 4))], {"axis": 1})

    def test_pad(self):
        out = get_op("pad").infer([spec((1, 3, 4, 4))],
                                  {"pads": [(0, 0), (0, 0), (1, 2), (1, 1)]})
        assert out[0].shape == (1, 3, 7, 6)

    def test_upsample(self):
        out = get_op("upsample2d").infer([spec((1, 2, 4, 4))], {"scale": 2})
        assert out[0].shape == (1, 2, 8, 8)


class TestQuantOps:
    def test_quantize_dtype(self):
        out = get_op("quantize").infer(
            [spec((2, 3))], {"scale": 0.1, "zero_point": 0,
                             "dtype": DType.INT8})
        assert out[0].dtype is DType.INT8

    def test_quantize_rejects_float_target(self):
        with pytest.raises(ValueError):
            get_op("quantize").infer(
                [spec((2,))], {"scale": 1.0, "zero_point": 0,
                               "dtype": DType.FP16})

    def test_dequantize_returns_fp32(self):
        out = get_op("dequantize").infer(
            [spec((2,), DType.INT8)], {"scale": 0.1, "zero_point": 0})
        assert out[0].dtype is DType.FP32

    def test_qconv_output_dtype(self):
        attrs = {"input_scale": 1, "input_zero_point": 0,
                 "weight_scale": 1, "weight_zero_point": 0,
                 "out_scale": 1, "out_zero_point": 0}
        out = get_op("qconv2d").infer(
            [spec((1, 3, 4, 4), DType.INT8), spec((2, 3, 1, 1), DType.INT8)],
            attrs)
        assert out[0].dtype is DType.INT8


class TestOpCost:
    def test_addition(self):
        a = OpCost(macs=1, ops=2, params=3, activation_bytes=4, weight_bytes=5)
        b = OpCost(macs=10, ops=20, params=30, activation_bytes=40,
                   weight_bytes=50)
        total = a + b
        assert (total.macs, total.ops, total.params) == (11, 22, 33)
        assert total.total_bytes == 99
