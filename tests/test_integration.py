"""Cross-subsystem integration tests: the full VEDLIoT stack wired together."""

import numpy as np
import pytest

from repro.core import DeploymentPipeline, train_readout
from repro.datasets import make_arc_dataset, make_shapes_dataset
from repro.hw import get_accelerator
from repro.ir import build_model, loads, dumps
from repro.optim import deep_compress, fuse_graph, quantize_int8
from repro.runtime import Executor, run_graph
from repro.safety import (
    AuditedDevice,
    AuditPolicy,
    HybridSystem,
    KernelDecision,
    RobustnessService,
    flip_weight_bits,
)
from repro.security import SigningKey, Verifier


class TestToolchainRoundTrips:
    def test_optimize_serialize_deploy(self):
        """Train -> fuse -> quantize -> serialize -> reload -> execute:
        the full interchange loop the ONNX/Kenning combination provides."""
        ds = make_shapes_dataset(160, image_size=32, seed=0)
        train, test = ds.split(0.8, seed=0)
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        trained = train_readout(g, train).graph
        fused = fuse_graph(trained)
        quantized = quantize_int8(fused, [{"input": train.features[:8]}])

        wire = dumps(quantized)
        reloaded = loads(wire)

        x = test.features[:8]
        a = run_graph(quantized, {"input": x})[quantized.output_names[0]]
        b = run_graph(reloaded, {"input": x})[reloaded.output_names[0]]
        np.testing.assert_array_equal(a, b)

    def test_compressed_model_ships_and_runs(self):
        """Deep-compressed weights survive the encode/decode/execute path."""
        g = build_model("mlp", batch=4, in_features=32, hidden=(64,),
                        num_classes=4)
        result = deep_compress(g, prune_fraction=0.8, num_clusters=16)
        x = np.random.default_rng(0).normal(size=(4, 32)).astype(np.float32)
        out = run_graph(result.graph, {"input": x})
        assert out[result.graph.output_names[0]].shape == (4, 4)
        assert result.compression_ratio > 5


class TestSafetySecurityInterplay:
    def test_attested_audit_service(self):
        """The robustness service runs as attested critical code: a device
        is only audited by a service whose enclave passes attestation
        (paper Sec. IV-C: 'secure execution ... of critical code (e.g. for
        monitors)')."""
        from repro.security import Enclave

        reference = build_model("mlp", batch=2, in_features=16,
                                hidden=(12,), num_classes=4, seed=5)
        service = RobustnessService(reference)

        device_key = SigningKey(b"monitor-node")
        enclave = Enclave("robustness-monitor", b"monitor-code-v1",
                          device_key)
        enclave.register_ecall("check", service.check)
        enclave.initialize()

        verifier = Verifier()
        verifier.trust_device(device_key.verifying_key())
        verifier.trust_measurement(enclave.measurement())
        verifier.attest(enclave)  # must pass before devices trust audits

        feeds = {"input": np.random.default_rng(0)
                 .normal(size=(2, 16)).astype(np.float32)}
        outputs = Executor(reference).run(feeds)
        result = enclave.ecall("check", "edge-7", feeds, outputs)
        assert result.consistent
        assert enclave.stats.ecalls == 1

    def test_fault_injection_caught_end_to_end(self):
        """Bitflipped device model -> audit -> quarantine -> hybrid kernel
        serves the failsafe."""
        reference = build_model("mlp", batch=1, in_features=16,
                                hidden=(12,), num_classes=4, seed=6)
        corrupted, _ = flip_weight_bits(reference, num_flips=2,
                                        bit_range=(30, 30), seed=1)
        service = RobustnessService(reference, quarantine_after=1)
        device = AuditedDevice("edge-x", Executor(corrupted), service,
                               AuditPolicy(every_n=1))
        feeds = {"input": np.random.default_rng(1)
                 .normal(size=(1, 16)).astype(np.float32)}
        _, check = device.infer(feeds)
        assert not check.consistent

        def payload(x):
            if service.is_quarantined("edge-x"):
                raise RuntimeError("device quarantined")
            return device.infer(x)[0]

        kernel = HybridSystem(payload, failsafe="safe-stop", deadline_s=1.0)
        step = kernel.step(feeds)
        assert step.decision is KernelDecision.PAYLOAD_ERROR
        assert step.output == "safe-stop"


class TestPipelineOnRecsPlatform:
    def test_urecs_hosts_arc_workload(self):
        """The arc detector deploys onto a uRECS chassis module and meets
        the use case's latency needs on that module's accelerator."""
        from repro.apps.industrial import ArcDetector, run_arc_campaign
        from repro.hw import build_reference_urecs

        chassis = build_reference_urecs()
        fpga_module = next(m for m in chassis.microservers
                           if m.accelerator == "ZynqZU3")

        ds = make_arc_dataset(150, window=128, seed=0)
        g = build_model("arc_net", batch=16, window=128)
        model = train_readout(g, ds).graph.with_batch(1)
        detector = ArcDetector(model, platform=fpga_module.spec)
        stats = run_arc_campaign(detector, num_streams=20, seed=5)
        assert stats.false_negative_rate <= 0.1
        assert stats.mean_latency_s < 0.005
        # And the chassis stays inside its power envelope.
        assert chassis.worst_case_power_w <= chassis.spec.power_budget_w

    def test_pipeline_targets_chassis_module(self):
        """Kenning-style pipeline compiled for an accelerator that is
        actually mounted in a RECS chassis."""
        from repro.hw import build_reference_trecs

        chassis = build_reference_trecs()
        target = chassis.microservers[0].spec
        ds = make_shapes_dataset(120, image_size=32, seed=1)
        g = build_model("tiny_convnet", batch=8, num_classes=4)
        report = DeploymentPipeline(g, ds, target=target,
                                    optimizations=("fuse",),
                                    profile_runs=1).run()
        predictions = report.variant("fp32").target_predictions
        assert predictions and predictions[0].platform == target.name


class TestSimulatorRunsToolchainKernels:
    def test_quantized_dot_product_matches_runtime(self):
        """The simulated CFU computes the same int8 dot product the
        quantized runtime uses — hardware/software co-design agreement."""
        from repro.simulator import Machine, SimdMacCfu, halt_with, RAM_BASE

        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, size=16, dtype=np.int8)
        b = rng.integers(-128, 128, size=16, dtype=np.int8)
        want = int(a.astype(np.int32) @ b.astype(np.int32)) & 0xFFFFFFFF

        machine = Machine(cfu=SimdMacCfu())
        data_a = RAM_BASE + 0x4000
        data_b = RAM_BASE + 0x5000
        machine.load_binary(a.tobytes(), data_a)
        machine.load_binary(b.tobytes(), data_b)
        machine.load_assembly(f"""
            li   t0, {data_a}
            li   t1, {data_b}
            li   t2, 4          # 4 words = 16 int8 lanes
            cfu  zero, zero, zero, 2, 0    # reset accumulator
        loop:
            lw   a0, 0(t0)
            lw   a1, 0(t1)
            cfu  a2, a0, a1, 0, 0          # acc += dot4
            addi t0, t0, 4
            addi t1, t1, 4
            addi t2, t2, -1
            bnez t2, loop
            cfu  a3, zero, zero, 1, 0      # read accumulator
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(13) == want
