"""Tests for the cross-process observability stack (PR 10).

Covers clock alignment (min-RTT midpoint estimate), the flight
recorder (ring semantics, versioned dumps, Chrome siblings), SLO
burn-rate accounting, the span/trace-context wire trailers, and the
replica tier's merged fleet traces in both data planes — including the
crash-restart path (spans in flight when a replica dies must still
merge into a valid trace, and the crash must auto-dump the recorder).
"""

import concurrent.futures
import json
import os
import signal
import time

import pytest

from repro.ir import build_model
from repro.serving import ReplicaEngine, sample_feeds
from repro.serving.metrics import (
    BURN_WINDOWS,
    DEFAULT_SLO_TARGET,
    MetricsRecorder,
)
from repro.serving.replicas import (
    TierRequestTrace,
    _pack_span_block,
    _unpack_span_block,
    _unpack_trace_ctx,
    _TRACE_CTX,
    _TRACE_CTX_MAGIC,
    encode_tensors,
)
from repro.serving.shm import shm_available
from repro.telemetry import (
    ClockSync,
    FlightRecorder,
    Tracer,
    chrome_trace_processes,
    clock_handshake,
    load_flightrec_dump,
    traces_to_chrome,
    validate_chrome_trace,
)


# ---------------------------------------------------------------------------
# clock alignment


class TestClockSync:
    def test_midpoint_offset_math(self):
        sync = ClockSync()
        sample = sync.observe(t_send=10.0, t_child=1000.05, t_recv=10.2)
        assert sample.offset_s == pytest.approx(10.1 - 1000.05)
        assert sample.rtt_s == pytest.approx(0.2)
        assert sync.synced
        assert sync.offset_s == pytest.approx(sample.offset_s)
        assert sync.to_parent(1000.05) == pytest.approx(10.1)

    def test_min_rtt_probe_wins(self):
        sync = ClockSync()
        sync.observe(0.0, 500.0, 0.010)          # rtt 10 ms
        first = sync.offset_s
        sync.observe(1.0, 501.0, 1.002)          # rtt 2 ms -> replaces
        assert sync.rtt_s == pytest.approx(0.002)
        assert sync.offset_s != pytest.approx(first)
        better = sync.offset_s
        sync.observe(2.0, 502.0, 2.050)          # rtt 50 ms -> ignored
        assert sync.offset_s == pytest.approx(better)
        assert sync.rtt_s == pytest.approx(0.002)

    def test_aged_estimate_is_replaced_by_any_probe(self):
        sync = ClockSync(max_age_s=5.0)
        sync.observe(0.0, 500.0, 0.001)          # excellent rtt at t=0
        sync.observe(100.0, 600.0, 100.5)        # poor rtt, but 100 s later
        assert sync.rtt_s == pytest.approx(0.5)

    def test_unsynced_defaults(self):
        sync = ClockSync()
        assert not sync.synced
        assert sync.offset_s == 0.0
        assert sync.rtt_s == float("inf")
        assert sync.to_parent(42.0) == 42.0
        assert sync.stale()

    def test_staleness_schedule(self):
        sync = ClockSync()
        sync.observe(0.0, 0.0, 0.001)
        assert not sync.stale(now=0.001 + 29.0, resync_s=30.0)
        assert sync.stale(now=0.001 + 30.0, resync_s=30.0)

    def test_handshake_recovers_simulated_offset(self):
        # Child clock runs 123.456 s behind the parent's; each probe
        # takes ~0 wall time, so the recovered offset is near-exact.
        child_offset = -123.456

        def probe():
            return time.perf_counter() + child_offset

        sync = clock_handshake(probe, probes=5)
        assert sync.synced
        assert sync.offset_s == pytest.approx(-child_offset,
                                              abs=sync.rtt_s / 2 + 1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockSync(max_age_s=0.0)
        with pytest.raises(ValueError):
            clock_handshake(lambda: 0.0, probes=0)


# ---------------------------------------------------------------------------
# flight recorder


class TestFlightRecorder:
    def test_ring_overwrites_oldest(self):
        rec = FlightRecorder(capacity=4)
        for index in range(10):
            rec.record("tick", index=index)
        assert len(rec) == 4
        events = rec.events()
        assert [event["index"] for event in events] == [6, 7, 8, 9]
        assert [event["seq"] for event in events] == [6, 7, 8, 9]
        assert rec.recorded_total == 10
        # Timestamps and sequence numbers ascend together.
        stamps = [event["ts_s"] for event in events]
        assert stamps == sorted(stamps)

    def test_dump_load_roundtrip_and_chrome_sibling(self, tmp_path):
        rec = FlightRecorder(capacity=16, dump_dir=tmp_path)
        rec.record("admit", priority=1)
        rec.record("shed", reason="queue_full")
        path = rec.dump("unit-test")
        payload = load_flightrec_dump(path)
        assert payload["version"] == 1
        assert payload["reason"] == "unit-test"
        assert payload["pid"] == os.getpid()
        assert [event["kind"] for event in payload["events"]] \
            == ["admit", "shed"]
        assert payload["events"][1]["reason"] == "queue_full"
        assert rec.dump_count == 1
        sibling = path.with_name(path.stem + ".trace.json")
        with open(sibling) as handle:
            chrome = json.load(handle)
        validate_chrome_trace(chrome)
        names = {event["name"] for event in chrome["traceEvents"]
                 if event.get("ph") == "X"}
        assert names == {"admit", "shed"}
        assert chrome_trace_processes(chrome) == {1: "flight-recorder"}

    def test_dump_to_explicit_path(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record("tick")
        target = tmp_path / "nested" / "dump.json"
        assert rec.dump("manual", path=target) == target
        assert load_flightrec_dump(target)["events"][0]["kind"] == "tick"

    def test_load_rejects_malformed(self, tmp_path):
        bad_version = tmp_path / "bad.json"
        bad_version.write_text(json.dumps({"version": 99, "events": []}))
        with pytest.raises(ValueError, match="version"):
            load_flightrec_dump(bad_version)
        bad_event = tmp_path / "event.json"
        bad_event.write_text(json.dumps(
            {"version": 1, "events": [{"kind": "x"}]}))
        with pytest.raises(ValueError, match="seq"):
            load_flightrec_dump(bad_event)

    def test_try_dump_never_raises(self, tmp_path):
        blocked = tmp_path / "file"
        blocked.write_text("not a directory")
        rec = FlightRecorder(capacity=4, dump_dir=blocked / "sub")
        rec.record("tick")
        assert rec.try_dump("crash") is None

    def test_clear(self):
        rec = FlightRecorder(capacity=4)
        rec.record("tick")
        rec.clear()
        assert len(rec) == 0
        assert rec.recorded_total == 1     # history survives clear

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# ---------------------------------------------------------------------------
# SLO burn rate


class TestErrorBudgetBurn:
    def _recorder(self):
        clock = {"now": 1000.0}
        recorder = MetricsRecorder(clock=lambda: clock["now"])
        return recorder, clock

    def test_zero_without_traffic(self):
        recorder, _ = self._recorder()
        assert recorder.error_budget_burn(60.0) == 0.0

    def test_burn_of_one_when_bad_share_equals_budget(self):
        recorder, clock = self._recorder()
        # 99 good completions + 1 failure = exactly the 1% budget of the
        # default 0.99 availability SLO -> burn 1.0.
        recorder.record_batch(99, [0.001] * 99)
        recorder.record_failure(1)
        assert recorder.error_budget_burn(60.0) == pytest.approx(1.0)

    def test_sheds_and_slo_misses_count_as_bad(self):
        recorder, clock = self._recorder()
        recorder.record_batch(8, [0.001] * 8, slo_misses=2)
        recorder.record_shed(2)
        # bad = 2 misses + 2 sheds of 10 events -> 0.4 share.
        expected = 0.4 / (1.0 - DEFAULT_SLO_TARGET)
        assert recorder.error_budget_burn(60.0) == pytest.approx(expected)

    def test_window_excludes_old_events(self):
        recorder, clock = self._recorder()
        recorder.record_failure(5)
        clock["now"] += 120.0                   # failures age out of 1m
        recorder.record_batch(10, [0.001] * 10)
        assert recorder.error_budget_burn(60.0) == 0.0
        assert recorder.error_budget_burn(300.0) == pytest.approx(
            (5 / 15) / (1.0 - DEFAULT_SLO_TARGET))

    def test_validation(self):
        recorder, _ = self._recorder()
        with pytest.raises(ValueError):
            recorder.error_budget_burn(0.0)
        with pytest.raises(ValueError):
            recorder.error_budget_burn(60.0, slo_target=1.0)

    def test_burn_windows_shape(self):
        assert [label for label, _ in BURN_WINDOWS] == ["1m", "5m"]
        assert all(seconds > 0 for _, seconds in BURN_WINDOWS)


# ---------------------------------------------------------------------------
# wire trailers


class TestWireTrailers:
    def test_trace_ctx_roundtrip(self):
        trailer = _TRACE_CTX.pack(_TRACE_CTX_MAGIC, 77)
        assert _unpack_trace_ctx(trailer) == 77

    def test_trace_ctx_absent_or_foreign(self):
        assert _unpack_trace_ctx(b"") is None
        assert _unpack_trace_ctx(b"XY" + b"\x00" * 8) is None
        assert _unpack_trace_ctx(b"Tc") is None     # truncated

    def test_span_block_roundtrip(self):
        timeline = [{"name": "matmul", "op": "matmul",
                     "start": 0.001, "end": 0.004, "thread": 7},
                    {"name": "relu", "op": "relu",
                     "start": 0.004, "end": 0.005, "thread": 8}]
        block = _pack_span_block(42, 10.0, 10.001, 10.006, timeline)
        unpacked = _unpack_span_block(block)
        assert unpacked is not None
        trace_id, recv_t, exec_start, exec_end, steps = unpacked
        assert trace_id == 42
        assert recv_t == pytest.approx(10.0)
        assert exec_start == pytest.approx(10.001)
        assert exec_end == pytest.approx(10.006)
        assert [step["name"] for step in steps] == ["matmul", "relu"]
        assert steps[0]["op"] == "matmul"
        assert steps[0]["start"] == pytest.approx(0.001)
        assert steps[0]["end"] == pytest.approx(0.004)
        assert steps[0]["thread"] == 7

    def test_span_block_absent_on_untraced_payload(self):
        import numpy as np

        payload = encode_tensors({"x": np.ones(3, dtype=np.float32)})
        assert _unpack_span_block(b"") is None
        assert _unpack_span_block(payload[-10:]) is None

    def test_tier_trace_phase_schema(self):
        trace = TierRequestTrace()
        names = [name for name, _, _ in trace._PHASES]
        assert names == ["queue_wait", "slot_wait", "batch_assembly",
                         "dispatch", "finalize"]
        assert trace._STEPS_PHASE == "dispatch"


# ---------------------------------------------------------------------------
# merged fleet traces, end to end


@pytest.fixture(scope="module")
def mlp_graph():
    return build_model("mlp")


@pytest.fixture(scope="module")
def mlp_feeds(mlp_graph):
    return sample_feeds(mlp_graph, seed=3)


def _data_planes():
    planes = [False]
    if shm_available():
        planes.append(True)
    return planes


def _drive(tier, feeds, count):
    futures = [tier.infer(feeds) for _ in range(count)]
    for future in futures:
        future.result(timeout=60)


def _dispatch_window_violations(traces):
    """Spans escaping their parent dispatch window (must be zero)."""
    bad = 0
    for trace in traces:
        root = trace.build_spans()
        dispatch = next((child for child in root.children
                         if child.name == "dispatch"), None)
        if dispatch is None:
            continue
        for replica_span in dispatch.children:
            for span in replica_span.walk():
                if span.start_s < dispatch.start_s - 1e-9 or \
                        span.end_s > dispatch.end_s + 1e-9:
                    bad += 1
    return bad


class TestFleetTracing:
    @pytest.mark.parametrize("shm", _data_planes(),
                             ids=lambda shm: "shm" if shm else "pipe")
    def test_merged_trace_both_data_planes(self, mlp_graph, mlp_feeds,
                                           tmp_path, shm):
        tracer = Tracer(sample_rate=1.0, capacity=256)
        with ReplicaEngine(mlp_graph, replicas=2, max_batch=4,
                           max_latency_ms=5.0, max_inflight=1,
                           queue_limit=64, cache_dir=tmp_path,
                           shm=shm, tracer=tracer) as tier:
            # Coalesce 8 full batches behind the dispatch gate: with a
            # one-batch in-flight budget the dispatcher must overflow
            # onto the second replica while the first executes, so both
            # replicas contribute spans.
            tier._dispatch_gate.clear()
            try:
                futures = [tier.infer(mlp_feeds) for _ in range(32)]
            finally:
                tier._dispatch_gate.set()
            for future in futures:
                future.result(timeout=60)
            offsets = [replica.clock for replica in tier._replicas]
            assert all(clock.synced for clock in offsets)
            assert all(clock.rtt_s < 1.0 for clock in offsets)
        traces = tracer.traces()
        assert len(traces) == 32
        for trace in traces:
            root = trace.build_spans()
            phases = [child.name for child in root.children]
            assert phases == ["queue_wait", "slot_wait",
                              "batch_assembly", "dispatch", "finalize"]
            dispatch = root.children[3]
            assert dispatch.children, "replica spans must merge into " \
                                      "the dispatch phase"
            replica_span = dispatch.children[0]
            assert replica_span.name == "replica_batch"
            assert replica_span.process in ("replica-0", "replica-1")
            assert replica_span.args["batch_size"] >= 1
            execute = replica_span.children[0]
            assert execute.name == "execute"
            assert execute.children, "per-step executor spans expected"
        assert _dispatch_window_violations(traces) == 0
        events = traces_to_chrome(traces)
        validate_chrome_trace({"traceEvents": events})
        tracks = chrome_trace_processes(events)
        assert len(tracks) >= 3
        assert "parent" in tracks.values()
        assert {"replica-0", "replica-1"} <= set(tracks.values())

    def test_untraced_frames_carry_no_spans(self, mlp_graph, mlp_feeds,
                                            tmp_path):
        tracer = Tracer(sample_rate=0.0)
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                           cache_dir=tmp_path, tracer=tracer) as tier:
            _drive(tier, mlp_feeds, 6)
        assert tracer.traces() == []

    def test_slow_request_log_with_phase_breakdown(
            self, mlp_graph, mlp_feeds, tmp_path, caplog):
        tracer = Tracer(sample_rate=1.0, capacity=64)
        with caplog.at_level("WARNING", logger="repro.serving"):
            with ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                               cache_dir=tmp_path, tracer=tracer,
                               slow_request_ms=1e-6) as tier:
                _drive(tier, mlp_feeds, 4)
                assert tier.slow_requests >= 4
        slow_lines = [record.message for record in caplog.records
                      if "slow request" in record.message]
        assert slow_lines
        assert any("dispatch" in line and "slot_wait" in line
                   for line in slow_lines)

    def test_resync_probes_keep_clock_fresh(self, mlp_graph, mlp_feeds,
                                            tmp_path):
        tracer = Tracer(sample_rate=1.0, capacity=64)
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                           cache_dir=tmp_path, tracer=tracer,
                           clock_resync_s=0.0) as tier:
            _drive(tier, mlp_feeds, 8)
            replica = tier._replicas[0]
            deadline = time.monotonic() + 10
            while replica.clock_probes and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not replica.clock_probes   # every probe got answered
            assert replica.clock.synced

    def test_crash_restart_merges_spans_and_dumps_recorder(
            self, mlp_graph, mlp_feeds, tmp_path):
        tracer = Tracer(sample_rate=1.0, capacity=256)
        recorder = FlightRecorder(capacity=512,
                                  dump_dir=tmp_path / "dumps")
        with ReplicaEngine(mlp_graph, replicas=1, max_batch=2,
                           max_latency_ms=5.0, queue_limit=64,
                           restart_limit=2,
                           cache_dir=tmp_path / "cache",
                           tracer=tracer,
                           flight_recorder=recorder) as tier:
            futures = [tier.infer(mlp_feeds) for _ in range(8)]
            os.kill(tier.replica_stats()[0].pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = tier.replica_stats()
                if tier.restarts >= 1 and all(s.alive for s in stats):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("replica was not restarted in time")
            for future in futures:       # crashed or completed; no hang
                try:
                    future.result(timeout=60)
                except Exception:
                    pass
            _drive(tier, mlp_feeds, 4)   # post-restart traffic traces too
        # (a) traces sampled across the crash still merge and validate.
        traces = tracer.traces()
        assert traces
        events = traces_to_chrome(traces)
        validate_chrome_trace({"traceEvents": events})
        assert _dispatch_window_violations(traces) == 0
        # (b) the crash auto-dumped the recorder with the retire event
        # and the admissions leading up to it.
        dumps = sorted((tmp_path / "dumps").glob("flightrec-*.json"))
        dumps = [path for path in dumps
                 if not path.name.endswith(".trace.json")]
        assert dumps, "crash must auto-dump the flight recorder"
        payload = load_flightrec_dump(dumps[0])
        assert "crash" in payload["reason"]
        kinds = [event["kind"] for event in payload["events"]]
        assert "generation_retire" in kinds
        assert "admit" in kinds
        retire = next(event for event in payload["events"]
                      if event["kind"] == "generation_retire")
        assert retire["replica"] == 0
        assert retire["restarting"] is True
        # (c) no shared-memory leak across the crash + close.
        assert tier.shm_segment_names() == []

    def test_breaker_dump_document_shape(self, tmp_path):
        # The breaker path dumps with reason "breaker-trip"; the dump
        # document is the same schema the crash path writes.
        recorder = FlightRecorder(capacity=64, dump_dir=tmp_path)
        recorder.record("breaker_trip", miss_rate=0.9, threshold=0.5)
        path = recorder.dump("breaker-trip")
        payload = load_flightrec_dump(path)
        assert payload["events"][-1]["kind"] == "breaker_trip"
        assert payload["events"][-1]["miss_rate"] == pytest.approx(0.9)


# ---------------------------------------------------------------------------
# registry surface


class TestBurnGaugeExport:
    def test_burn_gauge_rendered_for_live_engine(self, mlp_graph,
                                                 mlp_feeds):
        from repro.serving import InferenceEngine
        from repro.telemetry import render_prometheus

        with InferenceEngine(mlp_graph, max_batch=4) as engine:
            engine.infer_many([mlp_feeds] * 8, timeout=60)
            text = render_prometheus()
        assert 'repro_serving_error_budget_burn{window="1m"}' in text
        assert 'repro_serving_error_budget_burn{window="5m"}' in text
