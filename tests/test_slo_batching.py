"""Tests for SLO-aware adaptive batching: the online latency model,
deadline-driven assembly, priority queues, load shedding, and the
open-loop trace-replay benchmark."""

import json
import time

import numpy as np
import pytest

from repro.ir import build_model
from repro.serving import (
    BatchLatencyModel,
    BatchQueue,
    InferenceEngine,
    InferenceRequest,
    RequestShedError,
    ShedPolicy,
    make_trace,
    render_trace_replay,
    run_trace_replay,
    sample_feeds,
)
from repro.serving.latency_model import model_path


def make_request(value=0.0, deadline_s=None, priority=0):
    request = InferenceRequest(
        feeds={"input": np.full((1, 4), value, dtype=np.float32)},
        priority=priority)
    request.deadline_s = deadline_s
    return request


def warm_model(slope=1e-3, intercept=1e-4, sizes=(1, 2, 4, 8),
               samples=8, **kwargs):
    """A model fitted on exact ``intercept + slope * n`` timings."""
    kwargs.setdefault("min_samples", 1)
    model = BatchLatencyModel(**kwargs)
    for size in sizes:
        for _ in range(samples):
            model.observe(size, intercept + slope * size)
    return model


class TestBatchLatencyModel:
    def test_cold_model_predicts_none(self):
        model = BatchLatencyModel()
        assert model.predict(1) is None
        assert not model.warm()

    def test_fits_linear_timings(self):
        model = warm_model(slope=2e-3, intercept=5e-4, margin=1.0)
        assert model.warm()
        intercept, slope = model.coefficients()
        # Log buckets quantize the observations; the fit must still
        # recover the line to within bucket resolution (x1.41 steps).
        assert slope == pytest.approx(2e-3, rel=0.5)
        predicted = model.predict(4)
        assert predicted == pytest.approx(5e-4 + 2e-3 * 4, rel=0.5)
        # Latency must be non-decreasing in batch size.
        assert model.predict(8) >= model.predict(1)

    def test_margin_inflates_predictions(self):
        tight = warm_model(margin=1.0)
        inflated = warm_model(margin=1.5)
        assert inflated.predict(4) == pytest.approx(
            tight.predict(4) * 1.5)

    def test_single_size_scales_proportionally(self):
        model = warm_model(sizes=(4,), slope=1e-3, intercept=0.0,
                           margin=1.0)
        # Only batch 4 calibrated: predictions scale linearly through
        # the origin (no evidence batching amortizes anything).
        assert model.predict(8) == pytest.approx(model.predict(4) * 2,
                                                 rel=1e-6)

    def test_outlier_does_not_steer_fit(self):
        model = warm_model(slope=1e-3, intercept=0.0, margin=1.0,
                           samples=20)
        clean = model.predict(8)
        model.observe(2, 5.0)              # one GC-mangled timing
        dirty = model.predict(8)
        assert dirty <= clean * 2.0

    def test_garbage_observations_ignored(self):
        model = BatchLatencyModel()
        model.observe(0, 1.0)
        model.observe(1, -1.0)
        model.observe(1, float("nan"))
        assert model.observations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchLatencyModel(quantile=0.0)
        with pytest.raises(ValueError):
            BatchLatencyModel(margin=0.9)
        with pytest.raises(ValueError):
            BatchLatencyModel(min_samples=0)
        with pytest.raises(ValueError):
            BatchLatencyModel().predict(0)

    def test_snapshot_reports_per_size_stats(self):
        model = warm_model(sizes=(1, 4))
        snapshot = model.snapshot()
        assert snapshot["observations"] == 16
        assert set(snapshot["sizes"]) == {1, 4}
        assert snapshot["intercept_ms"] is not None

    def test_persistence_round_trip(self, tmp_path):
        model = warm_model(slope=2e-3, intercept=1e-4, margin=1.3)
        path = tmp_path / "latency" / "key.json"
        model.save(path)
        loaded = BatchLatencyModel.load(path)
        assert loaded is not None
        assert loaded.observations == model.observations
        assert loaded.margin == model.margin
        assert loaded.predict(4) == pytest.approx(model.predict(4))

    def test_load_missing_or_corrupt_returns_none(self, tmp_path):
        assert BatchLatencyModel.load(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert BatchLatencyModel.load(bad) is None
        wrong_version = tmp_path / "version.json"
        wrong_version.write_text(json.dumps({"version": 999}))
        assert BatchLatencyModel.load(wrong_version) is None
        # Valid JSON, mangled counts.
        payload = warm_model().to_dict()
        payload["sizes"]["1"]["counts"] = [1, 2, 3]
        mangled = tmp_path / "mangled.json"
        mangled.write_text(json.dumps(payload))
        assert BatchLatencyModel.load(mangled) is None

    def test_model_path_layout(self, tmp_path):
        path = model_path(tmp_path, "abc123")
        assert path == tmp_path / "latency" / "abc123.json"


class TestAdaptiveAssembly:
    def test_deadline_caps_batch_size(self):
        # cost(n) = 10ms * n; a 25ms deadline admits 2, not 4.
        shed = []
        queue = BatchQueue(max_batch=4, max_latency_s=10.0,
                           cost_model=lambda n: 0.010 * n,
                           on_shed=shed.append, headroom_s=0.0)
        deadline = time.monotonic() + 0.025
        for i in range(4):
            queue.submit(make_request(i, deadline_s=deadline))
        batch = queue.next_batch()
        assert len(batch) == 2
        assert shed == []

    def test_no_deadlines_fills_to_max_batch(self):
        queue = BatchQueue(max_batch=4, max_latency_s=10.0,
                           cost_model=lambda n: 1e-4,
                           on_shed=lambda r: None)
        for i in range(4):
            queue.submit(make_request(i))
        assert len(queue.next_batch()) == 4

    def test_doomed_requests_are_shed_not_executed(self):
        shed = []
        queue = BatchQueue(max_batch=4, max_latency_s=0.05,
                           cost_model=lambda n: 0.050,
                           on_shed=shed.append, headroom_s=0.0)
        doomed = make_request(0, deadline_s=time.monotonic() + 0.001)
        viable = make_request(1, deadline_s=time.monotonic() + 10.0)
        queue.submit(doomed)
        queue.submit(viable)
        batch = queue.next_batch()
        assert batch == [viable]
        assert shed == [doomed]

    def test_cold_model_falls_back_to_fixed_policy(self):
        queue = BatchQueue(max_batch=4, max_latency_s=0.02,
                           cost_model=lambda n: None,
                           on_shed=lambda r: None)
        queue.submit(make_request())
        start = time.monotonic()
        batch = queue.next_batch()
        waited = time.monotonic() - start
        assert len(batch) == 1
        assert waited >= 0.015               # the fixed-knob timer ran

    def test_backlog_dispatches_without_waiting(self):
        # More queued work than one deadline-meeting batch can carry:
        # the full batch must not sit on the arrival timer (the final
        # partial batch still may, bounded by max_latency_s).
        queue = BatchQueue(max_batch=4, max_latency_s=0.05,
                           cost_model=lambda n: 1e-4,
                           on_shed=lambda r: None)
        for i in range(6):
            queue.submit(make_request(i))
        start = time.monotonic()
        first = queue.next_batch()
        full_batch_latency = time.monotonic() - start
        second = queue.next_batch()
        assert full_batch_latency < 0.04     # no timer wait for a full batch
        assert len(first) == 4 and len(second) == 2


class TestPriorities:
    def test_higher_priority_dispatches_first(self):
        queue = BatchQueue(max_batch=2, max_latency_s=0.0)
        low = make_request(0, priority=0)
        high = make_request(1, priority=5)
        queue.submit(low)
        queue.submit(high)
        batch = queue.next_batch()
        assert batch[0] is high and batch[1] is low

    def test_fifo_within_a_priority_class(self):
        queue = BatchQueue(max_batch=4, max_latency_s=0.0)
        requests = [make_request(i, priority=1) for i in range(3)]
        for request in requests:
            queue.submit(request)
        assert queue.next_batch() == requests

    def test_queue_limit_evicts_youngest_lowest_priority(self):
        shed = []
        queue = BatchQueue(max_batch=8, max_latency_s=10.0,
                           queue_limit=2, on_shed=shed.append)
        old_low = make_request(0, priority=0)
        young_low = make_request(1, priority=0)
        queue.submit(old_low)
        queue.submit(young_low)
        high = make_request(2, priority=3)
        queue.submit(high)                   # over the limit: evict
        assert shed == [young_low]           # youngest of the lowest
        assert queue.depth() == 2

    def test_queue_limit_sheds_arrival_when_nothing_outranked(self):
        shed = []
        queue = BatchQueue(max_batch=8, max_latency_s=10.0,
                           queue_limit=1, on_shed=shed.append)
        queued = make_request(0, priority=5)
        queue.submit(queued)
        arrival = make_request(1, priority=0)
        queue.submit(arrival)
        assert shed == [arrival]
        assert queue.depth() == 1


@pytest.fixture(scope="module")
def mlp_graph():
    return build_model("mlp")


@pytest.fixture(scope="module")
def mlp_feeds(mlp_graph):
    return sample_feeds(mlp_graph, seed=3)


class TestEngineShedding:
    def test_shed_error_is_typed_and_recorded(self, mlp_graph, mlp_feeds):
        policy = ShedPolicy(queue_limit=1)
        with InferenceEngine(mlp_graph, workers=1, max_batch=1,
                             shed_policy=policy) as engine:
            futures = [engine.infer(mlp_feeds) for _ in range(24)]
            outcomes = []
            for future in futures:
                try:
                    future.result(timeout=30)
                    outcomes.append("ok")
                except RequestShedError:
                    outcomes.append("shed")
            snapshot = engine.metrics()
        assert outcomes.count("shed") >= 1
        assert snapshot.shed == outcomes.count("shed")
        assert snapshot.shed + snapshot.requests == 24

    def test_miss_rate_breaker_sheds_low_priority(self, mlp_graph,
                                                  mlp_feeds):
        # An impossible SLO makes every completion a miss; once the
        # windowed miss rate trips the breaker, priority-0 arrivals are
        # shed at admission while priority-1 traffic is still served.
        # The warm-up burst runs at priority 1: the breaker may trip
        # mid-burst (completions race the submit loop on a slow box),
        # and it must never touch traffic above shed_priority.
        policy = ShedPolicy(miss_rate_threshold=0.5, shed_priority=0,
                            min_events=4)
        with InferenceEngine(mlp_graph, workers=1, max_batch=4,
                             max_latency_ms=1.0,
                             default_slo_ms=1e-6,
                             shed_policy=policy) as engine:
            engine.infer_many([mlp_feeds] * 8, timeout=30, priority=1)
            assert engine.metrics().slo_misses == 8
            with pytest.raises(RequestShedError):
                engine.infer_sync(mlp_feeds, timeout=30)
            assert engine.metrics().shed >= 1
            # Higher classes ride out the brownout.
            result = engine.infer_sync(mlp_feeds, timeout=30, priority=1)
        assert set(result) != set()

    def test_latency_model_persists_across_engines(self, mlp_graph,
                                                   mlp_feeds, tmp_path):
        from repro.runtime.plan_cache import PlanCache

        cache = PlanCache(tmp_path)
        with InferenceEngine(mlp_graph, workers=1, max_batch=4,
                             adaptive=True, plan_cache=cache) as engine:
            engine.infer_many([mlp_feeds] * 16, timeout=30)
            trained = engine.latency_model.observations
        assert trained > 0
        saved = list((tmp_path / "latency").glob("*.json"))
        assert len(saved) == 1
        with InferenceEngine(mlp_graph, workers=1, max_batch=4,
                             adaptive=True, plan_cache=cache) as engine:
            # Warm start: the calibration came back from disk.
            assert engine.latency_model.observations == trained

    def test_adaptive_results_match_reference(self, mlp_graph, mlp_feeds):
        from repro.runtime import Executor

        reference = Executor(mlp_graph.with_batch(1)).run(mlp_feeds)
        with InferenceEngine(mlp_graph, workers=1, max_batch=8,
                             adaptive=True,
                             default_slo_ms=60_000.0) as engine:
            results = engine.infer_many([mlp_feeds] * 16, timeout=30)
            snapshot = engine.metrics()
        assert snapshot.shed == 0
        assert snapshot.slo_misses == 0
        for result in results:
            for name in reference:
                np.testing.assert_allclose(result[name], reference[name],
                                           rtol=1e-5, atol=1e-6)


class TestTraceReplay:
    def test_make_trace_kinds_and_determinism(self):
        for kind in ("poisson", "bursty", "diurnal"):
            first = make_trace(kind, rate_rps=500, duration_s=1.0, seed=3)
            again = make_trace(kind, rate_rps=500, duration_s=1.0, seed=3)
            assert first == again
            assert all(0 <= t < 1.0 for t in first)
            assert first == sorted(first)
            # Mean-rate normalization: each kind offers roughly the
            # requested load.
            assert 250 <= len(first) <= 1000
        assert make_trace("poisson", 500, 1.0, seed=1) != \
            make_trace("poisson", 500, 1.0, seed=2)

    def test_make_trace_validation(self):
        with pytest.raises(ValueError):
            make_trace("square-wave", 100, 1.0)
        with pytest.raises(ValueError):
            make_trace("poisson", 0, 1.0)
        with pytest.raises(ValueError):
            make_trace("poisson", 100, 0)

    def test_replay_accounts_for_every_request(self, mlp_graph):
        arrivals = make_trace("bursty", rate_rps=400, duration_s=0.5,
                              seed=5)
        result = run_trace_replay(mlp_graph, arrivals, slo_ms=50.0,
                                  trace_name="bursty", adaptive=True,
                                  max_batch=4, warmup=8)
        assert result.offered == len(arrivals)
        assert result.completed + result.shed + result.failed == \
            result.offered
        assert result.slo_met <= result.completed
        assert result.failed == 0
        assert result.mode == "adaptive"
        table = render_trace_replay([result], name="test")
        assert "adaptive" in table and "bursty" in table
