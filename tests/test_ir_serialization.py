"""Tests for repro.ir.serialization: bit-exact model round-trips."""

import json

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.graph import Graph
from repro.ir.serialization import (
    SerializationError,
    dumps,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    loads,
    save_graph,
)
from repro.ir.tensor import DType, TensorSpec


def roundtrip(graph: Graph) -> Graph:
    return loads(dumps(graph))


class TestRoundTrip:
    def test_weights_bit_exact(self):
        g = build_model("mlp", batch=2, in_features=8, hidden=(6,),
                        num_classes=3)
        restored = roundtrip(g)
        assert set(restored.initializers) == set(g.initializers)
        for name, value in g.initializers.items():
            np.testing.assert_array_equal(restored.initializers[name], value)

    def test_structure_preserved(self):
        g = build_model("tiny_convnet", batch=1)
        restored = roundtrip(g)
        assert [n.op_type for n in restored.nodes] == \
            [n.op_type for n in g.nodes]
        assert restored.output_names == g.output_names
        assert restored.inputs == g.inputs

    def test_attrs_preserved(self):
        g = build_model("tiny_convnet", batch=1)
        restored = roundtrip(g)
        for orig, rest in zip(g.nodes, restored.nodes):
            assert orig.attrs.keys() == rest.attrs.keys()

    def test_metadata_preserved(self):
        g = build_model("mlp", batch=1)
        g.metadata["custom"] = {"nested": [1, 2, 3]}
        restored = roundtrip(g)
        assert restored.metadata["custom"] == {"nested": [1, 2, 3]}

    def test_tuple_attrs_roundtrip(self):
        g = Graph("t")
        g.add_input(TensorSpec("x", (1, 2, 8, 8)))
        g.add_node("maxpool2d", ["x"], ["y"], kernel=(2, 2), stride=(2, 2),
                   padding=(0, 0))
        g.set_outputs(["y"])
        restored = roundtrip(g)
        assert restored.nodes[0].attrs["kernel"] == (2, 2)
        assert isinstance(restored.nodes[0].attrs["kernel"], tuple)

    def test_dtype_attr_roundtrip(self):
        g = Graph("q")
        g.add_input(TensorSpec("x", (1, 4)))
        g.add_node("quantize", ["x"], ["y"], scale=np.array([0.1]),
                   zero_point=np.array([3]), dtype=DType.INT8)
        g.set_outputs(["y"])
        restored = roundtrip(g)
        assert restored.nodes[0].attrs["dtype"] is DType.INT8
        np.testing.assert_allclose(restored.nodes[0].attrs["scale"], [0.1])

    def test_int8_initializer_dtype(self):
        g = Graph("i8")
        g.add_input(TensorSpec("x", (1, 2), DType.INT8))
        g.add_initializer("w", np.array([[1, -2]], dtype=np.int8), DType.INT8)
        g.add_node("add", ["x", "w"], ["y"])
        g.set_outputs(["y"])
        restored = roundtrip(g)
        assert restored.initializers["w"].dtype == np.int8
        assert restored.initializer_dtypes["w"] is DType.INT8

    def test_quantized_graph_roundtrip_executes(self):
        from repro.optim import fuse_graph, quantize_int8
        from repro.runtime import run_graph

        rng = np.random.default_rng(0)
        g = build_model("mlp", batch=2, in_features=8, hidden=(6,),
                        num_classes=3)
        x = rng.normal(size=(2, 8)).astype(np.float32)
        gq = quantize_int8(fuse_graph(g), [{"input": x}])
        restored = roundtrip(gq)
        np.testing.assert_array_equal(
            run_graph(gq, {"input": x})[gq.output_names[0]],
            run_graph(restored, {"input": x})[restored.output_names[0]],
        )


class TestFiles:
    def test_save_load(self, tmp_path):
        g = build_model("mlp", batch=1)
        path = save_graph(g, tmp_path / "model.json")
        restored = load_graph(path)
        assert restored.name == g.name
        restored.validate()


class TestErrors:
    def test_wrong_format(self):
        with pytest.raises(SerializationError, match="not a repro-ir"):
            graph_from_dict({"format": "onnx", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(SerializationError, match="version"):
            graph_from_dict({"format": "repro-ir", "version": 99})

    def test_invalid_graph_rejected(self):
        g = build_model("mlp", batch=1)
        data = graph_to_dict(g)
        data["outputs"] = ["not-a-tensor"]
        with pytest.raises(SerializationError, match="invalid"):
            graph_from_dict(data)

    def test_dumps_is_json(self):
        parsed = json.loads(dumps(build_model("mlp", batch=1)))
        assert parsed["format"] == "repro-ir"
