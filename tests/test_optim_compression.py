"""Tests for repro.optim.compression: Huffman, clustering, deep compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import build_model
from repro.optim.compression import (
    BitString,
    HuffmanCode,
    cluster_weights,
    compress_graph,
    decompress_into,
    deep_compress,
    encode_weights,
)
from repro.runtime import run_graph


class TestBitString:
    def test_roundtrip(self):
        bits = BitString("1011001")
        restored = BitString.from_bytes(bits.to_bytes(), len(bits))
        assert "".join(restored) == "1011001"

    def test_append(self):
        bits = BitString()
        bits.append("10")
        bits.append("11")
        assert "".join(bits) == "1011"
        assert len(bits) == 4

    def test_num_bytes_rounds_up(self):
        assert BitString("1" * 9).num_bytes == 2


class TestHuffman:
    def test_roundtrip(self):
        freq = {0: 50, 1: 25, 2: 15, 3: 10}
        code = HuffmanCode(freq)
        symbols = [0, 1, 2, 3, 0, 0, 1]
        decoded = code.decode(code.encode(symbols), len(symbols))
        assert decoded == symbols

    def test_frequent_symbols_shorter(self):
        code = HuffmanCode({0: 1000, 1: 1})
        assert len(code.codebook[0]) <= len(code.codebook[1])

    def test_single_symbol(self):
        code = HuffmanCode({7: 10})
        decoded = code.decode(code.encode([7, 7, 7]), 3)
        assert decoded == [7, 7, 7]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode({})

    def test_mean_bits_at_most_fixed_width(self):
        rng = np.random.default_rng(0)
        counts = {i: int(v) for i, v in
                  enumerate(rng.integers(1, 1000, size=16))}
        code = HuffmanCode(counts)
        assert code.mean_bits_per_symbol(counts) <= 4 + 1e-9

    def test_prefix_free(self):
        code = HuffmanCode({i: i + 1 for i in range(10)})
        codes = list(code.codebook.values())
        for a in codes:
            for b in codes:
                if a != b:
                    assert not b.startswith(a)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, symbols):
        freq = {}
        for s in symbols:
            freq[s] = freq.get(s, 0) + 1
        code = HuffmanCode(freq)
        bits = code.encode(symbols)
        packed = BitString.from_bytes(bits.to_bytes(), len(bits))
        assert code.decode(packed, len(symbols)) == symbols


class TestClustering:
    def test_codebook_size(self):
        rng = np.random.default_rng(0)
        codebook, assignment = cluster_weights(rng.normal(size=500), 16)
        assert len(codebook) == 16
        assert assignment.min() >= 0 and assignment.max() < 16

    def test_constant_input(self):
        codebook, assignment = cluster_weights(np.full(10, 3.0), 8)
        assert len(codebook) == 1
        assert (assignment == 0).all()

    def test_reconstruction_error_decreases_with_clusters(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=2000)
        errs = []
        for k in (4, 16, 64):
            codebook, assignment = cluster_weights(values, k)
            errs.append(np.abs(codebook[assignment] - values).mean())
        assert errs[0] > errs[1] > errs[2]

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=300)
        a = cluster_weights(values, 8)
        b = cluster_weights(values, 8)
        np.testing.assert_array_equal(a[1], b[1])


class TestEncodedLayer:
    def test_decode_matches_clustered_weights(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(size=(32, 16)).astype(np.float32)
        weights[np.abs(weights) < 0.5] = 0.0   # sparse
        layer = encode_weights("w", weights, num_clusters=16)
        decoded = layer.decode()
        # Zeros restored exactly; nonzeros to their cluster centroids.
        assert decoded.shape == weights.shape
        np.testing.assert_array_equal(decoded == 0, weights == 0)
        nz = weights != 0
        assert np.abs(decoded[nz] - weights[nz]).max() < 0.5

    def test_all_zero_tensor(self):
        layer = encode_weights("z", np.zeros((8, 8), dtype=np.float32))
        assert not layer.decode().any()

    def test_compressed_smaller_than_raw_for_sparse(self):
        rng = np.random.default_rng(4)
        weights = rng.normal(size=(64, 64)).astype(np.float32)
        mask = rng.random(weights.shape) < 0.9
        weights[mask] = 0.0
        layer = encode_weights("w", weights, num_clusters=32)
        assert layer.compressed_bytes < weights.nbytes / 8


class TestDeepCompress:
    def test_ratio_and_sparsity(self):
        g = build_model("mlp", batch=1, in_features=64, hidden=(256, 128),
                        num_classes=8)
        result = deep_compress(g, prune_fraction=0.9, num_clusters=32)
        assert result.sparsity == pytest.approx(0.9, abs=0.02)
        assert result.compression_ratio > 15

    def test_compressed_graph_executes(self):
        g = build_model("mlp", batch=2, in_features=32, hidden=(64,),
                        num_classes=4)
        result = deep_compress(g, prune_fraction=0.8)
        out = run_graph(result.graph,
                        {"input": np.zeros((2, 32), dtype=np.float32)})
        assert out[result.graph.output_names[0]].shape == (2, 4)

    def test_decompress_into_round_trips_encoding(self):
        g = build_model("mlp", batch=1, in_features=32, hidden=(64,),
                        num_classes=4)
        model = compress_graph(g, num_clusters=16, min_weights=64)
        restored = decompress_into(g, model)
        for name, layer in model.layers.items():
            np.testing.assert_array_equal(restored.initializers[name],
                                          layer.decode())

    def test_higher_sparsity_higher_ratio(self):
        g = build_model("mlp", batch=1, in_features=64, hidden=(256,),
                        num_classes=8)
        low = deep_compress(g, prune_fraction=0.5).compression_ratio
        high = deep_compress(g, prune_fraction=0.95).compression_ratio
        assert high > low
