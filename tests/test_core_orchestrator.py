"""Tests for the workload orchestrator (distribution middleware)."""

import pytest

from repro.core import (
    ComputeNode,
    Orchestrator,
    Placement,
    PlacementError,
    Workload,
)
from repro.hw import get_accelerator
from repro.ir import build_model


@pytest.fixture(scope="module")
def small_net():
    return build_model("tiny_convnet", batch=1, num_classes=4)


@pytest.fixture(scope="module")
def tiny_net():
    return build_model("arc_net", batch=1)


def make_nodes(*names):
    return [ComputeNode(name.lower(), get_accelerator(name))
            for name in names]


class TestWorkload:
    def test_invalid_parameters(self, small_net):
        with pytest.raises(ValueError):
            Workload("w", small_net, rate_hz=0, max_latency_s=1)
        with pytest.raises(ValueError):
            Workload("w", small_net, rate_hz=1, max_latency_s=0)


class TestComputeNode:
    def test_batch_throughput_curve(self, small_net):
        node = make_nodes("XavierNX")[0]
        curve = node.batch_throughput(small_net, batches=(1, 4, 8))
        assert sorted(curve) == [1, 4, 8]
        assert all(fps > 0 for fps in curve.values())
        # Larger batches never predict lower throughput on the roofline
        # model, and batch 1 matches the scalar predict() path.
        assert curve[1] <= curve[4] <= curve[8]
        assert curve[1] == pytest.approx(node.predict(small_net).fps)


class TestPlacement:
    def test_empty_orchestrator_rejected(self):
        with pytest.raises(ValueError):
            Orchestrator([])

    def test_places_feasibly(self, small_net, tiny_net):
        orchestrator = Orchestrator(make_nodes("ZynqZU3", "XavierNX"))
        placement = orchestrator.place([
            Workload("vision", small_net, rate_hz=15, max_latency_s=0.05),
            Workload("arc", tiny_net, rate_hz=500, max_latency_s=0.002),
        ])
        assert placement.feasible
        assert len(placement.assignments) == 2
        for a in placement.assignments:
            assert a.prediction.latency_s <= a.workload.max_latency_s

    def test_consolidates_to_minimize_idle_power(self, small_net, tiny_net):
        """Two light workloads: one powered node beats two."""
        orchestrator = Orchestrator(make_nodes("ZynqZU3", "i.MX8M"))
        placement = orchestrator.place([
            Workload("a", small_net, rate_hz=5, max_latency_s=0.05),
            Workload("b", tiny_net, rate_hz=5, max_latency_s=0.01),
        ])
        assert len(placement.used_nodes()) == 1

    def test_spreads_when_one_node_saturates(self, tiny_net):
        # Demand sized so a single slow node exceeds 100% utilization.
        slow = ComputeNode("pi", get_accelerator("RPi-CM4"))
        fast = ComputeNode("nx", get_accelerator("XavierNX"))
        orchestrator = Orchestrator([slow, fast])
        heavy = [Workload(f"stream{i}", build_model("tiny_convnet", batch=1,
                                                    num_classes=4, seed=i),
                          rate_hz=400, max_latency_s=0.05)
                 for i in range(2)]
        placement = orchestrator.place(heavy)
        assert placement.feasible
        for node, utilization in placement.node_utilization().items():
            assert utilization <= 1.0

    def test_latency_budget_excludes_slow_nodes(self, small_net):
        orchestrator = Orchestrator(make_nodes("RPi-CM4", "XavierNX"))
        # Budget sits between the Pi's ~0.33 ms and the NX's ~0.23 ms.
        placement = orchestrator.place([
            Workload("tight", small_net, rate_hz=10, max_latency_s=0.0003),
        ])
        assert placement.assignments[0].node.name == "xaviernx"

    def test_unplaceable_workload_raises(self, small_net):
        orchestrator = Orchestrator(make_nodes("RPi-CM4"))
        with pytest.raises(PlacementError, match="fits no healthy node"):
            orchestrator.place([
                Workload("impossible", small_net, rate_hz=1,
                         max_latency_s=1e-9),
            ])

    def test_overload_raises(self, small_net):
        orchestrator = Orchestrator(make_nodes("RPi-CM4"))
        streams = [Workload(f"s{i}", small_net, rate_hz=2000,
                            max_latency_s=0.1) for i in range(2)]
        with pytest.raises(PlacementError):
            orchestrator.place(streams)

    def test_report_renders(self, small_net):
        orchestrator = Orchestrator(make_nodes("XavierNX"))
        placement = orchestrator.place([
            Workload("vision", small_net, rate_hz=10, max_latency_s=0.05)])
        text = placement.report()
        assert "vision" in text and "total platform power" in text

    def test_power_accounting(self, small_net):
        orchestrator = Orchestrator(make_nodes("XavierNX"))
        placement = orchestrator.place([
            Workload("vision", small_net, rate_hz=10, max_latency_s=0.05)])
        a = placement.assignments[0]
        expected = a.node.spec.idle_w + \
            10 * a.prediction.energy_per_inference_j
        assert placement.total_power_w == pytest.approx(expected)


class TestFailover:
    def test_replaces_orphans_only(self, small_net, tiny_net):
        nodes = make_nodes("ZynqZU3", "XavierNX")
        orchestrator = Orchestrator(nodes)
        placement = orchestrator.place([
            Workload("vision", small_net, rate_hz=15, max_latency_s=0.05),
            Workload("arc", tiny_net, rate_hz=100, max_latency_s=0.005),
        ])
        victim = placement.assignment_of("vision").node.name
        survivor_assignments = {
            a.workload.name: a.node.name for a in placement.assignments
            if a.node.name != victim
        }
        recovered = orchestrator.handle_node_failure(placement, victim)
        assert recovered.feasible
        assert all(a.node.name != victim for a in recovered.assignments)
        for name, node in survivor_assignments.items():
            assert recovered.assignment_of(name).node.name == node

    def test_failed_node_never_reused(self, small_net):
        nodes = make_nodes("ZynqZU3", "XavierNX")
        orchestrator = Orchestrator(nodes)
        placement = orchestrator.place([
            Workload("vision", small_net, rate_hz=15, max_latency_s=0.05)])
        victim = placement.assignments[0].node.name
        recovered = orchestrator.handle_node_failure(placement, victim)
        with pytest.raises(PlacementError):
            # Second failure exhausts the pool.
            orchestrator.handle_node_failure(
                recovered, recovered.assignments[0].node.name)

    def test_unaffected_placement_returned_as_is(self, small_net):
        nodes = make_nodes("ZynqZU3", "XavierNX")
        orchestrator = Orchestrator(nodes)
        placement = orchestrator.place([
            Workload("vision", small_net, rate_hz=15, max_latency_s=0.05)])
        used = placement.assignments[0].node.name
        other = next(n.name for n in nodes if n.name != used)
        same = orchestrator.handle_node_failure(placement, other)
        assert same is placement
