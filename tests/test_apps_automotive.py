"""Tests for the PAEB automotive use case."""

import numpy as np
import pytest

from repro.apps.automotive import (
    ChannelSample,
    EdgeStation,
    MobileNetwork,
    OffloadDecisionEngine,
    PaebSimulation,
    braking_deadline_s,
    default_paeb_setup,
)
from repro.hw import get_accelerator
from repro.ir import build_model


@pytest.fixture(scope="module")
def detector():
    """A mid-size stand-in detector: heavy enough that offloading pays."""
    return build_model("tiny_yolo", image_size=416, seed=0)


@pytest.fixture(scope="module")
def engine(detector):
    return OffloadDecisionEngine(
        detector,
        oncar_platform=get_accelerator("JetsonTX2"),
        stations=[EdgeStation("edge-0", get_accelerator("GTX1660"))],
    )


class TestBrakingDeadline:
    def test_monotonically_tightens_with_speed(self):
        deadlines = [braking_deadline_s(v) for v in (20, 40, 60, 80, 100)]
        assert all(a > b for a, b in zip(deadlines, deadlines[1:]))

    def test_never_nonpositive(self):
        assert braking_deadline_s(500) > 0

    def test_longer_sensing_range_relaxes(self):
        assert braking_deadline_s(60, sensing_range_m=100) > \
            braking_deadline_s(60, sensing_range_m=60)


class TestMobileNetwork:
    def test_bandwidth_degrades_with_speed(self):
        net = MobileNetwork(seed=0)
        assert net.mean_bandwidth_mbps(0) > net.mean_bandwidth_mbps(100)

    def test_rtt_grows_with_speed(self):
        net = MobileNetwork(seed=0)
        assert net.mean_rtt_ms(130) > net.mean_rtt_ms(0)

    def test_outage_sampling(self):
        net = MobileNetwork(outage_probability=0.999, seed=0)
        sample = net.sample(50)
        assert not sample.available
        assert sample.uplink_seconds(1000) == float("inf")

    def test_reliability_degrades_with_speed(self):
        net = MobileNetwork(seed=1)
        fast = net.reliability(150, 0.05, 150_000, samples=64)
        slow = net.reliability(10, 0.05, 150_000, samples=64)
        assert slow >= fast

    def test_transfer_time_math(self):
        channel = ChannelSample(bandwidth_mbps=8.0, rtt_ms=20.0,
                                available=True)
        # 100 KB at 8 Mbps = 0.1 s payload + 10 ms half-RTT
        assert channel.uplink_seconds(100_000) == pytest.approx(0.11)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MobileNetwork(base_bandwidth_mbps=0)
        with pytest.raises(ValueError):
            MobileNetwork(outage_probability=1.5)


class TestOffloadDecision:
    def good_channel(self):
        return ChannelSample(bandwidth_mbps=40.0, rtt_ms=20.0,
                             available=True)

    def test_offloads_on_good_network(self, engine):
        option = engine.decide(50, self.good_channel(), reliability=1.0)
        assert option.where == "edge-0"
        assert option.oncar_energy_j < engine.oncar.energy_per_inference_j

    def test_oncar_when_unreliable(self, engine):
        option = engine.decide(50, self.good_channel(), reliability=0.2)
        assert option.where == "oncar"

    def test_oncar_on_outage(self, engine):
        outage = ChannelSample(0.0, float("inf"), False)
        option = engine.decide(50, outage, reliability=0.0)
        assert option.where == "oncar"

    def test_attestation_gates_offload(self, detector):
        engine = OffloadDecisionEngine(
            detector, get_accelerator("JetsonTX2"),
            [EdgeStation("evil-edge", get_accelerator("GTX1660"),
                         attested=False)],
        )
        option = engine.decide(50, self.good_channel(), reliability=1.0)
        assert option.where == "oncar"

    def test_tight_deadline_forces_oncar(self, engine):
        # At very high speed the deadline collapses below network RTT.
        slow_channel = ChannelSample(bandwidth_mbps=2.0, rtt_ms=150.0,
                                     available=True)
        option = engine.decide(140, slow_channel, reliability=1.0)
        assert option.where == "oncar"

    def test_picks_cheapest_feasible_station(self, detector):
        engine = OffloadDecisionEngine(
            detector, get_accelerator("JetsonTX2"),
            [EdgeStation("busy", get_accelerator("GTX1660"),
                         load_factor=50.0),
             EdgeStation("idle", get_accelerator("GTX1660"))],
        )
        option = engine.decide(50, self.good_channel(), reliability=1.0)
        # Both stations cost the car the same radio energy; ties resolve to
        # the first feasible minimum, but the busy one may miss deadline at
        # high load. Just require an edge choice that is feasible.
        assert option.feasible


class TestHysteresis:
    def test_hysteresis_reduces_switching(self, detector):
        def run(hysteresis):
            engine, network = default_paeb_setup(
                detector, oncar="JetsonTX2", edge="GTX1660", seed=3,
                hysteresis=hysteresis)
            engine.min_reliability = 0.5
            sim = PaebSimulation(engine, network)
            rng = np.random.default_rng(0)
            profile = 80 + 30 * rng.random(80)  # noisy mid-speed drive
            return sim.run(profile).switches

        assert run(0.5) <= run(0.0)


class TestDriveSimulation:
    def test_low_speed_drive_offloads_and_saves(self, detector):
        engine, network = default_paeb_setup(detector, seed=0)
        stats = PaebSimulation(engine, network).run([40.0] * 40)
        assert stats.offload_fraction > 0.8
        assert stats.oncar_energy_saving > 0.2
        assert stats.deadline_misses == 0

    def test_extreme_speed_drive_stays_oncar(self, detector):
        engine, network = default_paeb_setup(detector, seed=0)
        stats = PaebSimulation(engine, network).run([150.0] * 20)
        assert stats.offload_fraction == 0.0

    def test_energy_accounting_consistent(self, detector):
        engine, network = default_paeb_setup(detector, seed=1)
        stats = PaebSimulation(engine, network).run([60.0] * 30)
        assert stats.frames == 30
        assert stats.total_energy_j >= stats.oncar_energy_j
