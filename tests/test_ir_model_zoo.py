"""Tests for the model zoo: topology fidelity and published-size checks."""

import pytest

from repro.ir import available_models, build_model


class TestRegistry:
    def test_expected_models_available(self):
        models = available_models()
        for name in ("resnet50", "mobilenet_v3_large", "mobilenet_v3_small",
                     "yolov4", "tiny_convnet", "tiny_yolo", "mlp",
                     "motor_net", "arc_net"):
            assert name in models

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("alexnet")


class TestSmallModels:
    def test_all_small_models_validate(self):
        for name in ("tiny_convnet", "tiny_yolo", "mlp", "motor_net",
                     "arc_net"):
            build_model(name).validate()

    def test_batch_respected(self):
        g = build_model("tiny_convnet", batch=5)
        assert g.inputs[0].shape[0] == 5
        assert g.infer_specs()[g.output_names[0]].shape[0] == 5

    def test_tiny_yolo_head_channels(self):
        g = build_model("tiny_yolo", num_classes=4)
        out = g.infer_specs()[g.output_names[0]]
        assert out.shape[1] == 3 * (5 + 4)

    def test_tiny_yolo_rejects_bad_size(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            build_model("tiny_yolo", image_size=100)

    def test_arc_net_feature_width(self):
        g = build_model("arc_net", window=128)
        assert g.inputs[0].shape == (1, 64)

    def test_motor_net_matches_feature_layout(self):
        from repro.datasets import vibration_features
        import numpy as np

        g = build_model("motor_net", window=256)
        features = vibration_features(np.zeros(256, dtype=np.float32))
        assert g.inputs[0].shape[1:] == (1,) + features.shape

    def test_seed_reproducibility(self):
        import numpy as np

        a = build_model("mlp", seed=3)
        b = build_model("mlp", seed=3)
        for name in a.initializers:
            np.testing.assert_array_equal(a.initializers[name],
                                          b.initializers[name])


@pytest.mark.slow
class TestReferenceModels:
    """Checks against published parameter/compute figures (±10%)."""

    def test_resnet50_size(self):
        g = build_model("resnet50")
        params = g.num_parameters()
        assert 23e6 < params < 28e6          # published: 25.5 M
        macs = g.total_cost().macs
        assert 3.6e9 < macs < 4.5e9          # published: ~4.1 GMACs

    def test_mobilenet_v3_large_size(self):
        g = build_model("mobilenet_v3_large")
        assert 4.8e6 < g.num_parameters() < 6.2e6   # published: 5.4 M
        assert 180e6 < g.total_cost().macs < 260e6  # published: ~219 M

    def test_mobilenet_v3_small_size(self):
        g = build_model("mobilenet_v3_small")
        assert 2.0e6 < g.num_parameters() < 3.1e6   # published: 2.5 M
        assert 45e6 < g.total_cost().macs < 70e6    # published: ~56 M

    def test_yolov4_size_and_heads(self):
        g = build_model("yolov4", image_size=416)
        assert 58e6 < g.num_parameters() < 70e6     # published: ~64 M
        specs = g.infer_specs()
        shapes = [specs[name].shape for name in g.output_names]
        # Three heads at strides 8/16/32 with 3*(5+80)=255 channels.
        assert shapes[0] == (1, 255, 52, 52)
        assert shapes[1] == (1, 255, 26, 26)
        assert shapes[2] == (1, 255, 13, 13)

    def test_yolov4_rejects_bad_size(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            build_model("yolov4", image_size=400)
