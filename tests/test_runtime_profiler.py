"""Tests for repro.runtime.profiler."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.runtime import Profiler, profile_graph


@pytest.fixture(scope="module")
def profiled():
    g = build_model("tiny_convnet", batch=2)
    x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)) \
        .astype(np.float32)
    return g, profile_graph(g, {"input": x}, runs=3, warmup=1)


class TestProfile:
    def test_counts_runs(self, profiled):
        _, result = profiled
        assert result.runs == 3
        assert all(layer.calls == 3 for layer in result.layers)

    def test_latency_positive(self, profiled):
        _, result = profiled
        assert result.mean_latency_seconds > 0
        assert result.total_seconds >= result.mean_latency_seconds

    def test_layer_times_roughly_sum_to_total(self, profiled):
        _, result = profiled
        layer_sum = sum(layer.total_seconds for layer in result.layers)
        assert layer_sum <= result.total_seconds * 1.5
        assert layer_sum >= result.total_seconds * 0.3

    def test_peak_activation_positive(self, profiled):
        _, result = profiled
        assert result.peak_activation_bytes > 0

    def test_peak_is_live_set_not_total_sum(self, profiled):
        """Regression: the peak used to be the monotone sum of every
        output ever produced; it must be the true live-set maximum."""
        from repro.optim import plan_memory

        g, result = profiled
        plan = plan_memory(g)
        assert result.peak_activation_bytes == plan.peak_live_bytes
        assert result.planned_peak_bytes == plan.peak_live_bytes
        naive_sum = sum(layer.output_bytes for layer in result.layers)
        assert result.peak_activation_bytes < naive_sum

    def test_every_node_profiled(self, profiled):
        g, result = profiled
        assert {layer.name for layer in result.layers} == \
            {node.name for node in g.nodes}

    def test_by_op_type_totals(self, profiled):
        _, result = profiled
        totals = result.by_op_type()
        assert "conv2d" in totals
        assert totals["conv2d"] > 0

    def test_report_format(self, profiled):
        _, result = profiled
        text = result.report(top=3)
        assert "mean latency" in text
        assert len(text.splitlines()) == 4

    def test_runs_must_be_positive(self):
        g = build_model("mlp", batch=1)
        with pytest.raises(ValueError):
            Profiler(g).profile({"input": np.zeros((1, 64),
                                                   dtype=np.float32)},
                                runs=0)

    def test_hooks_cleaned_up_after_profile(self, profiled):
        g, _ = profiled
        profiler = Profiler(g)
        x = np.zeros((2, 3, 32, 32), dtype=np.float32)
        profiler.profile({"input": x}, runs=1, warmup=0)
        assert profiler.executor._hooks == []
