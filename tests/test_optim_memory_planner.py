"""Tests for the activation-memory planner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import GraphBuilder, build_model
from repro.optim import (
    Lifetime,
    compute_lifetimes,
    peak_live_bytes,
    plan_memory,
    release_schedule,
    scratchpad_analysis,
)


def chain_graph(widths=(64, 32, 16)):
    """Sequential MLP: lifetimes are strictly nested/disjoint."""
    b = GraphBuilder("chain")
    x = b.input("x", (1, 128))
    for i, width in enumerate(widths):
        x = b.dense(x, width, name=f"fc{i}")
        x = b.relu(x, name=f"r{i}")
    return b.finish(x)


class TestLifetimes:
    def test_chain_lifetimes(self):
        g = chain_graph()
        lifetimes = {lt.tensor: lt for lt in compute_lifetimes(g)}
        # fc0's output is born at node 0 and dies at its relu (node 1).
        fc0_out = g.nodes[0].outputs[0]
        assert lifetimes[fc0_out].birth == 0
        assert lifetimes[fc0_out].death == 1

    def test_graph_output_lives_to_end(self):
        g = chain_graph()
        lifetimes = {lt.tensor: lt for lt in compute_lifetimes(g)}
        assert lifetimes[g.output_names[0]].death == len(g.nodes) - 1

    def test_weights_excluded(self):
        g = chain_graph()
        names = {lt.tensor for lt in compute_lifetimes(g)}
        assert not names & set(g.initializers)
        assert "x" not in names

    def test_residual_extends_lifetime(self):
        b = GraphBuilder("res")
        x = b.input("x", (1, 4, 8, 8))
        y = b.conv2d(x, 4, 1, name="c1")
        z = b.relu(y, name="r")
        z = b.conv2d(z, 4, 1, name="c2")
        merged = b.add(y, z, name="skip")   # y consumed late
        g = b.finish(merged)
        lifetimes = {lt.tensor: lt for lt in compute_lifetimes(g)}
        y_name = g.node_by_name("c1").outputs[0]
        skip_pos = g.nodes.index(g.node_by_name("skip"))
        assert lifetimes[y_name].death == skip_pos

    def test_release_schedule_frees_at_last_use(self):
        g = chain_graph()
        schedule = release_schedule(g)
        assert len(schedule) == len(g.nodes)
        # fc0's output dies at its relu (node 1) and is released there.
        fc0_out = g.nodes[0].outputs[0]
        assert fc0_out in schedule[1]
        # Graph outputs are never released.
        released = {name for names in schedule for name in names}
        assert not released & set(g.output_names)

    def test_release_schedule_accepts_precomputed_lifetimes(self):
        g = chain_graph()
        lifetimes = compute_lifetimes(g)
        assert release_schedule(g, lifetimes) == release_schedule(g)

    def test_peak_live_bytes_simple_chain(self):
        g = chain_graph()
        lifetimes = compute_lifetimes(g)
        peak = peak_live_bytes(lifetimes)
        assert peak == plan_memory(g).peak_live_bytes
        assert 0 < peak <= sum(lt.size_bytes for lt in lifetimes)

    def test_overlap_predicate(self):
        a = Lifetime("a", 4, 0, 2)
        b = Lifetime("b", 4, 2, 5)
        c = Lifetime("c", 4, 3, 5)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestPlan:
    def test_chain_reuses_buffers(self):
        plan = plan_memory(chain_graph())
        assert plan.arena_bytes < plan.naive_bytes
        assert plan.arena_bytes >= plan.peak_live_bytes

    def test_plan_validates_no_overlap(self):
        plan = plan_memory(build_model("tiny_convnet", batch=1))
        plan.validate()  # raises on any live-range collision

    def test_deep_cnn_reuse_factor(self):
        plan = plan_memory(build_model("mobilenet_v3_small", batch=1))
        assert plan.reuse_factor > 5.0
        assert plan.efficiency >= 0.5

    def test_arena_lower_bounded_by_peak_live(self):
        for name in ("tiny_convnet", "mlp", "motor_net"):
            plan = plan_memory(build_model(name, batch=1))
            assert plan.arena_bytes >= plan.peak_live_bytes

    def test_batch_scales_arena(self):
        small = plan_memory(build_model("tiny_convnet", batch=1))
        large = plan_memory(build_model("tiny_convnet", batch=4))
        assert large.arena_bytes == pytest.approx(4 * small.arena_bytes,
                                                  rel=0.05)

    def test_report_renders(self):
        text = plan_memory(chain_graph()).report()
        assert "reuse" in text and "KiB" in text

    @given(st.lists(st.integers(4, 64), min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_property_plan_always_valid(self, widths):
        plan = plan_memory(chain_graph(tuple(widths)))
        plan.validate()
        assert plan.arena_bytes >= plan.peak_live_bytes


class TestScratchpad:
    def test_huge_sram_absorbs_everything(self):
        g = build_model("tiny_convnet", batch=1)
        report = scratchpad_analysis(g, sram_bytes=1 << 30)
        assert report.fits_entirely
        assert report.traffic_saving == 1.0

    def test_zero_sram_spills_everything(self):
        g = build_model("tiny_convnet", batch=1)
        report = scratchpad_analysis(g, sram_bytes=0)
        assert report.traffic_saving == 0.0

    def test_saving_monotonic_in_sram(self):
        g = build_model("mobilenet_v3_small", batch=1)
        savings = [scratchpad_analysis(g, size).traffic_saving
                   for size in (1 << 16, 1 << 18, 1 << 20, 1 << 22)]
        assert all(a <= b + 1e-9 for a, b in zip(savings, savings[1:]))
        assert savings[-1] > savings[0]
