"""Tests for the RV32IM core: ISA semantics, traps, privilege, CSRs."""

import pytest

from repro.simulator import (
    CAUSE_BREAKPOINT,
    CAUSE_ECALL_FROM_M,
    CAUSE_ECALL_FROM_U,
    CAUSE_ILLEGAL_INSTRUCTION,
    CAUSE_LOAD_ACCESS_FAULT,
    Machine,
    PrivilegeMode,
    RAM_BASE,
    halt_with,
)


def run_asm(source, max_steps=10_000, **machine_kwargs):
    machine = Machine(**machine_kwargs)
    machine.load_assembly(source + halt_with(0))
    result = machine.run(max_steps=max_steps)
    assert result.halted, f"did not halt; pc={machine.cpu.pc:#x}"
    return machine


def signed(value):
    return value - (1 << 32) if value & 0x80000000 else value


class TestArithmetic:
    def test_addi_and_add(self):
        m = run_asm("""
            li   a0, 10
            addi a0, a0, 5
            li   a1, -3
            add  a2, a0, a1
        """)
        assert m.cpu.read_reg(12) == 12

    def test_sub_underflow_wraps(self):
        m = run_asm("""
            li   a0, 0
            li   a1, 1
            sub  a2, a0, a1
        """)
        assert m.cpu.read_reg(12) == 0xFFFFFFFF

    def test_slt_signed_vs_unsigned(self):
        m = run_asm("""
            li   a0, -1
            li   a1, 1
            slt  a2, a0, a1     # -1 < 1 signed -> 1
            sltu a3, a0, a1     # 0xffffffff < 1 unsigned -> 0
        """)
        assert m.cpu.read_reg(12) == 1
        assert m.cpu.read_reg(13) == 0

    def test_logic_ops(self):
        m = run_asm("""
            li   a0, 0xF0F0
            li   a1, 0x0FF0
            and  a2, a0, a1
            or   a3, a0, a1
            xor  a4, a0, a1
        """)
        assert m.cpu.read_reg(12) == 0x00F0
        assert m.cpu.read_reg(13) == 0xFFF0
        assert m.cpu.read_reg(14) == 0xFF00

    def test_shifts(self):
        m = run_asm("""
            li   a0, -8
            srai a1, a0, 1      # arithmetic: -4
            srli a2, a0, 1      # logical: big positive
            slli a3, a0, 1      # -16
        """)
        assert signed(m.cpu.read_reg(11)) == -4
        assert m.cpu.read_reg(12) == 0x7FFFFFFC
        assert signed(m.cpu.read_reg(13)) == -16

    def test_lui_auipc(self):
        m = run_asm("lui a0, 0x12345")
        assert m.cpu.read_reg(10) == 0x12345000

    def test_x0_hardwired(self):
        m = run_asm("""
            li   a0, 7
            add  x0, a0, a0
            add  a1, x0, x0
        """)
        assert m.cpu.read_reg(11) == 0


class TestMExtension:
    def test_mul_signed(self):
        m = run_asm("""
            li a0, -7
            li a1, 6
            mul a2, a0, a1
        """)
        assert signed(m.cpu.read_reg(12)) == -42

    def test_mulh_variants(self):
        m = run_asm("""
            li a0, -1
            li a1, -1
            mulh   a2, a0, a1    # (-1 * -1) >> 32 = 0
            mulhu  a3, a0, a1    # (2^32-1)^2 >> 32 = 0xFFFFFFFE
            mulhsu a4, a0, a1    # -1 * (2^32-1) >> 32 = 0xFFFFFFFF
        """)
        assert m.cpu.read_reg(12) == 0
        assert m.cpu.read_reg(13) == 0xFFFFFFFE
        assert m.cpu.read_reg(14) == 0xFFFFFFFF

    def test_div_truncates_toward_zero(self):
        m = run_asm("""
            li a0, -7
            li a1, 2
            div a2, a0, a1
            rem a3, a0, a1
        """)
        assert signed(m.cpu.read_reg(12)) == -3
        assert signed(m.cpu.read_reg(13)) == -1

    def test_div_by_zero_spec_values(self):
        m = run_asm("""
            li a0, 42
            li a1, 0
            div  a2, a0, a1
            divu a3, a0, a1
            rem  a4, a0, a1
            remu a5, a0, a1
        """)
        assert m.cpu.read_reg(12) == 0xFFFFFFFF
        assert m.cpu.read_reg(13) == 0xFFFFFFFF
        assert m.cpu.read_reg(14) == 42
        assert m.cpu.read_reg(15) == 42

    def test_div_overflow(self):
        m = run_asm("""
            li a0, 0x80000000
            li a1, -1
            div a2, a0, a1
            rem a3, a0, a1
        """)
        assert m.cpu.read_reg(12) == 0x80000000
        assert m.cpu.read_reg(13) == 0


class TestMemory:
    def test_word_store_load(self):
        m = run_asm(f"""
            li   a0, {RAM_BASE + 0x1000}
            li   a1, 0xDEADBEEF
            sw   a1, 0(a0)
            lw   a2, 0(a0)
        """)
        assert m.cpu.read_reg(12) == 0xDEADBEEF

    def test_byte_sign_extension(self):
        m = run_asm(f"""
            li   a0, {RAM_BASE + 0x1000}
            li   a1, 0x80
            sb   a1, 0(a0)
            lb   a2, 0(a0)     # sign-extended
            lbu  a3, 0(a0)     # zero-extended
        """)
        assert m.cpu.read_reg(12) == 0xFFFFFF80
        assert m.cpu.read_reg(13) == 0x80

    def test_halfword(self):
        m = run_asm(f"""
            li   a0, {RAM_BASE + 0x1000}
            li   a1, 0x8001
            sh   a1, 2(a0)
            lh   a2, 2(a0)
            lhu  a3, 2(a0)
        """)
        assert m.cpu.read_reg(12) == 0xFFFF8001
        assert m.cpu.read_reg(13) == 0x8001

    def test_unmapped_load_traps(self):
        machine = Machine()
        machine.load_assembly("""
            li   a0, 0x40000000
            lw   a1, 0(a0)
        """)
        # li expands to two instructions; the load is the third.
        machine.run(max_steps=3)
        assert machine.cpu.last_trap_cause == CAUSE_LOAD_ACCESS_FAULT


class TestControlFlow:
    def test_loop_sum(self):
        m = run_asm("""
            li   a0, 0
            li   a1, 100
        loop:
            add  a0, a0, a1
            addi a1, a1, -1
            bnez a1, loop
        """, max_steps=1000)
        assert m.cpu.read_reg(10) == 5050

    def test_branch_variants(self):
        m = run_asm("""
            li a0, 5
            li a1, 5
            li a2, 0
            beq a0, a1, t1
            li a2, 99
        t1:
            li a3, -1
            li a4, 1
            blt a3, a4, t2
            li a2, 98
        t2:
            bltu a3, a4, fail   # unsigned: 0xffffffff > 1, not taken
            j done
        fail:
            li a2, 97
        done:
        """)
        assert m.cpu.read_reg(12) == 0

    def test_jal_links(self):
        m = run_asm("""
            jal  ra, target
            j    done
        target:
            li   a0, 1
            ret
        done:
        """)
        assert m.cpu.read_reg(10) == 1

    def test_call_ret(self):
        m = run_asm("""
            li   a0, 3
            call double
            call double
            j    end
        double:
            add  a0, a0, a0
            ret
        end:
        """)
        assert m.cpu.read_reg(10) == 12


class TestTrapsAndCsrs:
    def test_ecall_from_m(self):
        machine = Machine()
        machine.load_assembly("ecall")
        machine.run(max_steps=1)
        assert machine.cpu.last_trap_cause == CAUSE_ECALL_FROM_M
        assert machine.cpu.csrs[0x341] == RAM_BASE  # mepc

    def test_ebreak(self):
        machine = Machine()
        machine.load_assembly("ebreak")
        machine.run(max_steps=1)
        assert machine.cpu.last_trap_cause == CAUSE_BREAKPOINT

    def test_illegal_instruction(self):
        machine = Machine()
        machine.write_words(RAM_BASE, [0xFFFFFFFF])
        machine.run(max_steps=1)
        assert machine.cpu.last_trap_cause == CAUSE_ILLEGAL_INSTRUCTION

    def test_trap_vectors_to_mtvec(self):
        machine = Machine()
        machine.load_assembly(f"""
            la   t0, handler
            csrw mtvec, t0
            ecall
        hang:
            j hang
        handler:
        """ + halt_with(7))
        result = machine.run(max_steps=100)
        assert result.exit_code == 7

    def test_csr_read_write(self):
        m = run_asm("""
            li    t0, 0x1234
            csrw  mscratch, t0
            csrr  a0, mscratch
            csrrs a1, mscratch, zero    # read, no write
            csrrci a2, mscratch, 4      # clear bit 2
            csrr  a3, mscratch
        """)
        assert m.cpu.read_reg(10) == 0x1234
        assert m.cpu.read_reg(11) == 0x1234
        assert m.cpu.read_reg(13) == 0x1230

    def test_cycle_counter_increments(self):
        m = run_asm("""
            csrr a0, cycle
            nop
            nop
            csrr a1, cycle
        """)
        assert m.cpu.read_reg(11) > m.cpu.read_reg(10)


class TestPrivilege:
    def drop_to_user(self, user_code, trap_handler=halt_with(5)):
        """Boilerplate: set mtvec, drop to U-mode, run user code."""
        return f"""
            la   t0, trap
            csrw mtvec, t0
            la   t0, user
            csrw mepc, t0
            mret
        user:
            {user_code}
            j user_done
        user_done:
        """ + halt_with(0) + """
        trap:
        """ + trap_handler

    def test_mret_enters_user_mode(self):
        machine = Machine()
        machine.load_assembly(self.drop_to_user("nop"))
        machine.run(max_steps=100)
        # halt_with(0) executed from U-mode (no PMP -> allowed)
        assert machine.simctrl.exit_code == 0

    def test_ecall_from_user_cause(self):
        machine = Machine()
        machine.load_assembly(self.drop_to_user("ecall"))
        machine.run(max_steps=100)
        assert machine.cpu.last_trap_cause == CAUSE_ECALL_FROM_U
        assert machine.simctrl.exit_code == 5
        assert machine.cpu.mode is PrivilegeMode.MACHINE

    def test_user_csr_access_is_illegal(self):
        machine = Machine()
        machine.load_assembly(self.drop_to_user("csrw mscratch, zero"))
        machine.run(max_steps=100)
        assert machine.cpu.last_trap_cause == CAUSE_ILLEGAL_INSTRUCTION
        assert machine.simctrl.exit_code == 5

    def test_mret_from_user_is_illegal(self):
        machine = Machine()
        machine.load_assembly(self.drop_to_user("mret"))
        machine.run(max_steps=100)
        assert machine.cpu.last_trap_cause == CAUSE_ILLEGAL_INSTRUCTION
