"""Tests for repro.ir.builder: layer helpers and spec caching."""

import numpy as np
import pytest

from repro.ir.builder import GraphBuilder
from repro.ir.tensor import DType


class TestBasics:
    def test_input_and_constant(self):
        b = GraphBuilder("g")
        x = b.input("x", (1, 3, 8, 8))
        c = b.constant(np.ones(3, dtype=np.float32), name="c")
        assert b.spec(x).shape == (1, 3, 8, 8)
        assert b.spec(c).shape == (3,)

    def test_weight_deterministic_by_seed(self):
        w1 = GraphBuilder(seed=42)
        w2 = GraphBuilder(seed=42)
        a = w1.weight((4, 4), name="w")
        b = w2.weight((4, 4), name="w")
        np.testing.assert_array_equal(w1.graph.initializers[a],
                                      w2.graph.initializers[b])

    def test_different_seeds_differ(self):
        w1 = GraphBuilder(seed=1)
        w2 = GraphBuilder(seed=2)
        a = w1.weight((8, 8))
        b = w2.weight((8, 8))
        assert not np.array_equal(w1.graph.initializers[a],
                                  w2.graph.initializers[b])


class TestLayers:
    def test_conv_shapes(self):
        b = GraphBuilder()
        x = b.input("x", (2, 3, 16, 16))
        y = b.conv2d(x, 8, 3, stride=2, padding=1)
        assert b.spec(y).shape == (2, 8, 8, 8)

    def test_conv_bias_optional(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 4, 4))
        b.conv2d(x, 4, 1, bias=False, name="nb")
        node = b.graph.node_by_name("nb")
        assert len(node.inputs) == 2

    def test_depthwise(self):
        b = GraphBuilder()
        x = b.input("x", (1, 6, 8, 8))
        y = b.depthwise_conv2d(x, 3, padding=1)
        assert b.spec(y).shape == (1, 6, 8, 8)
        weight_name = [n for n in b.graph.nodes][-1].inputs[1]
        assert b.graph.initializers[weight_name].shape == (6, 1, 3, 3)

    def test_groups_must_divide(self):
        b = GraphBuilder()
        x = b.input("x", (1, 6, 8, 8))
        with pytest.raises(ValueError, match="does not divide"):
            b.conv2d(x, 8, 3, groups=4)

    def test_dense_chain(self):
        b = GraphBuilder()
        x = b.input("x", (4, 10))
        y = b.dense(x, 7)
        y = b.relu(y)
        assert b.spec(y).shape == (4, 7)

    def test_batchnorm_params(self):
        b = GraphBuilder()
        x = b.input("x", (1, 5, 4, 4))
        b.batchnorm(x, name="bn")
        node = b.graph.node_by_name("bn")
        assert len(node.inputs) == 5
        gamma = b.graph.initializers[node.inputs[1]]
        assert gamma.shape == (5,)
        assert (gamma > 0).all()  # positive scale for fold stability

    def test_conv_bn_act_block(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        y = b.conv_bn_act(x, 16, 3, padding=1, act="hardswish", name="blk")
        ops = [n.op_type for n in b.graph.nodes]
        assert ops == ["conv2d", "batchnorm", "hardswish"]
        assert b.spec(y).shape == (1, 16, 8, 8)

    def test_pool_defaults_stride_to_kernel(self):
        b = GraphBuilder()
        x = b.input("x", (1, 2, 8, 8))
        y = b.maxpool2d(x, 2)
        assert b.spec(y).shape == (1, 2, 4, 4)

    def test_concat_and_add(self):
        b = GraphBuilder()
        x = b.input("x", (1, 2, 4, 4))
        y = b.conv2d(x, 2, 1)
        merged = b.concat([x, y], axis=1)
        assert b.spec(merged).shape == (1, 4, 4, 4)
        summed = b.add(x, y)
        assert b.spec(summed).shape == (1, 2, 4, 4)


class TestSpecCache:
    def test_cache_matches_full_inference(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 16, 16))
        y = b.conv_bn_act(x, 8, 3, padding=1)
        y = b.maxpool2d(y, 2)
        y = b.flatten(y)
        y = b.dense(y, 10)
        g = b.finish(y)
        full = g.infer_specs()
        for name, cached in b._specs.items():
            assert full[name].shape == cached.shape
            assert full[name].dtype == cached.dtype


class TestFinish:
    def test_finish_validates(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4))
        y = b.dense(x, 2)
        g = b.finish(y)
        assert g.output_names == [y]

    def test_finish_multiple_outputs(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4))
        y1 = b.dense(x, 2, name="d1")
        y2 = b.dense(x, 3, name="d2")
        g = b.finish([y1, y2])
        assert len(g.output_names) == 2
