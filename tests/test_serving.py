"""Tests for repro.serving: micro-batching queue, engine, metrics, bench."""

import threading
import time

import numpy as np
import pytest

from repro.ir import build_model
from repro.runtime import Executor
from repro.serving import (
    BatchQueue,
    EngineClosedError,
    InferenceEngine,
    InferenceRequest,
    MetricsRecorder,
    QueueClosedError,
    check_sample,
    percentile,
    run_bench,
    sample_feeds,
)
from repro.serving.bench import render


def make_request(value=0.0, shape=(1, 4)):
    return InferenceRequest(feeds={"input": np.full(shape, value,
                                                    dtype=np.float32)})


class TestBatchQueue:
    def test_coalesces_up_to_max_batch(self):
        queue = BatchQueue(max_batch=4, max_latency_s=10.0)
        for i in range(6):
            queue.submit(make_request(i))
        first = queue.next_batch()
        second = queue.next_batch()
        assert len(first) == 4 and len(second) == 2
        assert queue.depth() == 0

    def test_deadline_dispatches_partial_batch(self):
        queue = BatchQueue(max_batch=8, max_latency_s=0.02)
        queue.submit(make_request())
        start = time.monotonic()
        batch = queue.next_batch()
        waited = time.monotonic() - start
        assert len(batch) == 1
        assert waited >= 0.015

    def test_batch_one_skips_deadline_wait(self):
        queue = BatchQueue(max_batch=1, max_latency_s=10.0)
        queue.submit(make_request())
        start = time.monotonic()
        assert len(queue.next_batch()) == 1
        assert time.monotonic() - start < 1.0

    def test_submit_after_close_raises(self):
        queue = BatchQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.submit(make_request())

    def test_next_batch_returns_none_when_closed_and_empty(self):
        queue = BatchQueue()
        results = []

        def consumer():
            results.append(queue.next_batch())

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert results == [None]

    def test_close_releases_blocked_deadline_wait(self):
        queue = BatchQueue(max_batch=8, max_latency_s=30.0)
        queue.submit(make_request())
        results = []

        def consumer():
            results.append(queue.next_batch())

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert len(results) == 1 and len(results[0]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchQueue(max_batch=0)
        with pytest.raises(ValueError):
            BatchQueue(max_latency_s=-1.0)
        with pytest.raises(ValueError):
            BatchQueue(queue_limit=0, on_shed=lambda r: None)
        with pytest.raises(ValueError):
            BatchQueue(queue_limit=4)       # queue_limit needs on_shed


class TestBatchQueueDeadlineEdges:
    def test_max_latency_zero_dispatches_immediately(self):
        # The fast path: no timer, whatever is queued goes at once.
        queue = BatchQueue(max_batch=8, max_latency_s=0.0)
        for i in range(3):
            queue.submit(make_request(i))
        start = time.monotonic()
        batch = queue.next_batch()
        assert len(batch) == 3
        assert time.monotonic() - start < 0.5

    def test_submit_after_close_raises_typed_error(self):
        queue = BatchQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit(make_request())

    def test_burst_arriving_at_deadline_expiry_is_not_lost(self):
        # Requests landing exactly as the oldest request's timer fires
        # must end up in this dispatch or the next one — never dropped.
        queue = BatchQueue(max_batch=8, max_latency_s=0.05)
        served = []
        done = threading.Event()

        def consumer():
            while True:
                batch = queue.next_batch()
                if batch is None:
                    return
                served.extend(batch)
                if len(served) >= 8:
                    done.set()
                    queue.close()

        thread = threading.Thread(target=consumer)
        queue.submit(make_request())
        thread.start()
        time.sleep(0.05)                     # the oldest's deadline
        for i in range(7):
            queue.submit(make_request(i))
        assert done.wait(timeout=5)
        thread.join(timeout=5)
        assert len(served) == 8
        assert queue.depth() == 0

    def test_close_during_adaptive_deadline_wait_flushes_request(self):
        # A request parked in the adaptive wait-for-more-arrivals state
        # must be dispatched (not stranded) when the queue closes.
        shed = []
        queue = BatchQueue(max_batch=8, max_latency_s=30.0,
                           cost_model=lambda n: 1e-4,
                           on_shed=shed.append)
        request = make_request()
        request.deadline_s = time.monotonic() + 10.0
        queue.submit(request)
        results = []

        def consumer():
            results.append(queue.next_batch())

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert len(results) == 1 and results[0] is not None
        assert len(results[0]) == 1
        assert shed == []


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = sorted([1.0, 2.0, 3.0, 4.0])
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile([], 50) == 0.0

    def test_recorder_snapshot(self):
        recorder = MetricsRecorder()
        recorder.record_batch(4, [0.001, 0.002, 0.003, 0.004])
        recorder.record_batch(1, [0.010])
        recorder.record_failure(2)
        snapshot = recorder.snapshot(queue_depth=3)
        assert snapshot.requests == 5
        assert snapshot.batches == 2
        assert snapshot.failures == 2
        assert snapshot.queue_depth == 3
        assert snapshot.batch_histogram == {4: 1, 1: 1}
        assert snapshot.mean_batch == pytest.approx(2.5)
        assert snapshot.p99_ms == pytest.approx(10.0)
        assert "requests 5" in snapshot.report()


@pytest.fixture(scope="module")
def mlp_graph():
    return build_model("mlp")


@pytest.fixture(scope="module")
def mlp_feeds(mlp_graph):
    return sample_feeds(mlp_graph, seed=3)


class TestInferenceEngine:
    def test_single_request_matches_direct_executor(self, mlp_graph,
                                                    mlp_feeds):
        reference = Executor(mlp_graph.with_batch(1)).run(mlp_feeds)
        with InferenceEngine(mlp_graph, workers=1, max_batch=1) as engine:
            got = engine.infer_sync(mlp_feeds, timeout=10)
        assert set(got) == set(reference)
        for name in reference:
            assert got[name].dtype == reference[name].dtype
            np.testing.assert_allclose(got[name], reference[name],
                                       rtol=1e-5, atol=1e-6)

    def test_burst_is_batched_and_results_match(self, mlp_graph, mlp_feeds):
        reference = Executor(mlp_graph.with_batch(1)).run(mlp_feeds)
        with InferenceEngine(mlp_graph, workers=1, max_batch=8,
                             max_latency_ms=50.0) as engine:
            results = engine.infer_many([mlp_feeds] * 16, timeout=10)
            snapshot = engine.metrics()
        assert len(results) == 16
        for result in results:
            for name in reference:
                np.testing.assert_allclose(result[name], reference[name],
                                           rtol=1e-5, atol=1e-6)
        assert snapshot.requests == 16
        assert snapshot.mean_batch > 1.0          # coalescing happened
        assert max(snapshot.batch_histogram) > 1

    def test_adaptive_path_is_bitwise_identical_to_fixed(self, mlp_graph,
                                                         mlp_feeds):
        # The semantics bar extended to SLO-aware batching: for the same
        # batch composition, an admitted request's outputs must be
        # bit-for-bit what the fixed-knob engine produces.  Both engines
        # are forced into one deterministic batch of 4 (huge timer, 4
        # submissions, generous deadline; the adaptive model is
        # pre-warmed so the deadline-aware policy — not the cold-model
        # fallback — does the assembly).
        from repro.serving import BatchLatencyModel

        def run(adaptive):
            model = None
            if adaptive:
                model = BatchLatencyModel(min_samples=1)
                for size in (1, 2, 4):
                    for _ in range(8):
                        model.observe(size, 1e-5 * size)
            with InferenceEngine(mlp_graph, workers=1, max_batch=4,
                                 max_latency_ms=5000.0,
                                 adaptive=adaptive,
                                 latency_model=model) as engine:
                futures = [engine.infer(mlp_feeds, slo_ms=60_000.0)
                           for _ in range(4)]
                results = [future.result(timeout=30) for future in futures]
                histogram = engine.metrics().batch_histogram
            return results, histogram

        fixed_results, fixed_hist = run(adaptive=False)
        adaptive_results, adaptive_hist = run(adaptive=True)
        # Same composition (one batch of 4) on both paths...
        assert fixed_hist == {4: 1}
        assert adaptive_hist == {4: 1}
        # ...therefore bitwise-identical outputs.
        for fixed, got in zip(fixed_results, adaptive_results):
            assert set(fixed) == set(got)
            for name in fixed:
                assert fixed[name].dtype == got[name].dtype
                np.testing.assert_array_equal(fixed[name], got[name])

    def test_light_load_degrades_to_batch_one(self, mlp_graph, mlp_feeds):
        with InferenceEngine(mlp_graph, workers=1, max_batch=8,
                             max_latency_ms=1.0) as engine:
            for _ in range(3):
                engine.infer_sync(mlp_feeds, timeout=10)
                time.sleep(0.01)
            snapshot = engine.metrics()
        assert snapshot.batch_histogram.get(1, 0) >= 3

    def test_steady_state_is_allocation_free(self, mlp_graph, mlp_feeds):
        with InferenceEngine(mlp_graph, workers=1, max_batch=4,
                             max_latency_ms=20.0) as engine:
            engine.infer_many([mlp_feeds] * 8, timeout=10)   # warmup
            before = engine.metrics()
            engine.infer_many([mlp_feeds] * 8, timeout=10)
            after = engine.metrics()
        assert after.arena_allocations == before.arena_allocations
        assert after.arena_large_allocations == before.arena_large_allocations
        assert after.arena_reuses > before.arena_reuses

    def test_shape_and_name_validation(self, mlp_graph, mlp_feeds):
        with InferenceEngine(mlp_graph, workers=1, max_batch=1) as engine:
            with pytest.raises(ValueError, match="missing feed"):
                engine.infer({})
            bad = {name: np.concatenate([arr, arr], axis=0)
                   for name, arr in mlp_feeds.items()}
            with pytest.raises(ValueError, match="shape"):
                engine.infer(bad)
            with pytest.raises(ValueError, match="unknown feed"):
                engine.infer({**mlp_feeds, "bogus": np.zeros(3)})

    def test_submit_after_close_raises(self, mlp_graph, mlp_feeds):
        engine = InferenceEngine(mlp_graph, workers=1, max_batch=1)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.infer(mlp_feeds)
        engine.close()                            # idempotent

    def test_execution_error_propagates_to_futures(self, mlp_graph,
                                                   mlp_feeds,
                                                   monkeypatch):
        engine = InferenceEngine(mlp_graph, workers=1, max_batch=2,
                                 max_latency_ms=20.0)
        try:
            def explode(self, feeds):
                raise RuntimeError("kernel exploded")

            monkeypatch.setattr(Executor, "run", explode)
            futures = [engine.infer(mlp_feeds) for _ in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="kernel exploded"):
                    future.result(timeout=10)
            assert engine.metrics().failures == 2
        finally:
            monkeypatch.undo()
            engine.close()

    def test_worker_pool_serves_concurrent_clients(self, mlp_graph,
                                                   mlp_feeds):
        with InferenceEngine(mlp_graph, workers=2, max_batch=2,
                             max_latency_ms=1.0) as engine:
            errors = []

            def client():
                try:
                    for _ in range(5):
                        engine.infer_sync(mlp_feeds, timeout=10)
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            snapshot = engine.metrics()
        assert not errors
        assert snapshot.requests == 20
        assert snapshot.failures == 0


class TestEngineShutdownRaces:
    def test_queue_closed_race_surfaces_typed_error(self, mlp_graph,
                                                    mlp_feeds):
        # Deterministic replay of the submit-vs-close race window: the
        # engine's _closed flag is still False but the queue is already
        # closed.  Submitting must surface EngineClosedError, never the
        # queue's internal QueueClosedError (or a bare RuntimeError).
        engine = InferenceEngine(mlp_graph, workers=1, max_batch=1)
        try:
            engine.queue.close()
            with pytest.raises(EngineClosedError):
                engine.infer(mlp_feeds)
        finally:
            engine.close()

    def test_queue_submit_raises_typed_error(self):
        queue = BatchQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit(make_request())
        assert issubclass(QueueClosedError, RuntimeError)

    def test_submit_vs_close_stress_every_future_resolves(self, mlp_graph,
                                                          mlp_feeds):
        # 100 consecutive engine lifetimes with a client submitting
        # concurrently with close(): every accepted future must resolve
        # (result or EngineClosedError) — nothing hangs, nothing leaks a
        # bare RuntimeError.
        for _ in range(100):
            engine = InferenceEngine(mlp_graph, workers=1, max_batch=2,
                                     max_latency_ms=0.5)
            futures = []
            started = threading.Barrier(2)

            def client():
                started.wait()
                for _ in range(8):
                    try:
                        futures.append(engine.infer(mlp_feeds))
                    except EngineClosedError:
                        return

            thread = threading.Thread(target=client)
            thread.start()
            started.wait()
            engine.close(timeout=10)
            thread.join(timeout=10)
            assert not thread.is_alive()
            for future in futures:
                try:
                    result = future.result(timeout=10)
                except EngineClosedError:
                    continue
                assert set(result) == {
                    name for name in mlp_graph.output_names}

    def test_close_counts_drained_requests_as_failures(self, mlp_graph,
                                                       mlp_feeds):
        engine = InferenceEngine(mlp_graph, workers=1, max_batch=1,
                                 max_latency_ms=1.0)
        captured = []

        class CapturingPool:
            def submit(self, task):
                captured.append(task)

        # The captured task never runs, so the dispatcher's only worker
        # slot stays held and every later request is stuck in the queue:
        # close() must drain those as *counted* failures.
        engine._pool = CapturingPool()
        blocker = engine.infer(mlp_feeds)
        deadline = time.monotonic() + 5
        while not captured and time.monotonic() < deadline:
            time.sleep(0.01)
        assert captured
        queued = [engine.infer(mlp_feeds) for _ in range(3)]
        engine.close(timeout=0.5)
        for future in queued:
            with pytest.raises(EngineClosedError):
                future.result(timeout=10)
        snapshot = engine.metrics()
        assert snapshot.failures == 3
        assert snapshot.failure_rate > 0.0
        # Run the stranded batch: the slot releases and its request
        # completes normally (close never abandoned it).
        captured[0]()
        assert blocker.result(timeout=10)

    def test_pool_submit_failure_releases_slot(self, mlp_graph, mlp_feeds):
        engine = InferenceEngine(mlp_graph, workers=1, max_batch=1)

        class RejectingPool:
            def submit(self, task):
                raise RuntimeError("pool rejected task")

        engine._pool = RejectingPool()
        future = engine.infer(mlp_feeds)
        with pytest.raises(RuntimeError, match="pool rejected task"):
            future.result(timeout=10)
        assert engine.metrics().failures == 1
        # A leaked permit would stall the slot drain below for the full
        # timeout; with the release in place close() returns promptly.
        start = time.monotonic()
        engine.close(timeout=10)
        assert time.monotonic() - start < 5
        assert engine._slots.acquire(timeout=1)   # permit survived
        engine._slots.release()


class TestFeedAliasing:
    def test_check_sample_never_aliases_caller_arrays(self, mlp_graph,
                                                      mlp_feeds):
        specs = {spec.name: spec
                 for spec in mlp_graph.with_batch(1).inputs}
        owned = check_sample(specs, mlp_feeds)
        for name, raw in mlp_feeds.items():
            # Same dtype means astype(copy=False) would alias; the
            # pipeline must own its inputs regardless.
            assert not np.shares_memory(owned[name], raw)
        # Conversion path still converts.
        as_f64 = {name: array.astype(np.float64)
                  for name, array in mlp_feeds.items()}
        converted = check_sample(specs, as_f64)
        for name, spec in specs.items():
            assert converted[name].dtype == spec.dtype.to_numpy()

    def test_mutating_feed_after_infer_keeps_batch_intact(self, mlp_graph,
                                                          mlp_feeds):
        reference = Executor(mlp_graph.with_batch(1)).run(mlp_feeds)
        with InferenceEngine(mlp_graph, workers=1, max_batch=2,
                             max_latency_ms=500.0) as engine:
            victim = {name: array.copy()
                      for name, array in mlp_feeds.items()}
            first = engine.infer(victim)
            # The request now waits for its batch to fill; a caller
            # reusing its buffer must not corrupt it.
            for array in victim.values():
                array.fill(1e6)
            second = engine.infer(mlp_feeds)
            for result in (first.result(timeout=10),
                           second.result(timeout=10)):
                for name in reference:
                    np.testing.assert_allclose(
                        result[name], reference[name],
                        rtol=1e-5, atol=1e-6)


class TestBench:
    def test_run_bench_and_render(self, mlp_graph):
        rows = run_bench(mlp_graph, configs=[(1, 1), (1, 4)], requests=8,
                         warmup=2)
        assert len(rows) == 2
        assert all(row.requests == 8 for row in rows)
        assert all(row.throughput_rps > 0 for row in rows)
        table = render(rows, name="mlp")
        assert "serve-bench: mlp" in table
        assert "req/s" in table
