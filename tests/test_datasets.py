"""Tests for the synthetic data substrate."""

import numpy as np
import pytest

from repro.datasets import (
    ARC_CLASSES,
    MOTOR_CLASSES,
    LabeledDataset,
    arc_features,
    dc_current_window,
    make_arc_dataset,
    make_detection_scenes,
    make_motor_dataset,
    make_shapes_dataset,
    motor_vibration_window,
    vibration_features,
)
from repro.datasets.audio import (
    KEYWORD_CLASSES,
    audio_features,
    keyword_waveform,
    make_keyword_dataset,
)
from repro.datasets.images import Box


class TestLabeledDataset:
    def make(self, n=20):
        rng = np.random.default_rng(0)
        return LabeledDataset("d", rng.normal(size=(n, 4)),
                              rng.integers(0, 3, n), ("a", "b", "c"))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LabeledDataset("d", np.zeros((3, 2)), np.zeros(4, dtype=int),
                           ("x",))

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LabeledDataset("d", np.zeros((2, 2)), np.array([0, 5]), ("x",))

    def test_split_disjoint_and_complete(self):
        ds = self.make(50)
        train, test = ds.split(0.8, seed=1)
        assert len(train) == 40 and len(test) == 10
        combined = np.concatenate([train.features, test.features])
        assert combined.shape == ds.features.shape

    def test_split_deterministic(self):
        ds = self.make(30)
        a1, _ = ds.split(0.5, seed=7)
        a2, _ = ds.split(0.5, seed=7)
        np.testing.assert_array_equal(a1.features, a2.features)

    def test_batches(self):
        ds = self.make(10)
        batches = list(ds.batches(4))
        assert [len(x) for x, _ in batches] == [4, 4, 2]
        assert [len(x) for x, _ in ds.batches(4, drop_last=True)] == [4, 4]

    def test_class_balance(self):
        ds = self.make(30)
        balance = ds.class_balance()
        assert sum(balance.values()) == 30

    def test_subset(self):
        ds = self.make(10)
        sub = ds.subset([0, 2, 4])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.features[1], ds.features[2])


class TestShapes:
    def test_structure(self):
        ds = make_shapes_dataset(40, image_size=24)
        assert ds.sample_shape == (3, 24, 24)
        assert ds.num_classes == 4
        assert ds.features.dtype == np.float32

    def test_deterministic_by_seed(self):
        a = make_shapes_dataset(10, seed=3)
        b = make_shapes_dataset(10, seed=3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_classes_visually_distinct(self):
        """Mean per-class images must differ — the classes carry signal."""
        ds = make_shapes_dataset(200, image_size=24, noise=0.05)
        means = [ds.features[ds.labels == c].mean(axis=0)
                 for c in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.abs(means[i] - means[j]).mean() > 0.01


class TestDetectionScenes:
    def test_scene_structure(self):
        scenes = make_detection_scenes(10, image_size=64, max_objects=2)
        assert len(scenes) == 10
        for scene in scenes:
            assert scene.image.shape == (3, 64, 64)
            assert 1 <= len(scene.boxes) <= 2
            for box in scene.boxes:
                assert 0 <= box.x0 < box.x1 <= 64
                assert 0 <= box.y0 < box.y1 <= 64

    def test_box_iou(self):
        a = Box(0, 0, 10, 10, 0)
        assert a.iou(Box(0, 0, 10, 10, 0)) == 1.0
        assert a.iou(Box(20, 20, 30, 30, 0)) == 0.0
        assert a.iou(Box(5, 0, 15, 10, 0)) == pytest.approx(1 / 3)


class TestVibration:
    def test_window_shapes(self):
        for state in MOTOR_CLASSES:
            signal = motor_vibration_window(state, window=256)
            assert signal.shape == (256,)
            assert signal.dtype == np.float32

    def test_unknown_state(self):
        with pytest.raises(ValueError):
            motor_vibration_window("exploded")

    def test_fault_states_separable_in_features(self):
        rng = np.random.default_rng(0)
        healthy = np.mean([vibration_features(
            motor_vibration_window("healthy", rng=rng))
            for _ in range(20)], axis=0)
        faulty = np.mean([vibration_features(
            motor_vibration_window("bearing_fault", rng=rng))
            for _ in range(20)], axis=0)
        # Bearing faults put energy in high bands that healthy motors lack.
        assert np.abs(healthy - faulty).max() > 0.5

    def test_dataset_balanced(self):
        ds = make_motor_dataset(25, window=256)
        assert len(ds) == 100
        assert set(ds.class_balance().values()) == {25}
        assert ds.sample_shape == (1, 8, 16)


class TestArcs:
    def test_window_generation(self):
        rng = np.random.default_rng(0)
        normal = dc_current_window(False, rng=rng)
        arcing = dc_current_window(True, arc_start=0, rng=rng)
        assert normal.shape == arcing.shape == (128,)
        # Arcs add broadband noise: higher variance.
        assert arcing.std() > normal.std()

    def test_arc_start_respected(self):
        rng = np.random.default_rng(1)
        signal = dc_current_window(True, window=256, arc_start=128, rng=rng)
        assert signal[:128].std() < signal[128:].std()

    def test_features_length(self):
        assert arc_features(np.zeros(128, dtype=np.float32)).shape == (64,)

    def test_dataset_classes(self):
        ds = make_arc_dataset(10)
        assert ds.class_names == ARC_CLASSES
        assert len(ds) == 20

    def test_arc_separable_in_features(self):
        ds = make_arc_dataset(50, seed=2)
        normal = ds.features[ds.labels == 0].mean(axis=0)
        arc = ds.features[ds.labels == 1].mean(axis=0)
        assert np.abs(normal - arc).max() > 0.5


class TestAudio:
    def test_waveform_shape(self):
        wave = keyword_waveform("mirror", samples=512)
        assert wave.shape == (512,)

    def test_unknown_keyword(self):
        with pytest.raises(ValueError):
            keyword_waveform("alexa")

    def test_feature_bins(self):
        wave = keyword_waveform("music")
        assert audio_features(wave, bins=32).shape == (32,)

    def test_dataset(self):
        ds = make_keyword_dataset(8, bins=64)
        assert ds.class_names == KEYWORD_CLASSES
        assert ds.sample_shape == (64,)
        assert len(ds) == 8 * len(KEYWORD_CLASSES)

    def test_keywords_separable(self):
        ds = make_keyword_dataset(20, seed=1)
        mirror = ds.features[ds.labels == 0].mean(axis=0)
        lights = ds.features[ds.labels == 1].mean(axis=0)
        assert np.abs(mirror - lights).max() > 0.5
