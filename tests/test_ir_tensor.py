"""Tests for repro.ir.tensor: dtypes, tensor specs, shape helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ir.tensor import (
    DType,
    ShapeError,
    TensorSpec,
    broadcast_shapes,
    conv2d_output_shape,
    pool2d_output_shape,
)


class TestDType:
    def test_bits(self):
        assert DType.FP32.bits == 32
        assert DType.FP16.bits == 16
        assert DType.INT8.bits == 8
        assert DType.BINARY.bits == 1

    def test_is_float(self):
        assert DType.FP32.is_float
        assert DType.FP16.is_float
        assert not DType.INT8.is_float

    def test_is_quantized(self):
        assert DType.INT8.is_quantized
        assert DType.UINT8.is_quantized
        assert DType.BINARY.is_quantized
        assert not DType.FP32.is_quantized

    def test_numpy_roundtrip(self):
        for dtype in (DType.FP32, DType.FP16, DType.INT8, DType.UINT8,
                      DType.INT32):
            assert DType.from_numpy(dtype.to_numpy()) is dtype

    def test_binary_stored_as_int8(self):
        assert DType.BINARY.to_numpy() == np.dtype(np.int8)

    def test_from_numpy_unknown(self):
        with pytest.raises(ValueError):
            DType.from_numpy(np.dtype(np.complex64))


class TestTensorSpec:
    def test_basic_properties(self):
        spec = TensorSpec("x", (2, 3, 4))
        assert spec.rank == 3
        assert spec.num_elements == 24
        assert spec.size_bytes == 24 * 4

    def test_scalar(self):
        spec = TensorSpec("s", ())
        assert spec.num_elements == 1
        assert spec.rank == 0

    def test_binary_size_rounds_up(self):
        spec = TensorSpec("b", (3,), DType.BINARY)
        assert spec.size_bits == 3
        assert spec.size_bytes == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("", (1,))

    def test_negative_dim_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (2, -1))

    def test_with_batch(self):
        spec = TensorSpec("x", (1, 3, 8, 8))
        assert spec.with_batch(4).shape == (4, 3, 8, 8)

    def test_with_batch_scalar_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", ()).with_batch(2)

    def test_with_dtype_and_name(self):
        spec = TensorSpec("x", (2,), DType.FP32)
        assert spec.with_dtype(DType.INT8).dtype is DType.INT8
        assert spec.with_name("y").name == "y"

    def test_zeros_matches_spec(self):
        z = TensorSpec("x", (2, 5), DType.INT8).zeros()
        assert z.shape == (2, 5)
        assert z.dtype == np.int8
        assert not z.any()

    def test_frozen(self):
        spec = TensorSpec("x", (1,))
        with pytest.raises(Exception):
            spec.name = "other"


class TestBroadcast:
    def test_matches_numpy(self):
        assert broadcast_shapes((2, 1, 3), (4, 3)) == (2, 4, 3)

    def test_incompatible(self):
        with pytest.raises(ShapeError, match="cannot broadcast"):
            broadcast_shapes((2, 3), (4,))

    def test_error_names_op(self):
        with pytest.raises(ShapeError, match="in add"):
            broadcast_shapes((2,), (3,), op="add")

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=4),
           st.lists(st.integers(1, 5), min_size=1, max_size=4))
    def test_property_agrees_with_numpy(self, a, b):
        try:
            expected = np.broadcast_shapes(tuple(a), tuple(b))
        except ValueError:
            with pytest.raises(ShapeError):
                broadcast_shapes(a, b)
        else:
            assert broadcast_shapes(a, b) == tuple(expected)


class TestConvShapes:
    def test_same_padding(self):
        assert conv2d_output_shape((1, 3, 8, 8), 16, (3, 3), (1, 1),
                                   (1, 1)) == (1, 16, 8, 8)

    def test_stride(self):
        assert conv2d_output_shape((2, 3, 224, 224), 64, (7, 7), (2, 2),
                                   (3, 3)) == (2, 64, 112, 112)

    def test_non_nchw_rejected(self):
        with pytest.raises(ShapeError):
            conv2d_output_shape((3, 8, 8), 4, (3, 3), (1, 1), (0, 0))

    def test_empty_output_rejected(self):
        with pytest.raises(ShapeError):
            conv2d_output_shape((1, 3, 2, 2), 4, (5, 5), (1, 1), (0, 0))

    @given(st.integers(4, 32), st.integers(1, 5), st.integers(1, 3),
           st.integers(0, 2))
    def test_property_matches_direct_formula(self, size, k, s, p):
        if size + 2 * p < k:
            return
        shape = conv2d_output_shape((1, 1, size, size), 1, (k, k), (s, s),
                                    (p, p))
        expected = (size + 2 * p - k) // s + 1
        assert shape == (1, 1, expected, expected)


class TestPoolShapes:
    def test_basic(self):
        assert pool2d_output_shape((1, 8, 16, 16), (2, 2), (2, 2)) \
            == (1, 8, 8, 8)

    def test_channels_preserved(self):
        shape = pool2d_output_shape((3, 7, 10, 10), (3, 3), (1, 1), (1, 1))
        assert shape[1] == 7

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            pool2d_output_shape((1, 1, 2, 2), (4, 4), (1, 1))
