"""Tests for repro.hw.microserver, recs, network, reconfig."""

import pytest

from repro.hw import (
    ALL_CHASSIS,
    Architecture,
    BitstreamVariant,
    Chassis,
    CompositionError,
    Fabric,
    FabricError,
    LinkKind,
    Microserver,
    PerformanceClass,
    RECS_BOX,
    ReconfigurableRegion,
    ReconfigurationError,
    T_RECS,
    U_RECS,
    VariantScheduler,
    WorkloadPhase,
    build_reference_trecs,
    build_reference_urecs,
    default_dl_region,
    form_factors,
    get_form_factor,
    reference_microserver,
    transfer_seconds,
)


class TestFormFactors:
    def test_catalog_sorted_by_area(self):
        areas = [ff.area_mm2 for ff in form_factors()]
        assert areas == sorted(areas)

    def test_fig2_span(self):
        ffs = form_factors()
        assert ffs[0].performance_class is PerformanceClass.EMBEDDED
        assert ffs[-1].performance_class is PerformanceClass.HIGH_END
        assert len(ffs) >= 10

    def test_smarc_architectures(self):
        smarc = get_form_factor("SMARC")
        assert Architecture.ARM in smarc.architectures
        assert Architecture.FPGA_SOC in smarc.architectures

    def test_unknown_form_factor(self):
        with pytest.raises(KeyError):
            get_form_factor("PC104")


class TestMicroserver:
    def test_power_envelope_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            Microserver("bad", "SMARC", "GTX1660")  # 120 W in a 15 W module

    def test_reference_microservers_valid(self):
        ms = reference_microserver("xavier-nx-module")
        assert ms.spec.name == "XavierNX"
        assert ms.tdp_w <= ms.form.max_power_w

    def test_unknown_reference(self):
        with pytest.raises(KeyError):
            reference_microserver("nonexistent")


class TestChassis:
    def test_urecs_under_15w(self):
        chassis = build_reference_urecs()
        assert chassis.worst_case_power_w <= U_RECS.power_budget_w

    def test_insert_wrong_form_factor(self):
        chassis = Chassis(U_RECS)
        with pytest.raises(CompositionError, match="does not accept"):
            chassis.insert(reference_microserver("xeon-d-com-express"))

    def test_slots_fill_up(self):
        chassis = Chassis(U_RECS)
        chassis.insert(reference_microserver("imx8m-smarc"))
        chassis.insert(Microserver("second", "SMARC", "i.MX8M"))
        with pytest.raises(CompositionError, match="all slots occupied"):
            chassis.insert(Microserver("third", "SMARC", "i.MX8M"))

    def test_power_budget_enforced(self):
        # zu3 (7.5 W) + Xavier NX (15 W) + 1.5 W base exceeds the 15 W
        # uRECS budget even though both form factors are accepted.
        urecs = Chassis(U_RECS)
        urecs.insert(reference_microserver("zu3-smarc"))
        with pytest.raises(CompositionError, match="budget"):
            urecs.insert(reference_microserver("xavier-nx-module"))

    def test_remove_and_reinsert(self):
        chassis = build_reference_urecs()
        removed = chassis.remove(0)
        assert chassis.slots[0].microserver is None
        chassis.insert(removed, slot=0)
        assert chassis.slots[0].microserver is removed

    def test_remove_empty_slot(self):
        chassis = Chassis(U_RECS)
        with pytest.raises(CompositionError, match="empty"):
            chassis.remove(0)

    def test_exchange_rolls_back_on_failure(self):
        chassis = build_reference_urecs()
        original = chassis.slots[0].microserver
        bad = reference_microserver("xeon-d-com-express")  # wrong FF
        with pytest.raises(CompositionError):
            chassis.exchange(0, bad)
        assert chassis.slots[0].microserver is original

    def test_exchange_success(self):
        chassis = Chassis(U_RECS)
        chassis.insert(reference_microserver("zu3-smarc"))
        old = chassis.exchange(0, reference_microserver("imx8m-smarc"))
        assert old.name == "zu3-smarc"

    def test_fabric_tracks_modules(self):
        chassis = build_reference_trecs()
        assert len(chassis.fabric.endpoints) == 2
        chassis.remove(0)
        assert len(chassis.fabric.endpoints) == 1

    def test_inventory_text(self):
        text = build_reference_urecs().inventory()
        assert "uRECS" in text and "slot 0" in text

    def test_slot_out_of_range(self):
        with pytest.raises(CompositionError, match="out of range"):
            Chassis(U_RECS).set_powered(9, True)

    def test_all_chassis_targets(self):
        targets = [c.target for c in ALL_CHASSIS]
        assert "cloud" in targets and "embedded / far edge" in targets


class TestFabric:
    def make_fabric(self):
        fabric = Fabric([LinkKind.ETH_1G, LinkKind.ETH_10G])
        fabric.attach("a")
        fabric.attach("b")
        return fabric

    def test_transfer_time_scales_with_size(self):
        t1 = transfer_seconds(LinkKind.ETH_1G, 10_000)
        t2 = transfer_seconds(LinkKind.ETH_1G, 10_000_000)
        assert t2 > t1 * 100

    def test_10g_faster_than_1g(self):
        payload = 10_000_000
        assert transfer_seconds(LinkKind.ETH_10G, payload) < \
            transfer_seconds(LinkKind.ETH_1G, payload)

    def test_connect_and_transfer(self):
        fabric = self.make_fabric()
        fabric.connect("a", "b", LinkKind.ETH_10G)
        assert fabric.transfer_seconds("a", "b", 1_000_000) > 0

    def test_unavailable_link_class(self):
        fabric = self.make_fabric()
        with pytest.raises(FabricError, match="not available"):
            fabric.connect("a", "b", LinkKind.M2)

    def test_reconfigure_live_channel(self):
        fabric = self.make_fabric()
        fabric.connect("a", "b", LinkKind.ETH_1G)
        before = fabric.transfer_seconds("a", "b", 5_000_000)
        fabric.reconfigure("a", "b", kind=LinkKind.ETH_10G)
        after = fabric.transfer_seconds("a", "b", 5_000_000)
        assert after < before

    def test_mtu_affects_packet_overhead(self):
        fabric = self.make_fabric()
        fabric.connect("a", "b", LinkKind.ETH_1G, mtu_bytes=1500)
        small_mtu = fabric.reconfigure("a", "b", mtu_bytes=64)
        t_small = small_mtu.transfer_seconds(100_000)
        fabric.reconfigure("a", "b", mtu_bytes=9000)
        t_jumbo = fabric.transfer_seconds("a", "b", 100_000)
        assert t_jumbo < t_small

    def test_detach_removes_channels(self):
        fabric = self.make_fabric()
        fabric.connect("a", "b")
        fabric.detach("b")
        with pytest.raises(FabricError, match="no channel"):
            fabric.channel("a", "b")

    def test_self_connection_rejected(self):
        fabric = self.make_fabric()
        with pytest.raises(FabricError):
            fabric.connect("a", "a")

    def test_duplicate_channel_rejected(self):
        fabric = self.make_fabric()
        fabric.connect("a", "b")
        with pytest.raises(FabricError, match="already exists"):
            fabric.connect("b", "a")

    def test_topology_view(self):
        fabric = self.make_fabric()
        fabric.connect("a", "b")
        assert fabric.topology() == {"a": ["b"], "b": ["a"]}


class TestReconfig:
    def test_load_costs_time_once(self):
        region = default_dl_region()
        first = region.load("dpu-small")
        again = region.load("dpu-small")
        assert first > 0 and again == 0.0
        assert region.reconfig_count == 1

    def test_bigger_bitstream_slower(self):
        region = default_dl_region()
        assert region.reconfig_time_s("dpu-large") > \
            region.reconfig_time_s("dpu-small")

    def test_unknown_variant(self):
        with pytest.raises(ReconfigurationError):
            default_dl_region().load("dpu-huge")

    def test_current_before_load(self):
        with pytest.raises(ReconfigurationError, match="nothing loaded"):
            default_dl_region().current()

    def test_scheduler_picks_adequate_variant(self):
        region = default_dl_region()
        scheduler = VariantScheduler(region)
        outcomes = scheduler.run_phases([
            WorkloadPhase("light", 100, 10.0),
            WorkloadPhase("heavy", 1200, 10.0),
        ])
        assert outcomes[0].variant == "dpu-small"
        assert outcomes[1].variant == "dpu-large"
        assert all(o.met_demand for o in outcomes)

    def test_adaptive_saves_energy_on_bursty_load(self):
        phases = [WorkloadPhase("idle", 50, 30.0),
                  WorkloadPhase("burst", 1200, 5.0),
                  WorkloadPhase("idle2", 50, 30.0)]
        adaptive = VariantScheduler(default_dl_region()).run_phases(
            phases, adaptive=True)
        static = VariantScheduler(default_dl_region()).run_phases(
            phases, adaptive=False)
        assert sum(o.energy_j for o in adaptive) < \
            sum(o.energy_j for o in static)

    def test_overload_falls_back_to_fastest(self):
        region = default_dl_region()
        outcomes = VariantScheduler(region).run_phases(
            [WorkloadPhase("impossible", 10_000, 1.0)])
        assert outcomes[0].variant == "dpu-large"
        assert not outcomes[0].met_demand

    def test_duplicate_variants_rejected(self):
        v = BitstreamVariant("x", 1, 1)
        with pytest.raises(ReconfigurationError):
            ReconfigurableRegion("r", [v, v])
