"""Tests for declarative platform descriptions."""

import json

import pytest

from repro.simulator import (
    ACCEL_BASE,
    Machine,
    PlatformError,
    RAM_BASE,
    halt_with,
    load_platform,
)
from repro.simulator.memory import AccessType, PrivilegeMode


class TestLoadPlatform:
    def test_defaults(self):
        machine = load_platform({"name": "bare"})
        assert isinstance(machine, Machine)
        assert machine.cpu.cfu is None
        assert machine.pmp is None

    def test_ram_size(self):
        machine = load_platform({"ram_size": 4096})
        assert machine.ram.size == 4096

    def test_cfu_attached_and_usable(self):
        machine = load_platform({"cfu": "simd_mac"})
        machine.load_assembly("""
            li a0, 0x01010101
            cfu a1, a0, a0, 3, 0
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(11) == 4

    def test_unknown_cfu(self):
        with pytest.raises(PlatformError, match="unknown CFU"):
            load_platform({"cfu": "npu9000"})

    def test_matvec_peripheral_mapped(self):
        machine = load_platform({
            "peripherals": [{"type": "matvec", "macs_per_cycle": 8}],
        })
        # CTRL register readable at the default base.
        assert machine.bus.read(ACCEL_BASE, 4, PrivilegeMode.MACHINE) == 0

    def test_unknown_peripheral(self):
        with pytest.raises(PlatformError, match="unknown peripheral"):
            load_platform({"peripherals": [{"type": "gpu"}]})

    def test_pmp_regions_programmed(self):
        machine = load_platform({
            "pmp": {"regions": [
                {"index": 0, "base": RAM_BASE, "size": 0x1000,
                 "perms": "rx"},
            ]},
        })
        assert machine.pmp is not None
        assert machine.pmp.check(RAM_BASE, 4, AccessType.READ,
                                 PrivilegeMode.USER)
        assert not machine.pmp.check(RAM_BASE, 4, AccessType.WRITE,
                                     PrivilegeMode.USER)

    def test_bad_pmp_perms(self):
        with pytest.raises(PlatformError, match="unknown PMP permission"):
            load_platform({"pmp": {"regions": [
                {"index": 0, "base": RAM_BASE, "size": 0x1000,
                 "perms": "rq"},
            ]}})

    def test_unknown_top_level_key(self):
        with pytest.raises(PlatformError, match="unknown platform keys"):
            load_platform({"chassis": "uRECS"})

    def test_loads_from_json_file(self, tmp_path):
        path = tmp_path / "platform.json"
        path.write_text(json.dumps({
            "name": "vexriscv-ml",
            "cfu": "popcount",
            "ram_size": 65536,
        }))
        machine = load_platform(path)
        assert machine.ram.size == 65536
        assert machine.cpu.cfu is not None

    def test_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PlatformError, match="cannot load"):
            load_platform(path)

    def test_full_stack_description(self):
        """A complete ML platform from one description: CFU + engine + PMP."""
        machine = load_platform({
            "name": "vedliot-soc",
            "ram_size": 1 << 20,
            "cfu": "simd_mac",
            "peripherals": [{"type": "matvec", "macs_per_cycle": 32}],
            "pmp": {"regions": [
                {"index": 0, "base": RAM_BASE, "size": 1 << 20,
                 "perms": "rwx"},
            ]},
        })
        machine.load_assembly("li a0, 1" + halt_with(0))
        assert machine.run().success
