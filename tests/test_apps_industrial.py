"""Tests for the industrial use cases: motor monitoring and arc detection."""

import numpy as np
import pytest

from repro.apps.industrial import (
    ArcDetector,
    BatteryModel,
    MotorConditionMonitor,
    run_arc_campaign,
    synthetic_motor_stream,
)
from repro.core import train_readout
from repro.datasets import make_arc_dataset, make_motor_dataset
from repro.hw import get_accelerator
from repro.ir import build_model
from repro.safety import MonitorPipeline, StuckSensorMonitor


@pytest.fixture(scope="module")
def arc_model():
    ds = make_arc_dataset(200, window=128, seed=0)
    g = build_model("arc_net", batch=16, window=128)
    return train_readout(g, ds).graph.with_batch(1)


@pytest.fixture(scope="module")
def motor_model():
    ds = make_motor_dataset(80, window=256, seed=0)
    g = build_model("motor_net", batch=8, window=256)
    return train_readout(g, ds).graph.with_batch(1)


class TestArcDetector:
    def test_campaign_has_low_error_rates(self, arc_model):
        detector = ArcDetector(arc_model)
        stats = run_arc_campaign(detector, num_streams=40, seed=1)
        # The use case demands an ultra-low false-negative rate.
        assert stats.false_negative_rate <= 0.05
        assert stats.false_positive_rate <= 0.05

    def test_latency_below_protection_deadline(self, arc_model):
        detector = ArcDetector(arc_model)
        stats = run_arc_campaign(detector, num_streams=30, seed=2)
        # Sensing 128 samples at 100 kHz = 1.28 ms; a 10 ms breaker budget
        # leaves ample margin.
        assert stats.mean_latency_s < 0.005
        assert stats.p99_latency_s < 0.010

    def test_single_window_probability(self, arc_model):
        from repro.datasets import dc_current_window

        detector = ArcDetector(arc_model)
        rng = np.random.default_rng(0)
        clean = dc_current_window(False, rng=rng)
        arcing = dc_current_window(True, arc_start=0, rng=rng)
        assert detector.window_probability(arcing) > \
            detector.window_probability(clean)

    def test_debounce_trades_latency_for_fpr(self, arc_model):
        fast = ArcDetector(arc_model, k_of_n=(1, 1))
        safe = ArcDetector(arc_model, k_of_n=(3, 4))
        stats_fast = run_arc_campaign(fast, num_streams=30, seed=3)
        stats_safe = run_arc_campaign(safe, num_streams=30, seed=3)
        assert stats_fast.mean_latency_s <= stats_safe.mean_latency_s
        assert stats_safe.false_positive_rate <= \
            stats_fast.false_positive_rate

    def test_invalid_parameters(self, arc_model):
        with pytest.raises(ValueError):
            ArcDetector(arc_model, k_of_n=(3, 2))
        with pytest.raises(ValueError):
            ArcDetector(arc_model, hop=0)

    def test_no_trip_on_clean_long_stream(self, arc_model):
        from repro.datasets import dc_current_window

        detector = ArcDetector(arc_model, k_of_n=(2, 3))
        rng = np.random.default_rng(4)
        stream = dc_current_window(False, window=4096, rng=rng)
        result = detector.scan(stream)
        assert not result.tripped


class TestMotorMonitor:
    def test_state_change_alerts(self, motor_model):
        monitor = MotorConditionMonitor(motor_model, debounce=3)
        stream = synthetic_motor_stream([
            ("healthy", 15), ("bearing_fault", 15), ("healthy", 10),
        ], seed=1)
        result = monitor.monitor_stream(stream)
        states = result.detected_states
        assert "bearing_fault" in states
        # Recovery back to healthy also reported.
        assert "healthy" in states

    def test_debounce_suppresses_flicker(self, motor_model):
        monitor = MotorConditionMonitor(motor_model, debounce=5)
        # Single-window excursions must not alert.
        stream = synthetic_motor_stream([
            ("healthy", 10), ("imbalance", 1), ("healthy", 10),
        ], seed=2)
        result = monitor.monitor_stream(stream)
        assert "imbalance" not in result.detected_states

    def test_alert_ordering(self, motor_model):
        monitor = MotorConditionMonitor(motor_model, debounce=2)
        stream = synthetic_motor_stream([
            ("healthy", 10), ("overheat", 12),
        ], seed=3)
        result = monitor.monitor_stream(stream)
        overheat_alerts = [a for a in result.alerts if a.state == "overheat"]
        assert overheat_alerts
        assert overheat_alerts[0].at_window >= 10

    def test_quality_gate_rejections_counted(self, motor_model):
        gate = MonitorPipeline([StuckSensorMonitor()])
        monitor = MotorConditionMonitor(motor_model, quality_gate=gate)
        stuck = [np.full(256, 1.0, dtype=np.float32)] * 3
        result = monitor.monitor_stream(stuck)
        assert result.rejected_windows == 3
        assert not result.alerts

    def test_ultra_low_energy_budget(self, motor_model):
        monitor = MotorConditionMonitor(motor_model,
                                        platform=get_accelerator("GAP8"))
        # Continuous monitoring at one window/minute for > 6 months.
        assert monitor.battery_life_days(windows_per_hour=60) > 180
        assert monitor.energy_per_inference_j < 1e-3

    def test_battery_life_monotonic_in_cadence(self, motor_model):
        monitor = MotorConditionMonitor(motor_model)
        slow = monitor.battery_life_days(windows_per_hour=6)
        fast = monitor.battery_life_days(windows_per_hour=3600)
        assert slow > fast

    def test_battery_model_message_cost(self):
        battery = BatteryModel()
        chatty = battery.lifetime_days(0.0, messages_per_day=1000)
        quiet = battery.lifetime_days(0.0, messages_per_day=1)
        assert quiet > chatty

    def test_invalid_debounce(self, motor_model):
        with pytest.raises(ValueError):
            MotorConditionMonitor(motor_model, debounce=0)
