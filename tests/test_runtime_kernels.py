"""Tests for repro.runtime.kernels against naive references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import kernels


def naive_conv2d(data, weight, bias=None, stride=1, padding=0):
    """Straightforward quadruple-loop convolution used as ground truth."""
    sh = sw = stride
    ph = pw = padding
    n, c, h, w = data.shape
    oc, ic, kh, kw = weight.shape
    padded = np.pad(data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, oc, oh, ow), dtype=np.float64)
    for b in range(n):
        for o in range(oc):
            for y in range(oh):
                for x in range(ow):
                    patch = padded[b, :, y * sh:y * sh + kh,
                                   x * sw:x * sw + kw]
                    out[b, o, y, x] = np.sum(patch * weight[o])
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out.astype(np.float32)


class TestConv2d:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(2, 3, 7, 7)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=4).astype(np.float32)
        got = kernels.conv2d(data, weight, bias, stride=1, padding=1)
        want = naive_conv2d(data, weight, bias, stride=1, padding=1)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_stride_2(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(1, 2, 8, 8)).astype(np.float32)
        weight = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        got = kernels.conv2d(data, weight, stride=2, padding=1)
        want = naive_conv2d(data, weight, stride=2, padding=1)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_grouped_equals_blockwise(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        got = kernels.conv2d(data, weight, groups=2, padding=1)
        lo = naive_conv2d(data[:, :2], weight[:2], padding=1)
        hi = naive_conv2d(data[:, 2:], weight[2:], padding=1)
        np.testing.assert_allclose(got, np.concatenate([lo, hi], axis=1),
                                   rtol=1e-4, atol=1e-5)

    def test_depthwise(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(1, 3, 5, 5)).astype(np.float32)
        weight = rng.normal(size=(3, 1, 3, 3)).astype(np.float32)
        got = kernels.conv2d(data, weight, groups=3, padding=1)
        for channel in range(3):
            want = naive_conv2d(data[:, channel:channel + 1],
                                weight[channel:channel + 1], padding=1)
            np.testing.assert_allclose(got[:, channel:channel + 1], want,
                                       rtol=1e-4, atol=1e-5)

    def test_int32_accumulation_preserved(self):
        data = np.ones((1, 1, 4, 4), dtype=np.int32) * 100
        weight = np.ones((1, 1, 3, 3), dtype=np.int32)
        out = kernels.conv2d(data, weight, padding=0)
        assert np.issubdtype(out.dtype, np.integer)
        assert out[0, 0, 0, 0] == 900

    def test_fp16_output_dtype(self):
        data = np.ones((1, 1, 4, 4), dtype=np.float16)
        weight = np.ones((1, 1, 3, 3), dtype=np.float16)
        out = kernels.conv2d(data, weight)
        assert out.dtype == np.float16

    @given(st.integers(1, 3), st.integers(1, 2), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_property_linear_in_input(self, k, s, p):
        rng = np.random.default_rng(17)
        data = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(2, 2, k, k)).astype(np.float32)
        if (6 + 2 * p - k) < 0:
            return
        a = kernels.conv2d(data, weight, stride=s, padding=p)
        b = kernels.conv2d(2.0 * data, weight, stride=s, padding=p)
        np.testing.assert_allclose(b, 2.0 * a, rtol=1e-4, atol=1e-5)


class TestDense:
    def test_matches_matmul(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(3, 5)).astype(np.float32)
        weight = rng.normal(size=(2, 5)).astype(np.float32)
        bias = rng.normal(size=2).astype(np.float32)
        np.testing.assert_allclose(kernels.dense(data, weight, bias),
                                   data @ weight.T + bias, rtol=1e-5)


class TestBatchNorm:
    def test_matches_formula(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        gamma = rng.uniform(0.5, 2, 3).astype(np.float32)
        beta = rng.normal(size=3).astype(np.float32)
        mean = rng.normal(size=3).astype(np.float32)
        var = rng.uniform(0.5, 2, 3).astype(np.float32)
        got = kernels.batchnorm(data, gamma, beta, mean, var, epsilon=1e-5)
        want = gamma.reshape(1, -1, 1, 1) * (
            data - mean.reshape(1, -1, 1, 1)
        ) / np.sqrt(var.reshape(1, -1, 1, 1) + 1e-5) + beta.reshape(1, -1, 1, 1)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            kernels.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_relu6(self):
        np.testing.assert_array_equal(
            kernels.relu6(np.array([-1.0, 3.0, 9.0])), [0.0, 3.0, 6.0])

    def test_leaky_relu(self):
        np.testing.assert_allclose(
            kernels.leaky_relu(np.array([-10.0, 5.0]), alpha=0.1),
            [-1.0, 5.0])

    def test_sigmoid_stable_at_extremes(self):
        out = kernels.sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-9)

    def test_hardswish_known_points(self):
        np.testing.assert_allclose(
            kernels.hardswish(np.array([-4.0, 0.0, 4.0])), [0.0, 0.0, 4.0])

    def test_mish_matches_definition(self):
        x = np.linspace(-3, 3, 7)
        want = x * np.tanh(np.log1p(np.exp(x)))
        np.testing.assert_allclose(kernels.mish(x), want, rtol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        out = kernels.softmax(np.random.default_rng(0).normal(size=(4, 9)))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(kernels.softmax(x),
                                   kernels.softmax(x + 100.0), rtol=1e-6)


class TestPooling:
    def test_maxpool(self):
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = kernels.maxpool2d(data, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool(self):
        data = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = kernels.avgpool2d(data, 2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_padding_uses_neg_inf(self):
        data = -np.ones((1, 1, 2, 2), dtype=np.float32)
        out = kernels.maxpool2d(data, 2, stride=1, padding=1)
        # Padded corners must still report the real (negative) maximum.
        assert out.max() == -1.0

    def test_global_avgpool(self):
        data = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = kernels.global_avgpool2d(data)
        np.testing.assert_allclose(out.reshape(-1), [1.5, 5.5])

    def test_spp_style_same_size_pool(self):
        data = np.random.default_rng(0).normal(size=(1, 2, 13, 13)) \
            .astype(np.float32)
        out = kernels.maxpool2d(data, 5, stride=1, padding=2)
        assert out.shape == data.shape


class TestSpatial:
    def test_upsample_nearest(self):
        data = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        out = kernels.upsample2d(data, 2)
        np.testing.assert_array_equal(out[0, 0, :2, :2], [[1, 1], [1, 1]])
        assert out.shape == (1, 1, 4, 4)

    def test_pad(self):
        out = kernels.pad(np.ones((1, 2)), [(1, 0), (0, 2)])
        assert out.shape == (2, 4)


class TestGroupedConvBias:
    """Regression: grouped/depthwise conv must apply bias exactly once,
    at the very end — not once per group recursion."""

    def test_grouped_bias_applied_once(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(6, 2, 3, 3)).astype(np.float32)
        bias = rng.normal(size=6).astype(np.float32)
        with_bias = kernels.conv2d(data, weight, bias, padding=1, groups=2)
        without = kernels.conv2d(data, weight, None, padding=1, groups=2)
        np.testing.assert_allclose(
            with_bias, without + bias.reshape(1, -1, 1, 1),
            rtol=1e-5, atol=1e-6)

    def test_depthwise_bias_matches_per_channel_reference(self):
        rng = np.random.default_rng(12)
        data = rng.normal(size=(1, 3, 5, 5)).astype(np.float32)
        weight = rng.normal(size=(3, 1, 3, 3)).astype(np.float32)
        bias = np.array([10.0, -20.0, 30.0], dtype=np.float32)
        got = kernels.conv2d(data, weight, bias, padding=1, groups=3)
        for channel in range(3):
            want = naive_conv2d(data[:, channel:channel + 1],
                                weight[channel:channel + 1],
                                bias[channel:channel + 1], padding=1)
            np.testing.assert_allclose(got[:, channel:channel + 1], want,
                                       rtol=1e-4, atol=1e-4)


class TestIm2col:
    def test_padding_fills_zero(self):
        data = np.full((1, 1, 2, 2), 7.0, dtype=np.float32)
        cols, (oh, ow) = kernels.im2col(data, kernel=(3, 3), stride=(1, 1),
                                        padding=(1, 1))
        # Every border patch position must see explicit zeros, so column
        # sums under-count the interior exactly by the padded fraction.
        assert (oh, ow) == (2, 2)
        assert cols.shape == (1, 9, 4)
        corners = cols[0, :, 0]
        assert np.count_nonzero(corners) == 4      # 2x2 data in a 3x3 patch
        assert corners.sum() == 4 * 7.0

    def test_fp16_input_preserved_and_upcast_columns(self):
        data = np.arange(16, dtype=np.float16).reshape(1, 1, 4, 4)
        cols, _ = kernels.im2col(data, kernel=(3, 3), stride=(1, 1),
                                 padding=(1, 1))
        assert cols.dtype == np.float16
        out = np.empty(cols.shape, dtype=np.float32)
        up, _ = kernels.im2col(data, kernel=(3, 3), stride=(1, 1),
                               padding=(1, 1), out=out)
        assert up.base is out and up.dtype == np.float32
        np.testing.assert_array_equal(up, cols.astype(np.float32))

    def test_fp16_conv_output_dtype_preserved(self):
        rng = np.random.default_rng(13)
        data = rng.normal(size=(1, 2, 6, 6)).astype(np.float16)
        weight = rng.normal(size=(3, 2, 3, 3)).astype(np.float16)
        out = kernels.conv2d(data, weight, padding=1)
        assert out.dtype == np.float16


class TestScratchVariants:
    """``out=``/workspace kernel variants must be bitwise-identical to
    the allocating paths — the allocation-free executor relies on it."""

    def test_conv2d_out_bitwise(self):
        rng = np.random.default_rng(21)
        data = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=4).astype(np.float32)
        want = kernels.conv2d(data, weight, bias, stride=2, padding=1)
        out = np.empty(want.shape, dtype=want.dtype)
        ws = kernels.Workspace()
        got = kernels.conv2d(data, weight, bias, stride=2, padding=1,
                             out=out, workspace=ws)
        assert got is out
        np.testing.assert_array_equal(got, want)
        # Second call reuses the workspace buffers instead of allocating.
        allocations = ws.allocations
        kernels.conv2d(data, weight, bias, stride=2, padding=1,
                       out=out, workspace=ws)
        assert ws.allocations == allocations
        assert ws.hits > 0

    def test_grouped_conv2d_out_bitwise(self):
        rng = np.random.default_rng(22)
        data = rng.normal(size=(1, 4, 6, 6)).astype(np.float32)
        weight = rng.normal(size=(6, 2, 3, 3)).astype(np.float32)
        bias = rng.normal(size=6).astype(np.float32)
        want = kernels.conv2d(data, weight, bias, padding=1, groups=2)
        out = np.empty(want.shape, dtype=want.dtype)
        got = kernels.conv2d(data, weight, bias, padding=1, groups=2,
                             out=out, workspace=kernels.Workspace())
        np.testing.assert_array_equal(got, want)

    def test_dense_out_bitwise(self):
        rng = np.random.default_rng(23)
        data = rng.normal(size=(4, 16)).astype(np.float32)
        weight = rng.normal(size=(8, 16)).astype(np.float32)
        bias = rng.normal(size=8).astype(np.float32)
        want = kernels.dense(data, weight, bias)
        out = np.empty(want.shape, dtype=want.dtype)
        got = kernels.dense(data, weight, bias, out=out,
                            workspace=kernels.Workspace())
        assert got is out
        np.testing.assert_array_equal(got, want)

    def test_fp16_conv2d_out_bitwise(self):
        rng = np.random.default_rng(24)
        data = rng.normal(size=(1, 2, 6, 6)).astype(np.float16)
        weight = rng.normal(size=(3, 2, 3, 3)).astype(np.float16)
        want = kernels.conv2d(data, weight, padding=1)
        out = np.empty(want.shape, dtype=np.float16)
        got = kernels.conv2d(data, weight, padding=1, out=out,
                             workspace=kernels.Workspace())
        assert got.dtype == np.float16
        np.testing.assert_array_equal(got, want)

    def test_pool_out_bitwise(self):
        rng = np.random.default_rng(25)
        data = rng.normal(size=(1, 2, 8, 8)).astype(np.float32)
        for fn in (kernels.maxpool2d, kernels.avgpool2d):
            want = fn(data, 2, stride=2, padding=1)
            out = np.empty(want.shape, dtype=want.dtype)
            got = fn(data, 2, stride=2, padding=1, out=out,
                     workspace=kernels.Workspace())
            assert got is out
            np.testing.assert_array_equal(got, want)

    def test_batchnorm_out_bitwise(self):
        rng = np.random.default_rng(26)
        data = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        gamma = rng.normal(size=3).astype(np.float32)
        beta = rng.normal(size=3).astype(np.float32)
        mean = rng.normal(size=3).astype(np.float32)
        var = np.abs(rng.normal(size=3)).astype(np.float32) + 0.5
        want = kernels.batchnorm(data, gamma, beta, mean, var)
        out = np.empty(want.shape, dtype=want.dtype)
        got = kernels.batchnorm(data, gamma, beta, mean, var, out=out)
        assert got is out
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("name", sorted(kernels.INPLACE_ACTIVATIONS))
    def test_inplace_activation_bitwise(self, name):
        rng = np.random.default_rng(27)
        data = rng.normal(size=(64,)).astype(np.float32) * 4.0
        want = kernels.resolve_activation(name)(data)
        buf = data.copy()
        handled = kernels.apply_activation_inplace(
            name, buf, workspace=kernels.Workspace())
        assert handled is True
        np.testing.assert_array_equal(buf, want)

    def test_upsample_and_pad_out_bitwise(self):
        data = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        want = kernels.upsample2d(data, 2)
        out = np.empty(want.shape, dtype=want.dtype)
        np.testing.assert_array_equal(
            kernels.upsample2d(data, 2, out=out), want)
        pads = [(0, 0), (0, 0), (1, 1), (1, 1)]
        want_pad = kernels.pad(data, pads)
        out_pad = np.empty(want_pad.shape, dtype=want_pad.dtype)
        np.testing.assert_array_equal(
            kernels.pad(data, pads, out=out_pad), want_pad)
