"""Tests for the monitor framework and the concrete input-quality monitors."""

import numpy as np
import pytest

from repro.datasets import (
    add_dead_pixels,
    add_image_noise,
    dc_current_window,
    inject_dropouts,
    inject_outliers,
    make_shapes_dataset,
)
from repro.safety import (
    Action,
    Anomaly,
    BlurMonitor,
    DeadPixelMonitor,
    DriftMonitor,
    DropoutMonitor,
    ExposureMonitor,
    Monitor,
    MonitorPipeline,
    NoiseMonitor,
    OutlierMonitor,
    RangeMonitor,
    Severity,
    StuckSensorMonitor,
    median_filter3,
)


class AlwaysFlag(Monitor):
    name = "always"

    def __init__(self, severity=Severity.WARNING, correctable=False):
        self.severity = severity
        self.correctable = correctable

    def observe(self, sample):
        return [Anomaly(self.name, "synthetic", self.severity)]

    def correct(self, sample, anomalies):
        return sample * 0 if self.correctable else None


class TestPipelinePolicy:
    def test_clean_sample_passes(self):
        pipeline = MonitorPipeline([RangeMonitor(-10, 10)])
        verdict = pipeline.process(np.zeros(8))
        assert verdict.action is Action.PASS
        assert verdict.usable
        assert pipeline.stats.passed == 1

    def test_correctable_anomaly_corrected(self):
        pipeline = MonitorPipeline([AlwaysFlag(correctable=True)])
        verdict = pipeline.process(np.ones(4))
        assert verdict.action is Action.CORRECTED
        assert not verdict.sample.any()
        assert pipeline.stats.corrected == 1

    def test_critical_rejects(self):
        pipeline = MonitorPipeline([AlwaysFlag(Severity.CRITICAL, True)])
        verdict = pipeline.process(np.ones(4))
        assert verdict.action is Action.REJECTED
        assert verdict.sample is None
        assert not verdict.usable

    def test_strict_mode_rejects_uncorrectable(self):
        lax = MonitorPipeline([AlwaysFlag(correctable=False)])
        strict = MonitorPipeline([AlwaysFlag(correctable=False)], strict=True)
        assert lax.process(np.ones(4)).action is Action.PASS
        assert strict.process(np.ones(4)).action is Action.REJECTED

    def test_anomaly_counters(self):
        pipeline = MonitorPipeline([AlwaysFlag()])
        for _ in range(3):
            pipeline.process(np.ones(4))
        assert pipeline.stats.anomalies_by_kind["synthetic"] == 3

    def test_worst_severity(self):
        pipeline = MonitorPipeline([AlwaysFlag(Severity.WARNING, True)])
        verdict = pipeline.process(np.ones(4))
        assert verdict.worst_severity is Severity.WARNING

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            MonitorPipeline([])

    def test_reset_clears_state(self):
        pipeline = MonitorPipeline([OutlierMonitor()])
        pipeline.process(np.ones(32))
        pipeline.reset()
        assert pipeline.stats.observed == 0


class TestTimeSeriesMonitors:
    def test_range_clips(self):
        monitor = RangeMonitor(0.0, 1.0)
        sample = np.array([-1.0, 0.5, 2.0])
        anomalies = monitor.observe(sample)
        assert anomalies and anomalies[0].kind == "out_of_range"
        fixed = monitor.correct(sample, anomalies)
        assert fixed.min() >= 0.0 and fixed.max() <= 1.0

    def test_outlier_detection_after_warmup(self):
        rng = np.random.default_rng(0)
        monitor = OutlierMonitor(z_threshold=5.0)
        for _ in range(10):
            assert monitor.observe(rng.normal(0, 1, 64)) == []
        corrupted = inject_outliers(rng.normal(0, 1, 64), 3, magnitude=50)
        anomalies = monitor.observe(corrupted)
        assert anomalies and anomalies[0].kind == "outlier"
        fixed = monitor.correct(corrupted, anomalies)
        assert np.abs(fixed).max() < 10

    def test_outlier_clean_stream_no_false_alarms(self):
        rng = np.random.default_rng(1)
        monitor = OutlierMonitor(z_threshold=6.0)
        alarms = sum(bool(monitor.observe(rng.normal(0, 1, 64)))
                     for _ in range(50))
        assert alarms == 0

    def test_dropout_detection_and_interpolation(self):
        signal = np.sin(np.linspace(0, 6, 100)).astype(np.float32)
        corrupted = inject_dropouts(signal, 40, 5)
        monitor = DropoutMonitor(max_gap=8)
        anomalies = monitor.observe(corrupted)
        assert anomalies[0].kind == "dropout"
        assert anomalies[0].severity is Severity.WARNING
        fixed = monitor.correct(corrupted, anomalies)
        assert np.isfinite(fixed).all()
        np.testing.assert_allclose(fixed, signal, atol=0.05)

    def test_long_dropout_critical(self):
        signal = np.ones(100, dtype=np.float32)
        corrupted = inject_dropouts(signal, 10, 50)
        anomalies = DropoutMonitor(max_gap=8).observe(corrupted)
        assert anomalies[0].severity is Severity.CRITICAL

    def test_stuck_sensor(self):
        monitor = StuckSensorMonitor()
        assert monitor.observe(np.full(64, 3.3))
        assert not monitor.observe(np.random.default_rng(0).normal(size=64))

    def test_drift_detection(self):
        monitor = DriftMonitor(reference_mean=0.0, tolerance=0.5,
                               smoothing=0.5)
        for _ in range(3):
            assert monitor.observe(np.random.default_rng(0)
                                   .normal(0, 0.1, 32)) == []
        anomalies = []
        for _ in range(10):
            anomalies = monitor.observe(
                np.random.default_rng(1).normal(2.0, 0.1, 32))
        assert anomalies and anomalies[0].kind == "drift"


class TestImageMonitors:
    def make_frame(self, seed=0):
        # Pick a circle frame: stripe patterns have edge energy everywhere,
        # which any single-image noise estimator conflates with noise.
        ds = make_shapes_dataset(16, image_size=32, noise=0.02, seed=seed)
        index = int(np.flatnonzero(ds.labels == 0)[0])
        return ds.features[index]

    def test_noise_monitor_detects_and_denoises(self):
        frame = self.make_frame()
        monitor = NoiseMonitor(max_sigma=0.1)
        assert monitor.observe(frame) == []
        noisy = add_image_noise(frame, 0.5)
        anomalies = monitor.observe(noisy)
        assert anomalies and anomalies[0].kind == "image_noise"
        denoised = monitor.correct(noisy, anomalies)
        assert monitor.estimate_sigma(denoised) < \
            monitor.estimate_sigma(noisy)

    def test_exposure_monitor(self):
        dark = np.zeros((3, 16, 16), dtype=np.float32)
        bright = np.ones((3, 16, 16), dtype=np.float32)
        rng = np.random.default_rng(0)
        normal = rng.uniform(0.2, 0.8, (3, 16, 16)).astype(np.float32)
        monitor = ExposureMonitor()
        assert monitor.observe(dark)[0].kind == "underexposed"
        assert monitor.observe(bright)[0].kind == "overexposed"
        assert monitor.observe(normal) == []

    def test_dead_pixel_monitor(self):
        frame = self.make_frame(1) * 0.3
        monitor = DeadPixelMonitor(threshold=0.5)
        corrupted = add_dead_pixels(frame, 10)
        anomalies = monitor.observe(corrupted)
        assert anomalies and anomalies[0].kind == "dead_pixels"
        fixed = monitor.correct(corrupted, anomalies)
        assert not monitor.observe(fixed)

    def test_blur_monitor(self):
        sharp = self.make_frame(2)
        flat = np.full_like(sharp, 0.5)
        monitor = BlurMonitor(min_variance=1e-5)
        assert monitor.observe(flat)
        assert not monitor.observe(sharp)

    def test_median_filter_removes_salt(self):
        image = np.zeros((9, 9), dtype=np.float64)
        image[4, 4] = 100.0
        assert median_filter3(image)[4, 4] == 0.0


class TestEndToEndGate:
    def test_arc_stream_gate(self):
        """The industrial input gate: outliers corrected, dropouts fixed,
        stuck sensors rejected."""
        pipeline = MonitorPipeline([
            DropoutMonitor(max_gap=16),
            OutlierMonitor(z_threshold=8.0),
            StuckSensorMonitor(),
        ])
        rng = np.random.default_rng(0)
        for _ in range(5):
            clean = dc_current_window(False, rng=rng)
            assert pipeline.process(clean).usable
        stuck = np.full(128, 8.0, dtype=np.float32)
        assert pipeline.process(stuck).action is Action.REJECTED
