"""Tests for the memory-mapped accelerator (type-2) and timer interrupts."""

import numpy as np
import pytest

from repro.simulator import (
    ACCEL_BASE,
    CAUSE_MACHINE_TIMER_INTERRUPT,
    Machine,
    RAM_BASE,
    TIMER_BASE,
    attach_accelerator,
    halt_with,
)
from repro.simulator.memory import PrivilegeMode

WEIGHTS = RAM_BASE + 0x8000
VECTOR = RAM_BASE + 0x9000
RESULT = RAM_BASE + 0xA000


def setup_machine(rows=4, cols=8, seed=0, macs_per_cycle=16):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-128, 128, size=(rows, cols), dtype=np.int8)
    vector = rng.integers(-128, 128, size=cols, dtype=np.int8)
    machine = Machine()
    device = attach_accelerator(machine, macs_per_cycle=macs_per_cycle)
    machine.load_binary(matrix.tobytes(), WEIGHTS)
    machine.load_binary(vector.tobytes(), VECTOR)
    return machine, device, matrix, vector


def drive_program(rows, cols):
    """Guest program: configure the engine, start it, check DONE."""
    return f"""
        li   t0, {ACCEL_BASE}
        li   t1, {WEIGHTS}
        sw   t1, 8(t0)          # SRC_A
        li   t1, {VECTOR}
        sw   t1, 12(t0)         # SRC_B
        li   t1, {RESULT}
        sw   t1, 16(t0)         # DST
        li   t1, {rows}
        sw   t1, 20(t0)         # ROWS
        li   t1, {cols}
        sw   t1, 24(t0)         # COLS
        li   t1, 1
        sw   t1, 0(t0)          # CTRL: start
        lw   a0, 4(t0)          # STATUS
        lw   a1, 28(t0)         # CYCLES
    """ + halt_with(0)


class TestMatVecAccelerator:
    def test_computes_matvec(self):
        machine, device, matrix, vector = setup_machine(rows=4, cols=8)
        machine.load_assembly(drive_program(4, 8))
        machine.run()
        assert machine.cpu.read_reg(10) == 1  # STATUS_DONE
        want = matrix.astype(np.int32) @ vector.astype(np.int32)
        for row, expected in enumerate(want):
            got = machine.read_word(RESULT + 4 * row)
            assert got == int(expected) & 0xFFFFFFFF

    def test_odd_sizes_byte_tail(self):
        machine, device, matrix, vector = setup_machine(rows=3, cols=5,
                                                        seed=1)
        machine.load_assembly(drive_program(3, 5))
        machine.run()
        want = matrix.astype(np.int32) @ vector.astype(np.int32)
        got = [machine.read_word(RESULT + 4 * i) for i in range(3)]
        assert got == [int(v) & 0xFFFFFFFF for v in want]

    def test_cycle_model(self):
        machine, device, *_ = setup_machine(rows=8, cols=16,
                                            macs_per_cycle=16)
        machine.load_assembly(drive_program(8, 16))
        machine.run()
        # setup 40 + ceil(8*16/16) = 48 cycles
        assert machine.cpu.read_reg(11) == 48
        assert device.last_cycles == 48

    def test_cycles_charged_to_cpu(self):
        machine, device, *_ = setup_machine(rows=64, cols=64)
        machine.load_assembly(drive_program(64, 64))
        result = machine.run()
        # The engine's cycles dominate the handful of driver instructions.
        assert result.cycles > device.last_cycles

    def test_invalid_dims_error(self):
        machine, device, *_ = setup_machine()
        machine.load_assembly(f"""
            li   t0, {ACCEL_BASE}
            li   t1, 0
            sw   t1, 20(t0)     # ROWS = 0
            li   t1, 8
            sw   t1, 24(t0)
            li   t1, 1
            sw   t1, 0(t0)
            lw   a0, 4(t0)
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(10) == 2  # STATUS_ERROR

    def test_bad_dma_address_error(self):
        machine, device, *_ = setup_machine()
        machine.load_assembly(f"""
            li   t0, {ACCEL_BASE}
            li   t1, 0x40000000  # unmapped
            sw   t1, 8(t0)
            li   t1, {VECTOR}
            sw   t1, 12(t0)
            li   t1, {RESULT}
            sw   t1, 16(t0)
            li   t1, 4
            sw   t1, 20(t0)
            li   t1, 4
            sw   t1, 24(t0)
            li   t1, 1
            sw   t1, 0(t0)
            lw   a0, 4(t0)
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(10) == 2

    def test_status_write_clears(self):
        machine, device, matrix, vector = setup_machine()
        machine.load_assembly(drive_program(4, 8) if False else f"""
            li   t0, {ACCEL_BASE}
            li   t1, {WEIGHTS}
            sw   t1, 8(t0)
            li   t1, {VECTOR}
            sw   t1, 12(t0)
            li   t1, {RESULT}
            sw   t1, 16(t0)
            li   t1, 4
            sw   t1, 20(t0)
            li   t1, 8
            sw   t1, 24(t0)
            li   t1, 1
            sw   t1, 0(t0)
            sw   zero, 4(t0)    # clear status
            lw   a0, 4(t0)
        """ + halt_with(0))
        machine.run()
        assert machine.cpu.read_reg(10) == 0

    def test_operation_counters(self):
        machine, device, *_ = setup_machine()
        machine.load_assembly(drive_program(4, 8))
        machine.run()
        assert device.operations == 1
        assert device.total_cycles == device.last_cycles


class TestTimerInterrupt:
    def interrupt_program(self, compare: int) -> str:
        return f"""
            la   t0, handler
            csrw mtvec, t0
            li   t0, {TIMER_BASE}
            li   t1, {compare}
            sw   t1, 8(t0)          # mtimecmp low
            sw   zero, 12(t0)       # mtimecmp high
            li   t0, 0x80           # MTIE
            csrw mie, t0
            csrrsi zero, mstatus, 8 # MIE = 1
        spin:
            j spin
        handler:
        """ + halt_with(3)

    def test_timer_interrupt_fires(self):
        machine = Machine()
        machine.load_assembly(self.interrupt_program(compare=50))
        result = machine.run(max_steps=500)
        assert result.exit_code == 3
        assert machine.cpu.last_trap_cause == CAUSE_MACHINE_TIMER_INTERRUPT
        assert machine.cpu.csrs[0x342] == CAUSE_MACHINE_TIMER_INTERRUPT

    def test_interrupt_masked_without_mie(self):
        machine = Machine()
        machine.load_assembly(f"""
            li   t0, {TIMER_BASE}
            li   t1, 10
            sw   t1, 8(t0)
            sw   zero, 12(t0)
            li   t0, 0x80
            csrw mie, t0
            # mstatus.MIE stays 0: interrupt must NOT be taken in M-mode
        spin:
            j spin
        """)
        result = machine.run(max_steps=200)
        assert not result.halted
        assert machine.cpu.last_trap_cause is None

    def test_interrupt_taken_from_user_mode(self):
        machine = Machine()
        machine.load_assembly(f"""
            la   t0, handler
            csrw mtvec, t0
            li   t0, {TIMER_BASE}
            li   t1, 60
            sw   t1, 8(t0)
            sw   zero, 12(t0)
            li   t0, 0x80
            csrw mie, t0
            la   t0, user
            csrw mepc, t0
            mret                    # to U-mode with mstatus.MIE = 0
        user:
            j user
        handler:
        """ + halt_with(7))
        result = machine.run(max_steps=500)
        # M-mode interrupts are always taken from U-mode.
        assert result.exit_code == 7
        assert machine.cpu.last_trap_cause == CAUSE_MACHINE_TIMER_INTERRUPT

    def test_mepc_points_into_interrupted_loop(self):
        machine = Machine()
        machine.load_assembly(self.interrupt_program(compare=50))
        machine.run(max_steps=500)
        mepc = machine.cpu.csrs[0x341]
        # The spin loop is a single jump; mepc must point at it.
        assert RAM_BASE <= mepc < RAM_BASE + 0x100
