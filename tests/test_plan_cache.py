"""Tests for repro.runtime.plan_cache: the persistent compiled-plan store.

Covers the cache-key contract (stable across processes, moved by any
weight/config/topology change), hit/miss/store accounting, bitwise
equality of warm-loaded plans, corruption tolerance, maintenance
operations, and the serving engine's hit/miss metrics integration.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ir import build_model
from repro.ir.serialization import graph_fingerprint
from repro.optim import AOTConfig
from repro.runtime import Executor, PlanCache, default_cache_dir, load_or_build
from repro.runtime.plan_cache import CACHE_ENV_VAR
from repro.serving import InferenceEngine


def small_graph(name="tiny_convnet", batch=1):
    return build_model(name, batch=batch)


def reference_feeds(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {
        spec.name: rng.normal(size=spec.shape).astype(spec.dtype.to_numpy())
        for spec in graph.inputs
    }


class TestCacheKey:
    def test_stable_within_process(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        assert cache.key_for(g) == cache.key_for(g)
        assert cache.key_for(g) == cache.key_for(g.copy())

    def test_stable_across_processes(self, tmp_path):
        """The same model must hash identically in a fresh interpreter —
        the whole point of a *persistent* cache."""
        g = small_graph("mlp")
        parent_fp = graph_fingerprint(g)
        parent_key = PlanCache(tmp_path).key_for(g)
        script = (
            "from repro.ir import build_model\n"
            "from repro.ir.serialization import graph_fingerprint\n"
            "from repro.runtime import PlanCache\n"
            "g = build_model('mlp', batch=1)\n"
            "print(graph_fingerprint(g))\n"
            f"print(PlanCache({str(tmp_path)!r}).key_for(g))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, cwd=str(Path(__file__).resolve().parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        child_fp, child_key = out.stdout.split()
        assert child_fp == parent_fp
        assert child_key == parent_key

    def test_weight_change_moves_key(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        before = cache.key_for(g)
        name = next(iter(g.initializers))
        g.initializers[name] = g.initializers[name] + np.float32(1e-3)
        assert cache.key_for(g) != before

    def test_config_change_moves_key(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        assert cache.key_for(g, AOTConfig()) != \
            cache.key_for(g, AOTConfig(fold_constants=False))
        assert cache.key_for(g, AOTConfig()) != \
            cache.key_for(g, AOTConfig(prepack=False))

    def test_topology_change_moves_key(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph(batch=1)
        assert cache.key_for(g) != cache.key_for(g.with_batch(2))


class TestLoadStore:
    def test_miss_builds_then_hit_loads(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        cold = load_or_build(g, cache=cache)
        assert not cold.from_cache
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        warm = load_or_build(g, cache=cache)
        assert warm.from_cache
        assert warm.key == cold.key
        assert cache.stats.hits == 1

    def test_warm_plan_is_bitwise_identical(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph("tiny_yolo")
        feeds = reference_feeds(g)
        reference = Executor(g).run(feeds)
        cold = load_or_build(g, cache=cache)
        warm = load_or_build(g, cache=cache)
        assert warm.from_cache
        for model in (cold, warm):
            got = Executor(model.graph, plan=model.plan).run(feeds)
            for name, value in reference.items():
                assert got[name].dtype == value.dtype
                np.testing.assert_array_equal(got[name], value)

    def test_warm_plan_supports_arena_execution(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        feeds = reference_feeds(g)
        reference = Executor(g).run(feeds)
        load_or_build(g, cache=cache)
        warm = load_or_build(g, cache=cache)
        executor = Executor(warm.graph, plan=warm.plan, reuse_buffers=True)
        for _ in range(2):
            got = executor.run(feeds)
            for name, value in reference.items():
                np.testing.assert_array_equal(got[name], value)
            executor.recycle(got)

    def test_corrupt_meta_is_a_miss_and_rebuilds(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        cold = load_or_build(g, cache=cache)
        (tmp_path / cold.key / "meta.json").write_text("{not json")
        rebuilt = load_or_build(g, cache=cache)
        assert not rebuilt.from_cache
        assert load_or_build(g, cache=cache).from_cache

    def test_truncated_blob_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        cold = load_or_build(g, cache=cache)
        blob = tmp_path / cold.key / "weights.bin"
        blob.write_bytes(blob.read_bytes()[: blob.stat().st_size // 2])
        assert cache.load(cold.key) is None
        assert not load_or_build(g, cache=cache).from_cache

    def test_entry_version_mismatch_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        cold = load_or_build(g, cache=cache)
        meta_path = tmp_path / cold.key / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 999
        meta_path.write_text(json.dumps(meta))
        assert cache.load(cold.key) is None

    def test_default_load_memmaps_weights_read_only(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph("mlp")
        cold = load_or_build(g, cache=cache)
        graph, _ = cache.load(cold.key)
        assert graph.initializers            # mlp has weights
        for name, value in graph.initializers.items():
            # Views into one shared file mapping: not writable, and the
            # base chain bottoms out in np.memmap — the property the
            # replica tier's zero-copy weight sharing rests on.
            assert not value.flags.writeable
            base = value
            while isinstance(base, np.ndarray) and \
                    not isinstance(base, np.memmap):
                base = base.base
            assert isinstance(base, np.memmap)

    def test_mmap_false_loads_private_writable_copy(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph("mlp")
        cold = load_or_build(g, cache=cache)
        feeds = reference_feeds(g)
        graph, plan = cache.load(cold.key, mmap=False)
        reference = Executor(graph, plan=plan).run(feeds)
        name = next(iter(graph.initializers))
        value = graph.initializers[name]
        assert value.flags.writeable
        # Mutating the private copy must not reach the file: a fresh
        # mmap load still executes identically.
        value.fill(0.0)
        fresh_graph, fresh_plan = cache.load(cold.key)
        got = Executor(fresh_graph, plan=fresh_plan).run(feeds)
        for out_name, out_value in reference.items():
            np.testing.assert_array_equal(got[out_name], out_value)

    def test_mmap_and_private_loads_execute_identically(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        feeds = reference_feeds(g)
        load_or_build(g, cache=cache)
        key = cache.key_for(g)
        mapped_graph, mapped_plan = cache.load(key)
        private_graph, private_plan = cache.load(key, mmap=False)
        mapped = Executor(mapped_graph, plan=mapped_plan).run(feeds)
        private = Executor(private_graph, plan=private_plan).run(feeds)
        for name, value in mapped.items():
            assert value.dtype == private[name].dtype
            np.testing.assert_array_equal(value, private[name])


class TestMaintenance:
    def test_entries_report_metadata(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph()
        cold = load_or_build(g, cache=cache)
        entries = cache.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["key"] == cold.key
        assert entry["graph"] == g.name
        assert entry["nodes"] == len(cold.graph.nodes)
        assert entry["bytes"] > 0

    def test_clear_removes_everything(self, tmp_path):
        cache = PlanCache(tmp_path)
        load_or_build(small_graph("mlp"), cache=cache)
        load_or_build(small_graph("tiny_convnet"), cache=cache)
        assert cache.clear() == 2
        assert cache.entries() == []
        assert not load_or_build(small_graph("mlp"), cache=cache).from_cache

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv(CACHE_ENV_VAR)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == \
            tmp_path / "xdg" / "repro" / "plan-cache"


class TestEngineIntegration:
    def test_engine_counts_misses_then_hits(self, tmp_path):
        cache = PlanCache(tmp_path)
        g = small_graph(batch=1)
        sample = reference_feeds(g)
        with InferenceEngine(g, workers=1, max_batch=1,
                             plan_cache=cache) as engine:
            first = engine.infer_sync(sample, timeout=30)
            snapshot = engine.metrics()
        assert snapshot.plan_cache_misses == 1
        assert snapshot.plan_cache_hits == 0
        # A restarted engine over the same cache warm-starts from disk.
        with InferenceEngine(g, workers=1, max_batch=1,
                             plan_cache=cache) as engine:
            second = engine.infer_sync(sample, timeout=30)
            snapshot = engine.metrics()
        assert snapshot.plan_cache_hits == 1
        assert snapshot.plan_cache_misses == 0
        assert "plan cache" in snapshot.report()
        for name, value in first.items():
            np.testing.assert_array_equal(value, second[name])
