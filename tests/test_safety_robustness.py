"""Tests for the robustness service, fault injection, and hybridization."""

import numpy as np
import pytest

from repro.ir import build_model
from repro.runtime import Executor
from repro.safety import (
    ActivationFaultHook,
    AuditedDevice,
    AuditPolicy,
    HybridSystem,
    KernelDecision,
    RobustnessService,
    flip_weight_bits,
    run_detection_campaign,
)


@pytest.fixture(scope="module")
def reference():
    return build_model("mlp", batch=2, in_features=16, hidden=(12,),
                       num_classes=4, seed=5)


@pytest.fixture()
def feeds():
    rng = np.random.default_rng(0)
    return {"input": rng.normal(size=(2, 16)).astype(np.float32)}


class TestRobustnessService:
    def test_consistent_device_passes(self, reference, feeds):
        service = RobustnessService(reference)
        outputs = Executor(reference).run(feeds)
        result = service.check("dev-0", feeds, outputs)
        assert result.consistent
        assert not result.quarantined

    def test_corrupted_output_flagged(self, reference, feeds):
        service = RobustnessService(reference, tolerance=1e-4)
        outputs = Executor(reference).run(feeds)
        tampered = {k: v + 0.5 for k, v in outputs.items()}
        result = service.check("dev-0", feeds, tampered)
        assert not result.consistent

    def test_missing_output_flagged(self, reference, feeds):
        service = RobustnessService(reference)
        result = service.check("dev-0", feeds, {})
        assert not result.consistent
        assert result.max_abs_error == float("inf")

    def test_quarantine_after_consecutive_failures(self, reference, feeds):
        service = RobustnessService(reference, quarantine_after=3)
        bad = {k: v * 0 for k, v in Executor(reference).run(feeds).items()}
        for i in range(3):
            result = service.check("dev-bad", feeds, bad)
        assert result.quarantined
        assert service.is_quarantined("dev-bad")

    def test_success_resets_streak(self, reference, feeds):
        service = RobustnessService(reference, quarantine_after=2)
        good = Executor(reference).run(feeds)
        bad = {k: v + 1 for k, v in good.items()}
        service.check("dev", feeds, bad)
        service.check("dev", feeds, good)
        service.check("dev", feeds, bad)
        assert not service.is_quarantined("dev")

    def test_reinstate(self, reference, feeds):
        service = RobustnessService(reference, quarantine_after=1)
        bad = {k: v + 1 for k, v in Executor(reference).run(feeds).items()}
        service.check("dev", feeds, bad)
        assert service.is_quarantined("dev")
        service.reinstate("dev")
        assert not service.is_quarantined("dev")

    def test_report_lists_devices(self, reference, feeds):
        service = RobustnessService(reference)
        service.check("alpha", feeds, Executor(reference).run(feeds))
        assert "alpha" in service.report()


class TestFaultInjection:
    def test_bitflip_changes_exactly_targeted_weights(self, reference):
        corrupted, faults = flip_weight_bits(reference, num_flips=1, seed=1)
        assert len(faults) == 1
        diffs = sum(
            int(np.any(corrupted.initializers[k] != reference.initializers[k]))
            for k in reference.initializers
        )
        assert diffs == 1

    def test_original_untouched(self, reference):
        snapshot = {k: v.copy() for k, v in reference.initializers.items()}
        flip_weight_bits(reference, num_flips=5, seed=2)
        for k, v in snapshot.items():
            np.testing.assert_array_equal(reference.initializers[k], v)

    def test_activation_hook_corrupts_target_only(self, reference, feeds):
        executor = Executor(reference)
        clean = executor.run(feeds)
        hook = ActivationFaultHook("fc0", fraction=1.0, stuck_value=0.0)
        executor.add_hook(hook)
        faulty = executor.run(feeds)
        assert hook.activations == 1
        assert not np.allclose(clean[reference.output_names[0]],
                               faulty[reference.output_names[0]])

    def test_detection_campaign(self, reference):
        rng = np.random.default_rng(3)
        feeds_list = [
            {"input": rng.normal(size=(2, 16)).astype(np.float32)}
            for _ in range(4)
        ]
        service = RobustnessService(reference, tolerance=1e-3)
        # Exponent-MSB flips are the catastrophic fault class: a weight of
        # magnitude ~0.05 jumps to ~1e38.  These must be caught reliably.
        result = run_detection_campaign(reference, service, feeds_list,
                                        num_fault_trials=8, seed=4,
                                        bits=(30, 30))
        assert result.detection_rate >= 0.9
        assert result.false_alarm_rate == 0.0

    def test_low_mantissa_flips_are_benign(self, reference):
        rng = np.random.default_rng(5)
        feeds_list = [
            {"input": rng.normal(size=(2, 16)).astype(np.float32)}
        ]
        service = RobustnessService(reference, tolerance=1e-3)
        result = run_detection_campaign(reference, service, feeds_list,
                                        num_fault_trials=6, seed=6,
                                        bits=(0, 4))
        # Flips in the lowest mantissa bits perturb a weight by ~1e-7:
        # below tolerance, correctly not flagged.
        assert result.detection_rate <= 0.5


class TestAuditedDevice:
    def test_audit_policy_cadence(self):
        policy = AuditPolicy(every_n=5)
        audited = [i for i in range(20) if policy.should_audit(i)]
        assert audited == [0, 5, 10, 15]

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            AuditPolicy(every_n=0)

    def test_device_audits_periodically(self, reference, feeds):
        service = RobustnessService(reference)
        device = AuditedDevice("edge-1", Executor(reference), service,
                               AuditPolicy(every_n=3))
        checks = []
        for _ in range(9):
            _, check = device.infer(feeds)
            checks.append(check)
        assert device.audits == 3
        assert sum(c is not None for c in checks) == 3
        assert all(c.consistent for c in checks if c is not None)

    def test_faulty_device_caught_via_audit(self, reference, feeds):
        corrupted, _ = flip_weight_bits(reference, num_flips=3,
                                        bit_range=(28, 30), seed=9)
        service = RobustnessService(reference, tolerance=1e-3,
                                    quarantine_after=1)
        device = AuditedDevice("edge-bad", Executor(corrupted), service,
                               AuditPolicy(every_n=1))
        _, check = device.infer(feeds)
        assert check is not None and not check.consistent
        assert service.is_quarantined("edge-bad")


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.step_cost = 0.0

    def __call__(self):
        value = self.now
        self.now += self.step_cost
        return value


class TestHybridSystem:
    def test_accepts_fast_valid_payload(self):
        clock = FakeClock()
        system = HybridSystem(lambda x: x + 1, failsafe=-1, deadline_s=1.0,
                              clock=clock)
        result = system.step(1)
        assert result.decision is KernelDecision.ACCEPTED
        assert result.output == 2
        assert not result.failsafe_used

    def test_deadline_miss_degrades(self):
        clock = FakeClock()
        clock.step_cost = 10.0  # every clock() call advances 10 s
        system = HybridSystem(lambda x: x, failsafe=-1, deadline_s=1.0,
                              clock=clock)
        result = system.step(5)
        assert result.decision is KernelDecision.DEADLINE_MISS
        assert result.output == -1

    def test_invalid_output_degrades(self):
        system = HybridSystem(
            lambda x: 999, failsafe=0, deadline_s=10.0,
            validity=lambda inp, out: out < 100, clock=FakeClock())
        result = system.step(1)
        assert result.decision is KernelDecision.INVALID_OUTPUT
        assert result.output == 0

    def test_payload_crash_degrades(self):
        def crash(x):
            raise RuntimeError("model corrupted")

        system = HybridSystem(crash, failsafe="brake", deadline_s=1.0,
                              clock=FakeClock())
        result = system.step(0)
        assert result.decision is KernelDecision.PAYLOAD_ERROR
        assert result.output == "brake"

    def test_callable_failsafe_receives_input(self):
        system = HybridSystem(
            lambda x: 1 / 0, failsafe=lambda x: f"safe-{x}",
            deadline_s=1.0, clock=FakeClock())
        assert system.step(7).output == "safe-7"

    def test_availability_statistic(self):
        calls = [0]

        def flaky(x):
            calls[0] += 1
            if calls[0] % 2:
                raise RuntimeError("intermittent")
            return x

        system = HybridSystem(flaky, failsafe=0, deadline_s=1.0,
                              clock=FakeClock())
        for i in range(10):
            system.step(i)
        assert system.stats.availability == 0.5
        assert system.stats.payload_errors == 5

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            HybridSystem(lambda x: x, failsafe=0, deadline_s=0.0)
