"""Tests for repro.hw.accelerators: catalog integrity and Fig. 3 shape."""

import numpy as np
import pytest

from repro.hw import (
    FIG4_PLATFORMS,
    AcceleratorSpec,
    DeviceFamily,
    catalog,
    get_accelerator,
    resolve_platform,
)
from repro.ir.tensor import DType


class TestCatalog:
    def test_size(self):
        # The paper's survey covers dozens of devices from mW to 400 W.
        assert len(catalog()) >= 30

    def test_power_range_spans_decades(self):
        powers = [s.tdp_w for s in catalog()]
        assert min(powers) < 0.1       # MCU class
        assert max(powers) >= 400      # cloud class

    def test_all_families_present(self):
        families = {s.family for s in catalog()}
        assert families == set(DeviceFamily)

    def test_family_filter(self):
        cpus = catalog(DeviceFamily.CPU)
        assert cpus and all(s.family is DeviceFamily.CPU for s in cpus)

    def test_lookup_case_insensitive(self):
        assert get_accelerator("gtx1660").name == "GTX1660"

    def test_unknown_accelerator(self):
        with pytest.raises(KeyError):
            get_accelerator("tpu-v9")

    def test_fig4_platforms_resolvable(self):
        for name in FIG4_PLATFORMS:
            spec = resolve_platform(name)
            assert spec.tdp_w > 0


class TestSpecValidation:
    def test_empty_peaks_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("bad", "x", DeviceFamily.ASIC, {}, 1, 0, 1)

    def test_idle_above_tdp_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("bad", "x", DeviceFamily.ASIC,
                            {DType.INT8: 100}, 1.0, 2.0, 1)

    def test_util_max_bounds(self):
        with pytest.raises(ValueError):
            AcceleratorSpec("bad", "x", DeviceFamily.ASIC,
                            {DType.INT8: 100}, 1, 0, 1, util_max=1.5)


class TestDerivedProperties:
    def test_best_precision(self):
        spec = get_accelerator("GTX1660")
        assert spec.best_precision is DType.INT8

    def test_fp16_only_device(self):
        spec = get_accelerator("Myriad")
        assert spec.best_precision is DType.FP16
        assert not spec.supports(DType.INT8)

    def test_efficiency_formula(self):
        spec = get_accelerator("CoralEdgeTPU")
        assert spec.efficiency_tops_per_w == pytest.approx(
            4000 / 1000 / 2.0)

    def test_fig3_clustering_near_one_tops_per_w(self):
        """The paper's headline: 'most architectures cluster around an
        energy efficiency of about 1 TOPS/W'."""
        effs = np.array([s.efficiency_tops_per_w for s in catalog()])
        logs = np.log10(effs)
        # Median within one order of magnitude of 1 TOPS/W, and most
        # devices within +/- 1.2 decades.
        assert -1.0 < np.median(logs) < 0.5
        within = np.mean(np.abs(logs) < 1.2)
        assert within >= 0.75


class TestPowerModes:
    def test_with_mode_scales(self):
        agx = get_accelerator("XavierAGX")
        low = agx.with_mode("10W")
        assert low.tdp_w == pytest.approx(agx.tdp_w * 0.37)
        for dtype in agx.peak_gops:
            assert low.peak_gops[dtype] == pytest.approx(
                agx.peak_gops[dtype] * 0.33)
        assert "10W" in low.name

    def test_unknown_mode(self):
        with pytest.raises(KeyError):
            get_accelerator("XavierAGX").mode("100W")

    def test_resolve_with_mode_suffix(self):
        spec = resolve_platform("XavierAGX:10W")
        assert spec.tdp_w < get_accelerator("XavierAGX").tdp_w

    def test_mode_preserves_validity(self):
        low = get_accelerator("XavierAGX").with_mode("10W")
        assert low.idle_w <= low.tdp_w
